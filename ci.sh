#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 gate. Fully offline.
# EXO_CI_FULL=1 additionally runs the whole-workspace test suite
# (integration + simulator + bench crates; several minutes).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== cache correctness (EXO_CHECK_CACHE=0 parity) =="
cargo test -q -p exo-sched --test check_cache
EXO_CHECK_CACHE=0 cargo test -q -p exo-sched --test check_cache

echo "== check-cache bench (smoke; fails on zero cache hits) =="
EXO_BENCH_SMOKE=1 EXO_BENCH_DIR=target \
    cargo run --release -q -p exo-bench --bin check_cache

echo "== lint suite (classifier matrix + rule pack + chaos degradation) =="
cargo test -q -p exo-lint

echo "== lint bench (smoke; fails on error-severity findings) =="
EXO_BENCH_SMOKE=1 EXO_BENCH_DIR=target \
    cargo run --release -q -p exo-bench --bin lint

echo "== chaos suite (seeded fault-injection matrix) =="
cargo test -q --test chaos --test budget

echo "== chaos bench (smoke; fails on escaped panic or monotonicity violation) =="
EXO_CHAOS_SEED=42 EXO_BENCH_SMOKE=1 EXO_BENCH_DIR=target \
    cargo run --release -q -p exo-bench --bin chaos

echo "== fig5a bench (GFLOP/s rows for the perf gate) =="
EXO_BENCH_SMOKE=1 EXO_BENCH_DIR=target \
    cargo run --release -q -p exo-bench --bin fig5a

echo "== trace exports (validates Chrome JSON with the strict parser; =="
echo "== reconciles per-operator query attribution) =="
cargo run --release -q --example schedule_transcript > /dev/null

echo "== perf gate (BENCH_* vs bench/baselines) =="
# --warn-only while the gate beds in; drop the flag to fail CI on any
# deterministic metric regressing more than 25% against the baselines.
cargo run --release -q -p exo-bench --bin perf_diff -- --warn-only

if [[ "${EXO_CI_FULL:-0}" == "1" ]]; then
    echo "== full: cargo test --workspace -q =="
    cargo test --workspace -q
    echo "== full: property tests (incl. operator fail-safety) =="
    cargo test -q --features proptest-tests
fi

echo "CI OK"
