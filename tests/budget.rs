//! Resource-budget regression tests: a runaway interpreter run must
//! terminate with a typed budget error — never a hang — and budgeted
//! schedule chains must degrade to conservative rejection.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use exo::core::ResourceBudget;
use exo::hwlibs::GemminiLib;
use exo::kernels::gemmini_gemm;
use exo::prelude::*;
use exo::sched::SchedState;

/// A loop nest that would run for ~16.7M statements finishes (with an
/// error) after a 1 000-step fuel budget instead.
#[test]
fn runaway_loop_stops_on_fuel() {
    let proc = gemmini_gemm::naive_matmul(256, 256, 256);
    let mut machine = Machine::new();
    machine.set_budget(ResourceBudget::with_fuel(1_000));

    let n = 256usize;
    let a = machine.alloc_extern("A", DataType::F32, &[n, n], &vec![0.0; n * n]);
    let b = machine.alloc_extern("B", DataType::F32, &[n, n], &vec![0.0; n * n]);
    let c = machine.alloc_extern("C", DataType::F32, &[n, n], &vec![0.0; n * n]);

    let err = machine
        .run(
            &proc,
            &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
        )
        .expect_err("a 16M-statement run must exhaust 1000 fuel");
    assert!(err.budget_exhausted, "error not marked as budget: {err}");
    assert!(
        machine.steps() <= 1_001,
        "machine kept running past its fuel: {} steps",
        machine.steps()
    );
}

/// An already-expired deadline rejects the very first statement.
#[test]
fn expired_deadline_stops_immediately() {
    let proc = gemmini_gemm::naive_matmul(16, 16, 16);
    let mut machine = Machine::new();
    machine.set_budget(ResourceBudget::with_deadline(Duration::ZERO));

    let n = 16usize;
    let a = machine.alloc_extern("A", DataType::F32, &[n, n], &vec![0.0; n * n]);
    let b = machine.alloc_extern("B", DataType::F32, &[n, n], &vec![0.0; n * n]);
    let c = machine.alloc_extern("C", DataType::F32, &[n, n], &vec![0.0; n * n]);

    let err = machine
        .run(
            &proc,
            &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
        )
        .expect_err("expired deadline must reject");
    assert!(err.budget_exhausted);
}

/// A schedule chain under a tiny fuel budget is rejected with a typed
/// error (never a hang, never a partial schedule), and the same chain
/// succeeds with the budget lifted.
#[test]
fn schedule_chain_degrades_under_fuel() {
    let state = Arc::new(Mutex::new(SchedState::isolated()));
    {
        let mut st = state.lock().unwrap();
        st.set_budget(ResourceBudget::with_fuel(2));
    }
    let r = gemmini_gemm::schedule_matmul(&GemminiLib::new(), &state, 32, 32, 32);
    // Depending on where the pool drains, the rejection comes from
    // operator dispatch ("budget exhausted") or a safety obligation
    // degrading to Unknown — either way it is a typed error, not a hang.
    let _err = r.expect_err("2 fuel cannot cover the fig4a chain");

    // Lifting the budget on the same state lets the chain through —
    // budget exhaustion must not have poisoned any cache.
    {
        let mut st = state.lock().unwrap();
        st.set_budget(ResourceBudget::unlimited());
    }
    gemmini_gemm::schedule_matmul(&GemminiLib::new(), &state, 32, 32, 32)
        .expect("unlimited budget accepts");
}
