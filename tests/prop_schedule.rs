//! Property-based testing of the scheduling system: random programs,
//! random sequences of scheduling directives — every directive the
//! system *accepts* must preserve the program's observable behavior on
//! random inputs. Rejected directives are fine (the system is allowed to
//! be conservative); silently changing semantics is the bug class this
//! hunts.

#![cfg(feature = "proptest-tests")]

use std::sync::Arc;

use exo::core::build::read;
use exo::prelude::*;
use proptest::prelude::*;

/// A tiny random program over two 1-D buffers and one 2-D buffer.
#[derive(Clone, Debug)]
struct RandProgram {
    stmts: Vec<RandStmt>,
}

#[derive(Clone, Debug)]
enum RandStmt {
    /// `for i in 0..8: X[f(i)] (=|+=) g(i)` over selected buffers
    Loop {
        dst: u8,
        src: u8,
        reduce: bool,
        scale: i64,
        offset: i64,
    },
    /// 2-D loop nest writing the matrix buffer
    Loop2 { reduce: bool, transpose: bool },
}

fn arb_program() -> impl Strategy<Value = RandProgram> {
    let stmt = prop_oneof![
        (0u8..2, 0u8..2, any::<bool>(), 1i64..3, 0i64..8).prop_map(
            |(dst, src, reduce, scale, offset)| RandStmt::Loop {
                dst,
                src,
                reduce,
                scale,
                offset
            }
        ),
        (any::<bool>(), any::<bool>())
            .prop_map(|(reduce, transpose)| RandStmt::Loop2 { reduce, transpose }),
    ];
    proptest::collection::vec(stmt, 1..4).prop_map(|stmts| RandProgram { stmts })
}

/// Builds the IR for a random program. Buffers: x[16], y[16], m[8][8].
fn build(p: &RandProgram) -> Arc<Proc> {
    let mut b = ProcBuilder::new("randprog");
    let bufs = [
        b.tensor("x", DataType::F32, vec![Expr::int(16)]),
        b.tensor("y", DataType::F32, vec![Expr::int(16)]),
    ];
    let mat = b.tensor("m", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    for s in &p.stmts {
        match s {
            RandStmt::Loop {
                dst,
                src,
                reduce,
                scale,
                offset,
            } => {
                let i = b.begin_for("i", Expr::int(0), Expr::int(8));
                // dst[i+offset'] op= src[(i*scale) % 16-safe]
                let didx = Expr::var(i).add(Expr::int(*offset));
                let sidx = Expr::var(i).mul(Expr::int(*scale)).rem(Expr::int(16));
                let rhs = read(bufs[*src as usize], vec![sidx]).add(Expr::float(1.0));
                if *reduce {
                    b.reduce(bufs[*dst as usize], vec![didx], rhs);
                } else {
                    b.assign(bufs[*dst as usize], vec![didx], rhs);
                }
                b.end_for();
            }
            RandStmt::Loop2 { reduce, transpose } => {
                let i = b.begin_for("i", Expr::int(0), Expr::int(8));
                let j = b.begin_for("j", Expr::int(0), Expr::int(8));
                let (r, c) = if *transpose {
                    (Expr::var(j), Expr::var(i))
                } else {
                    (Expr::var(i), Expr::var(j))
                };
                let rhs = read(mat, vec![Expr::var(i), Expr::var(j)]).mul(Expr::float(0.5));
                if *reduce {
                    b.reduce(mat, vec![r, c], rhs);
                } else {
                    // avoid self-racing transposed writes reading the same
                    // cell: write a constant instead
                    let rhs = if *transpose { Expr::float(2.0) } else { rhs };
                    b.assign(mat, vec![r, c], rhs);
                }
                b.end_for().end_for();
            }
        }
    }
    b.finish()
}

/// A random scheduling directive to attempt.
#[derive(Clone, Debug)]
enum Directive {
    Split(u8, i64),
    SplitGuard(u8, i64),
    Reorder,
    FissionAfterFirst,
    ReorderStmts,
    PartitionLoop(u8, i64),
    Unroll(u8),
    BindExpr,
    Simplify,
}

fn arb_directive() -> impl Strategy<Value = Directive> {
    prop_oneof![
        (0u8..2, prop_oneof![Just(2i64), Just(4)]).prop_map(|(w, c)| Directive::Split(w, c)),
        (0u8..2, 2i64..6).prop_map(|(w, c)| Directive::SplitGuard(w, c)),
        Just(Directive::Reorder),
        Just(Directive::FissionAfterFirst),
        Just(Directive::ReorderStmts),
        (0u8..2, 1i64..7).prop_map(|(w, c)| Directive::PartitionLoop(w, c)),
        (0u8..2).prop_map(Directive::Unroll),
        Just(Directive::BindExpr),
        Just(Directive::Simplify),
    ]
}

fn apply(p: &Procedure, d: &Directive) -> Option<Procedure> {
    let loop_pat = |w: u8| {
        if w == 0 {
            "for i in _: _"
        } else {
            "for j in _: _"
        }
    };
    match d {
        Directive::Split(w, c) => p.split(loop_pat(*w), *c, "so", "si").ok(),
        Directive::SplitGuard(w, c) => p.split_guard(loop_pat(*w), *c, "go", "gi").ok(),
        Directive::Reorder => p.reorder("for i in _: _", "j").ok(),
        Directive::FissionAfterFirst => {
            for pat in [
                "x[_] = _",
                "y[_] = _",
                "x[_] += _",
                "y[_] += _",
                "m[_,_] = _",
            ] {
                if let Ok(q) = p.fission_after(pat) {
                    return Some(q);
                }
            }
            None
        }
        Directive::ReorderStmts => {
            for pat in ["for i in _: _", "x[_] = _", "y[_] += _"] {
                if let Ok(q) = p.reorder_stmts(pat) {
                    return Some(q);
                }
            }
            None
        }
        Directive::PartitionLoop(w, c) => p.partition_loop(loop_pat(*w), *c).ok(),
        Directive::Unroll(w) => p.unroll(loop_pat(*w)).ok(),
        Directive::BindExpr => {
            for (spat, epat) in [
                ("x[_] = _", "x[_]"),
                ("y[_] += _", "y[_]"),
                ("m[_,_] = _", "m[_]"),
            ] {
                if let Ok(q) = p.bind_expr(spat, epat, "bound") {
                    return Some(q);
                }
            }
            None
        }
        Directive::Simplify => Some(p.simplify()),
    }
}

fn run_program(proc: &Proc, seed: u64) -> Result<Vec<f64>, exo::interp::InterpError> {
    let mut m = Machine::new();
    let init = |n: usize, s: u64| -> Vec<f64> {
        (0..n)
            .map(|i| (((i as u64 * 7 + s * 13) % 11) as f64) - 5.0)
            .collect()
    };
    let x = m.alloc_extern("x", DataType::F32, &[16], &init(16, seed));
    let y = m.alloc_extern("y", DataType::F32, &[16], &init(16, seed + 1));
    let mat = m.alloc_extern("m", DataType::F32, &[8, 8], &init(64, seed + 2));
    m.run(
        proc,
        &[ArgVal::Tensor(x), ArgVal::Tensor(y), ArgVal::Tensor(mat)],
    )?;
    let mut out = m.buffer_values(x)?;
    out.extend(m.buffer_values(y)?);
    out.extend(m.buffer_values(mat)?);
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_schedules_preserve_semantics(
        prog in arb_program(),
        directives in proptest::collection::vec(arb_directive(), 1..6),
        seed in 0u64..1000,
    ) {
        let original = build(&prog);
        // the generator can produce out-of-bounds programs (offsets);
        // skip those — we only care about valid programs
        let mut scheduled = Procedure::new(original.clone());
        if run_program(&original, seed).is_err() {
            return Ok(());
        }
        let mut applied = Vec::new();
        for d in &directives {
            if let Some(q) = apply(&scheduled, d) {
                applied.push(format!("{d:?}"));
                scheduled = q;
            }
        }
        let want = run_program(&original, seed).expect("checked above");
        let got = run_program(scheduled.proc(), seed)
            .unwrap_or_else(|e| panic!("scheduled program failed ({applied:?}): {e}"));
        prop_assert_eq!(want, got, "directives applied: {:?}\n{}", applied, scheduled.show());
    }
}
