//! Acceptance tests for `parallelize`: the operator is gated by the
//! exo-lint dependence classifier and surfaces its verdicts — a racy
//! loop is rejected with the witness conflict, a proven-parallel loop
//! gets an OpenMP pragma in the generated C.

use std::sync::{Arc, Mutex};

use exo::hwlibs::Avx512Lib;
use exo::prelude::*;
use exo::sched::SchedState;

/// `for i in [0, n-1): A[i] = A[i+1] + 1` — provably racy.
fn shifted_copy() -> Arc<Proc> {
    let mut b = ProcBuilder::new("shift");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n).sub(Expr::int(1)));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(a, vec![Expr::var(i).add(Expr::int(1))]).add(Expr::int(1)),
    );
    b.end_for();
    b.finish()
}

#[test]
fn parallelize_rejects_racy_loop_with_witness() {
    let p = Procedure::new(shifted_copy());
    let err = p.parallelize("for i in _: _").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("carries a dependence"), "{msg}");
    // The witness pair names the buffer and the cross-iteration collision.
    assert!(msg.contains("A["), "{msg}");
    assert!(msg.contains("distinct iteration"), "{msg}");
}

#[test]
fn parallelize_accepts_elementwise_loop_and_emits_pragma() {
    let mut b = ProcBuilder::new("saxpy_ish");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(bb, vec![Expr::var(i)]).mul(Expr::int(2)),
    );
    b.end_for();
    let p = Procedure::new(b.finish());

    let q = p.parallelize("for i in _: _").unwrap();
    assert_eq!(q.parallel_marks().len(), 1);
    assert!(q.parallel_marks()[0].reductions.is_empty());

    let mut ctx = exo::codegen::CodegenCtx::default();
    for mark in q.parallel_marks() {
        ctx.mark_parallel(mark.iter, mark.reductions.clone());
    }
    let c = exo::codegen::compile_c(&[q.proc().clone()], &ctx).unwrap();
    assert!(c.contains("#pragma omp parallel for\n"), "{c}");
}

#[test]
fn parallelize_reduction_loop_emits_reduction_clause() {
    let mut b = ProcBuilder::new("dot");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::var(n)]);
    let s = b.scalar("s", DataType::F32);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.reduce(
        s,
        vec![],
        read(a, vec![Expr::var(i)]).mul(read(bb, vec![Expr::var(i)])),
    );
    b.end_for();
    let p = Procedure::new(b.finish());

    let q = p.parallelize("for i in _: _").unwrap();
    let marks = q.parallel_marks();
    assert_eq!(marks.len(), 1);
    assert_eq!(marks[0].reductions.len(), 1);

    let mut ctx = exo::codegen::CodegenCtx::default();
    for mark in marks {
        ctx.mark_parallel(mark.iter, mark.reductions.clone());
    }
    let c = exo::codegen::compile_c(&[q.proc().clone()], &ctx).unwrap();
    assert!(c.contains("#pragma omp parallel for reduction(+:s)"), "{c}");
}

#[test]
fn parallelize_sgemm_outer_loop_through_full_schedule() {
    // The paper's AVX-512 sgemm: after register blocking and instruction
    // selection, the `io` loop iterations own disjoint row-panels of C.
    let lib = Avx512Lib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::x86_gemm::schedule_sgemm(&lib, &st, 12, 128, 8, 6, 64).unwrap();

    let q = p.parallelize("for io in _: _").unwrap();
    let marks = q.parallel_marks();
    assert_eq!(marks.len(), 1);
    assert_eq!(marks[0].iter.name(), "io");

    let mut ctx = lib.codegen_ctx();
    for mark in marks {
        ctx.mark_parallel(mark.iter, mark.reductions.clone());
    }
    let c = exo::codegen::compile_c(&[q.proc().clone()], &ctx).unwrap();
    // The pragma lands directly on the io loop.
    let pragma_at = c.find("#pragma omp parallel for").expect("pragma emitted");
    let after = &c[pragma_at..];
    let next_line = after.lines().nth(1).unwrap_or("");
    assert!(
        next_line.contains("for ") && next_line.contains("io"),
        "pragma should precede the io loop: {next_line:?}"
    );
}
