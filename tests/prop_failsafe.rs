//! Property: every scheduling operator that returns `Err` is
//! transactional — the source `Procedure`'s printed form is
//! byte-identical and its provenance transcript is unextended. This is
//! exercised over random programs, random directive sequences (many of
//! which are deliberately invalid), and seeded chaos fault plans (so
//! rejections also come from injected solver/pattern/analysis faults,
//! not just from genuinely invalid directives).

#![cfg(feature = "proptest-tests")]

use std::sync::Arc;

use exo::chaos::{self, FaultPlan, FaultSite};
use exo::core::build::read;
use exo::prelude::*;
use proptest::prelude::*;

/// A tiny random program over two 1-D buffers (loop bounds all 8).
#[derive(Clone, Debug)]
struct RandProgram {
    loops: Vec<(u8, bool)>,
}

fn arb_program() -> impl Strategy<Value = RandProgram> {
    proptest::collection::vec((0u8..2, any::<bool>()), 1..4).prop_map(|loops| RandProgram { loops })
}

fn build(p: &RandProgram) -> Arc<Proc> {
    let mut b = ProcBuilder::new("failsafe");
    let bufs = [
        b.tensor("x", DataType::F32, vec![Expr::int(16)]),
        b.tensor("y", DataType::F32, vec![Expr::int(16)]),
    ];
    for (w, reduce) in &p.loops {
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        let rhs = read(bufs[(*w ^ 1) as usize], vec![Expr::var(i)]).add(Expr::float(1.0));
        if *reduce {
            b.reduce(bufs[*w as usize], vec![Expr::var(i)], rhs);
        } else {
            b.assign(bufs[*w as usize], vec![Expr::var(i)], rhs);
        }
        b.end_for();
    }
    b.finish()
}

/// Directives spanning valid, invalid-by-construction, and
/// sometimes-valid cases.
#[derive(Clone, Debug)]
enum Directive {
    /// `split` with a factor that may not divide the bound (8).
    Split(i64),
    /// A pattern that matches nothing.
    SplitMissing,
    /// Reorder on a singly-nested loop (always rejected).
    ReorderFlat,
    /// Unroll the first loop (valid).
    Unroll,
    /// Fission mid-loop when there is one statement (rejected).
    FissionMissing,
}

fn arb_directive() -> impl Strategy<Value = Directive> {
    prop_oneof![
        (2i64..7).prop_map(Directive::Split),
        Just(Directive::SplitMissing),
        Just(Directive::ReorderFlat),
        Just(Directive::Unroll),
        Just(Directive::FissionMissing),
    ]
}

fn apply(p: &Procedure, d: &Directive) -> Result<Procedure, SchedError> {
    match d {
        Directive::Split(c) => p.split("for i in _: _", *c, "so", "si"),
        Directive::SplitMissing => p.split("for zz in _: _", 2, "zo", "zi"),
        Directive::ReorderFlat => p.reorder("for i in _: _", "nothere"),
        Directive::Unroll => p.unroll("for i in _: _"),
        Directive::FissionMissing => p.fission_after("q[_] = _"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For every directive in a random sequence, under a seeded chaos
    /// plan flipping coins at every fault site: `Err` ⇒ printer output
    /// byte-identical and transcript unextended; `Ok` ⇒ transcript
    /// extended by exactly one accepted event.
    #[test]
    fn rejected_operators_are_transactional(
        prog in arb_program(),
        dirs in proptest::collection::vec(arb_directive(), 1..6),
        seed in 0u64..1024,
    ) {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan = plan.with_site(site, 0.3);
        }
        let _guard = chaos::arm(plan);

        let mut p = Procedure::new(build(&prog));
        for d in &dirs {
            let shown = p.show();
            let events = p.transcript().len();
            match apply(&p, d) {
                Ok(q) => {
                    prop_assert_eq!(
                        q.transcript().len(),
                        events + 1,
                        "accept must append exactly one event ({:?})",
                        d
                    );
                    p = q;
                }
                Err(_) => {
                    prop_assert_eq!(
                        p.show(),
                        shown.clone(),
                        "rejected {:?} mutated the procedure",
                        d
                    );
                    prop_assert_eq!(
                        p.transcript().len(),
                        events,
                        "rejected {:?} extended the transcript",
                        d
                    );
                }
            }
        }
    }
}
