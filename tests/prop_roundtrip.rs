//! Property test: pretty-printing a procedure and re-parsing it yields
//! an alpha-equivalent procedure (the printer emits the surface syntax
//! the front-end accepts).

#![cfg(feature = "proptest-tests")]

use std::sync::Arc;

use exo::core::visit::alpha_eq_proc;
use exo::front::{parse_proc, ParseEnv};
use exo::prelude::*;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum GenStmt {
    Assign { two_d: bool, add: i64 },
    Reduce { mul: i64 },
    Guarded { threshold: i64 },
    Alloc { len: i64 },
    WindowAndUse { lo: i64 },
    ConfigWrite { value: i64 },
    Pass,
}

fn arb_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (any::<bool>(), 0i64..4).prop_map(|(two_d, add)| GenStmt::Assign { two_d, add }),
        (1i64..4).prop_map(|mul| GenStmt::Reduce { mul }),
        (0i64..8).prop_map(|threshold| GenStmt::Guarded { threshold }),
        (1i64..6).prop_map(|len| GenStmt::Alloc { len }),
        (0i64..4).prop_map(|lo| GenStmt::WindowAndUse { lo }),
        (0i64..100).prop_map(|value| GenStmt::ConfigWrite { value }),
        Just(GenStmt::Pass),
    ]
}

fn build_proc(stmts: &[GenStmt]) -> Arc<Proc> {
    let mut b = ProcBuilder::new("generated");
    let n = b.size("n");
    b.assert_pred(Expr::var(n).le(Expr::int(8)));
    let x = b.tensor("x", DataType::F32, vec![Expr::int(16)]);
    let m = b.tensor("m", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    let cfg = Sym::new("Cfg");
    let field = Sym::new("field");
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    for (idx, s) in stmts.iter().enumerate() {
        match s {
            GenStmt::Assign { two_d, add } => {
                if *two_d {
                    b.assign(
                        m,
                        vec![Expr::var(i), Expr::int(*add)],
                        exo::core::build::read(m, vec![Expr::int(0), Expr::var(i)])
                            .add(Expr::float(1.5)),
                    );
                } else {
                    b.assign(
                        x,
                        vec![Expr::var(i).add(Expr::int(*add))],
                        Expr::float(*add as f64),
                    );
                }
            }
            GenStmt::Reduce { mul } => {
                b.reduce(
                    x,
                    vec![Expr::var(i)],
                    exo::core::build::read(x, vec![Expr::var(i)]).mul(Expr::float(*mul as f64)),
                );
            }
            GenStmt::Guarded { threshold } => {
                b.begin_if(Expr::var(i).lt(Expr::int(*threshold)));
                b.assign(x, vec![Expr::var(i)], Expr::float(0.0));
                b.begin_else();
                b.stmt(Stmt::Pass);
                b.end_if();
            }
            GenStmt::Alloc { len } => {
                let t = b.alloc(
                    &format!("t{idx}"),
                    DataType::F32,
                    vec![Expr::int(*len)],
                    MemName::dram(),
                );
                b.assign(t, vec![Expr::int(0)], Expr::float(1.0));
            }
            GenStmt::WindowAndUse { lo } => {
                let w = b.window(
                    &format!("w{idx}"),
                    m,
                    vec![
                        exo::core::WAccess::Point(Expr::int(*lo)),
                        exo::core::WAccess::Interval(Expr::int(*lo), Expr::int(lo + 4)),
                    ],
                );
                b.assign(w, vec![Expr::int(1)], Expr::float(3.0));
            }
            GenStmt::ConfigWrite { value } => {
                b.write_config(cfg, field, Expr::int(*value));
            }
            GenStmt::Pass => {
                b.stmt(Stmt::Pass);
            }
        }
    }
    b.end_for();
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(stmts in proptest::collection::vec(arb_stmt(), 1..6)) {
        let original = build_proc(&stmts);
        let printed = exo::core::printer::proc_to_string(&original);
        let reparsed = parse_proc(&printed, &ParseEnv::new())
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert!(
            alpha_eq_proc(&original, &reparsed),
            "round-trip not alpha-equivalent\n--- printed ---\n{}\n--- reprinted ---\n{}",
            printed,
            exo::core::printer::proc_to_string(&reparsed)
        );
    }

    #[test]
    fn roundtrip_preserves_semantics(stmts in proptest::collection::vec(arb_stmt(), 1..6)) {
        let original = build_proc(&stmts);
        let printed = exo::core::printer::proc_to_string(&original);
        let Ok(reparsed) = parse_proc(&printed, &ParseEnv::new()) else {
            return Err(TestCaseError::fail("reparse failed"));
        };
        let run = |proc: &Proc| {
            let mut machine = Machine::new();
            let x = machine.alloc_extern("x", DataType::F32, &[16], &vec![1.0; 16]);
            let m = machine.alloc_extern("m", DataType::F32, &[8, 8], &vec![2.0; 64]);
            machine
                .run(proc, &[ArgVal::Int(8), ArgVal::Tensor(x), ArgVal::Tensor(m)])
                .map(|_| {
                    let mut out = machine.buffer_values(x).unwrap();
                    out.extend(machine.buffer_values(m).unwrap());
                    out
                })
        };
        match (run(&original), run(&reparsed)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // both fail identically (e.g. OOB generator)
            (a, b) =>

                return Err(TestCaseError::fail(format!(
                    "divergent outcomes: {a:?} vs {b:?}"
                ))),
        }
    }
}
