//! Chaos suite: the fig4a (Gemmini GEMM) and fig5a (x86 SGEMM) schedule
//! chains driven under a matrix of seeded fault plans.
//!
//! Invariants asserted, per `DESIGN.md` §Failure model:
//!
//! 1. **No panic escapes** a library-crate boundary under any plan —
//!    every injected fault surfaces as a typed `SchedError`/`InterpError`.
//! 2. **Transactionality** — a failed operator leaves the source
//!    `Procedure`'s `show()` output and provenance transcript
//!    byte-identical.
//! 3. **Soundness monotonicity** — injections only ever turn accepts
//!    into rejects; a chain that succeeds *under* injection implies the
//!    clean chain succeeds, and the clean result is unchanged.
//! 4. **No cache contamination** — after every chaos run, the clean
//!    chains still produce the same accepted schedule.
//!
//! The fault plan is process-global, so every test in this file
//! serializes on `CHAOS_LOCK`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use exo::chaos::{self, FaultPlan, FaultSite};
use exo::hwlibs::{Avx512Lib, GemminiLib};
use exo::kernels::{gemmini_gemm, x86_gemm};
use exo::sched::{Procedure, SchedError, SchedState, StateRef};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fresh_state() -> StateRef {
    Arc::new(Mutex::new(SchedState::isolated()))
}

/// The fig4a chain at a small shape (divisible by the 16×16×16 tile).
fn fig4a_chain(state: &StateRef) -> Result<Procedure, SchedError> {
    gemmini_gemm::schedule_matmul(&GemminiLib::new(), state, 32, 32, 32)
}

/// The fig5a chain at a small shape (one 6×64 microkernel tile ×2).
fn fig5a_chain(state: &StateRef) -> Result<Procedure, SchedError> {
    x86_gemm::schedule_sgemm(&Avx512Lib::new(), state, 12, 128, 8, 6, 64)
}

type Chain = fn(&StateRef) -> Result<Procedure, SchedError>;

const CHAINS: [(&str, Chain); 2] = [("fig4a", fig4a_chain), ("fig5a", fig5a_chain)];

/// Runs a chain with panics trapped at the test boundary: `Ok(result)`
/// when the library held its no-panic contract, `Err(())` when a panic
/// escaped.
fn run_trapped(chain: Chain) -> Result<Result<Procedure, SchedError>, ()> {
    let state = fresh_state();
    catch_unwind(AssertUnwindSafe(|| chain(&state))).map_err(|_| ())
}

#[test]
fn clean_chains_accept() {
    let _g = chaos_lock();
    chaos::disarm();
    for (name, chain) in CHAINS {
        let r = chain(&fresh_state());
        assert!(r.is_ok(), "{name} clean chain rejected: {:?}", r.err());
    }
}

/// The full matrix: every site × several seeds × both chains, at
/// probability 1.0 (deterministic fire) and 0.5 (seeded coin flips).
/// No panic may escape, and success under injection implies clean
/// success with an identical schedule (monotonicity).
#[test]
fn fault_matrix_no_panic_and_monotone() {
    let _g = chaos_lock();

    // Clean baselines first, before any plan has ever been armed.
    chaos::disarm();
    let mut clean: Vec<(usize, String)> = Vec::new();
    for (i, (name, chain)) in CHAINS.iter().enumerate() {
        let p = chain(&fresh_state()).unwrap_or_else(|e| panic!("{name} clean: {e}"));
        clean.push((i, p.show()));
    }

    for site in FaultSite::ALL {
        for seed in [1u64, 7, 42] {
            for prob in [1.0f64, 0.5] {
                let plan = FaultPlan::new(seed).with_site(site, prob);
                for (i, (name, chain)) in CHAINS.iter().enumerate() {
                    let guard = chaos::arm(plan.clone());
                    let outcome = run_trapped(*chain);
                    drop(guard);
                    let ctx = format!("{name} under {}@{prob} seed={seed}", site.name());
                    let result = outcome.unwrap_or_else(|()| panic!("panic escaped: {ctx}"));
                    if let Ok(p) = result {
                        // Monotonicity: an accept under injection must
                        // match the clean accept (injections may only
                        // remove behaviours, never add them).
                        assert_eq!(p.show(), clean[i].1, "schedule diverged: {ctx}");
                    }
                }
            }
        }
    }

    // The caches the chaos runs touched must not have been contaminated:
    // clean chains still accept, with byte-identical schedules.
    chaos::disarm();
    for (i, (name, chain)) in CHAINS.iter().enumerate() {
        let p = chain(&fresh_state()).unwrap_or_else(|e| panic!("{name} post-chaos clean: {e}"));
        assert_eq!(
            p.show(),
            clean[i].1,
            "{name} clean schedule changed after chaos runs"
        );
    }
}

/// Certain-fire plans on the scheduling-facing sites must reject the
/// chains (the first pattern lookup / solver query fails), proving the
/// injection points are actually on the hot path.
#[test]
fn certain_faults_reject() {
    let _g = chaos_lock();
    for site in [
        FaultSite::PatternNoMatch,
        FaultSite::PatternAmbiguous,
        FaultSite::SmtTooHard,
    ] {
        let _guard = chaos::arm(FaultPlan::always(3, &[site]));
        for (name, chain) in CHAINS {
            let r = chain(&fresh_state());
            assert!(r.is_err(), "{name} accepted under always-{}", site.name());
        }
    }
}

/// A failed operator is transactional: the source `Procedure`'s printed
/// form and provenance transcript are byte-identical afterwards.
#[test]
fn failed_operator_leaves_procedure_unchanged() {
    let _g = chaos_lock();
    chaos::disarm();

    let state = fresh_state();
    let p = Procedure::with_state(gemmini_gemm::naive_matmul(32, 32, 32), state)
        .split("for i in _: _", 16, "io", "ii")
        .expect("clean split");
    let shown = p.show();
    let transcript = p.transcript_text();

    // Force the next pattern lookup to fail mid-chain.
    {
        let _guard = chaos::arm(FaultPlan::always(9, &[FaultSite::PatternNoMatch]));
        let err = p.split("for j in _: _", 16, "jo", "ji");
        assert!(err.is_err(), "chaos no-match should reject the split");
    }

    assert_eq!(p.show(), shown, "failed operator mutated the procedure");
    assert_eq!(
        p.transcript_text(),
        transcript,
        "failed operator extended the transcript"
    );

    // And the handle is still fully usable: the same rewrite succeeds
    // once the plan is disarmed.
    let q = p.split("for j in _: _", 16, "jo", "ji").expect("retry");
    assert!(q.transcript().len() > p.transcript().len());
}

/// The `InterpFuel` site stops the interpreter with a typed budget
/// error rather than letting the run complete (or hang).
#[test]
fn interp_fuel_site_stops_run() {
    let _g = chaos_lock();
    chaos::disarm();

    let state = fresh_state();
    let p = fig4a_chain(&state).expect("clean schedule");

    let _guard = chaos::arm(FaultPlan::always(5, &[FaultSite::InterpFuel]));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        exo::kernels::gemmini_gemm::trace_matmul(p.proc(), 32, 32, 32, false)
    }));
    // trace_matmul panics (documented) when the machine errors — but the
    // machine itself must have reported a typed budget error, counted
    // by obs, rather than hanging.
    let stops = exo::obs::counter_get("interp.budget_stops");
    assert!(stops > 0, "InterpFuel injection did not stop the machine");
    assert!(outcome.is_err() || chaos::injection_counts()[5].1 > 0);
}

/// Env-var arming honours `EXO_CHAOS` syntax (exercised directly via
/// the parser — the process env itself is left alone).
#[test]
fn fault_site_parsing_round_trips() {
    for site in FaultSite::ALL {
        assert_eq!(FaultSite::parse(site.name()), Some(site));
    }
    assert_eq!(FaultSite::parse("smt"), Some(FaultSite::SmtTooHard));
    assert_eq!(FaultSite::parse("fuel"), Some(FaultSite::InterpFuel));
    assert_eq!(FaultSite::parse("nope"), None);
}
