//! Cross-crate integration tests: the full exocompilation pipeline from
//! surface syntax through scheduling, analysis, code generation, and
//! simulation.

use std::sync::{Arc, Mutex};

use exo::front::{parse_library, ParseEnv};
use exo::hwlibs::{Avx512Lib, GemminiLib};
use exo::prelude::*;
use exo::sched::SchedState;

#[test]
fn text_to_c_pipeline() {
    // parse → check → schedule → bounds-check → codegen
    let src = r#"
@proc
def blur(n: size, src: f32[n], dst: f32[n]):
    assert n % 8 == 0
    assert n >= 16
    for i in seq(0, n - 2):
        dst[i] = (src[i] + src[i + 1] + src[i + 2]) / 3.0
"#;
    let procs = parse_library(src, &ParseEnv::new()).unwrap();
    let blur = procs[0].clone();
    exo::core::check::check_proc(&blur).unwrap();

    let p = Procedure::new(blur.clone());
    let q = p.split_guard("for i in _: _", 8, "io", "ii").unwrap();

    // static memory safety of the scheduled version
    {
        let mut st = q.state().lock().unwrap();
        let st = &mut *st;
        exo::analysis::check_bounds(q.proc(), &mut st.reg, &st.check).unwrap();
    }

    let c = exo::codegen::compile_c(&[q.proc().clone()], &Default::default()).unwrap();
    assert!(c.contains("void blur("), "{c}");

    // semantics agree
    let run = |proc: &Proc| {
        let mut m = Machine::new();
        let s = m.alloc_extern(
            "src",
            DataType::F32,
            &[16],
            &(0..16).map(|i| i as f64).collect::<Vec<_>>(),
        );
        let d = m.alloc_extern("dst", DataType::F32, &[16], &[0.0; 16]);
        m.run(
            proc,
            &[ArgVal::Int(16), ArgVal::Tensor(s), ArgVal::Tensor(d)],
        )
        .unwrap();
        m.buffer_values(d).unwrap()
    };
    assert_eq!(run(&blur), run(q.proc()));
}

#[test]
fn gemmini_pipeline_to_simulation() {
    let lib = GemminiLib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::gemmini_gemm::schedule_matmul(&lib, &st, 64, 64, 64).unwrap();
    let trace = exo::kernels::gemmini_gemm::trace_matmul(p.proc(), 64, 64, 64, false);
    let report = gemmini_sim::Simulator::new(gemmini_sim::SimConfig::software()).run(&trace);
    assert_eq!(report.macs, 64 * 64 * 64);
    assert!(report.utilization > 0.3, "{}", report.utilization);

    // code generation with the Gemmini memories succeeds and contains the
    // accelerator intrinsics, not raw scratchpad accesses
    let c = exo::codegen::compile_c(&[p.proc().clone()], &lib.codegen_ctx()).unwrap();
    assert!(c.contains("gemmini_extended_mvin"), "{c}");
    assert!(c.contains("gemmini_extended_preload"), "{c}");
}

#[test]
fn avx512_pipeline_profile_consistency() {
    // the trace profile (dynamic) and the static IR profile agree
    let lib = Avx512Lib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::x86_gemm::schedule_sgemm(&lib, &st, 12, 128, 8, 6, 64).unwrap();

    let static_profile = x86_sim::profile_proc(p.proc()).unwrap();

    let mut m = Machine::new();
    m.execute_instr_bodies = false;
    let a = m.alloc_extern_uninit("A", DataType::F32, &[12, 8]);
    let b = m.alloc_extern_uninit("B", DataType::F32, &[8, 128]);
    let c = m.alloc_extern_uninit("C", DataType::F32, &[12, 128]);
    m.run(
        p.proc(),
        &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
    )
    .unwrap();
    let dynamic_profile = x86_sim::profile_trace(m.trace());

    assert_eq!(static_profile.fmas, dynamic_profile.fmas);
    assert_eq!(static_profile.vec_loads, dynamic_profile.vec_loads);
    assert_eq!(static_profile.vec_stores, dynamic_profile.vec_stores);
    assert_eq!(static_profile.broadcasts, dynamic_profile.broadcasts);
}

#[test]
fn call_eqv_swaps_provably_equivalent_procs() {
    // schedule a callee two ways; swap the call via provenance
    let src = r#"
@proc
def fill(n: size, dst: f32[n]):
    assert n % 8 == 0
    for i in seq(0, n):
        dst[i] = 1.0

@proc
def app(x: f32[32]):
    fill(32, x[0:32])
"#;
    let procs = parse_library(src, &ParseEnv::new()).unwrap();
    let fill = Procedure::new(procs[0].clone());
    let app = Procedure::with_state(procs[1].clone(), fill.state().clone());

    let fill_fast = fill.split("for i in _: _", 8, "io", "ii").unwrap();
    let swapped = app.call_eqv("fill(_)", &fill_fast).unwrap();
    assert!(swapped.show().contains("fill("), "{}", swapped.show());

    // behavior unchanged
    let run = |proc: &Proc| {
        let mut m = Machine::new();
        let x = m.alloc_extern("x", DataType::F32, &[32], &vec![0.0; 32]);
        m.run(proc, &[ArgVal::Tensor(x)]).unwrap();
        m.buffer_values(x).unwrap()
    };
    assert_eq!(run(app.proc()), run(swapped.proc()));

    // a procedure with no provenance link is rejected, even if it looks
    // identical (it was parsed separately and shares no scheduling root)
    let reparsed = parse_library(src, &ParseEnv::new()).unwrap();
    let stranger = Procedure::new(reparsed[0].clone());
    assert!(app.call_eqv("fill(_)", &stranger).is_err());
}

#[test]
fn non_addressable_memory_enforced_end_to_end() {
    // staging into the scratchpad without mapping loads to instructions
    // must be caught by the backend checks
    let lib = GemminiLib::new();
    let mut b = ProcBuilder::new("direct");
    let a = b.tensor("A", DataType::I8, vec![Expr::int(16)]);
    let s = b.tensor_in("spad", DataType::I8, vec![Expr::int(16)], lib.scratchpad);
    let i = b.begin_for("i", Expr::int(0), Expr::int(16));
    b.assign(
        s,
        vec![Expr::var(i)],
        exo::core::build::read(a, vec![Expr::var(i)]),
    );
    b.end_for();
    let p = b.finish();
    let e = exo::codegen::compile_c(&[p], &lib.codegen_ctx()).unwrap_err();
    assert!(e.message.contains("not addressable"), "{e}");
}

#[test]
fn transcript_records_full_gemmini_schedule() {
    // the provenance transcript of the scheduled GEMM names every rewrite
    // in application order, every one accepted, with consistent statement
    // counts along the chain
    let lib = GemminiLib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::gemmini_gemm::schedule_matmul(&lib, &st, 64, 64, 64).unwrap();

    let t = p.transcript();
    assert!(!t.is_empty(), "schedule produced no provenance events");
    assert!(
        t.len() <= p.directives(),
        "transcript {} vs directives {}",
        t.len(),
        p.directives()
    );
    let ops: Vec<&str> = t.iter().map(|e| e.op.as_str()).collect();
    assert!(ops.contains(&"split"), "{ops:?}");
    assert!(ops.contains(&"replace"), "{ops:?}");
    for (i, e) in t.iter().enumerate() {
        assert!(
            matches!(e.verdict, exo::obs::Verdict::Accepted),
            "event {i} ({}) not accepted",
            e.op
        );
        if i > 0 {
            assert_eq!(
                e.pre_stmts,
                t[i - 1].post_stmts,
                "statement count broken between events {} and {i}",
                i - 1
            );
        }
    }

    // the human rendering lists exactly one numbered line per event
    let text = p.transcript_text();
    assert_eq!(text.matches("[stmts ").count(), t.len(), "{text}");

    // the per-event SMT query counts are visible and the chain did issue
    // solver queries somewhere
    let total_queries: usize = t.iter().map(|e| e.smt_queries).sum();
    assert!(
        total_queries > 0,
        "no SMT queries recorded in the transcript"
    );
}

#[test]
fn pollution_tracked_through_pipeline() {
    let lib = GemminiLib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::gemmini_gemm::schedule_matmul(&lib, &st, 32, 32, 32).unwrap();
    // the schedule inserted four configuration writes: all four fields are
    // recorded as polluted relative to the naive root
    assert_eq!(p.polluted().len(), 4, "{:?}", p.polluted());
}
