//! Using the textual front-end: define a hardware instruction and an
//! application in surface syntax, schedule the application onto the
//! instruction, and emit C.
//!
//! ```sh
//! cargo run --example text_frontend
//! ```

use exo::front::{parse_library, ParseEnv};
use exo::sched::Procedure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = r#"
@instr("vadd8({dst}.data, {a}.data, {b}.data);")
def vadd8(a: [f32][8] @ DRAM, b: [f32][8] @ DRAM, dst: [f32][8] @ DRAM):
    for l in seq(0, 8):
        dst[l] = a[l] + b[l]

@proc
def add_arrays(n: size, x: f32[n], y: f32[n], out: f32[n]):
    assert n % 8 == 0
    for i in seq(0, n):
        out[i] = x[i] + y[i]
"#;
    let procs = parse_library(src, &ParseEnv::new())?;
    let vadd8 = &procs[0];
    let app = Procedure::new(procs[1].clone());

    // tile by the vector width, then select the instruction
    let scheduled = app
        .split("for i in _: _", 8, "io", "il")?
        .replace("for il in _: _", vadd8)?;
    println!("=== scheduled ===\n{}", scheduled.show());

    let c = exo::codegen::compile_c(&[scheduled.proc().clone()], &Default::default())?;
    println!("=== generated C ===\n{c}");
    Ok(())
}
