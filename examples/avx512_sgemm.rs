//! The x86 SGEMM case study (§7.2) as a runnable example: schedule a
//! naive f32 GEMM into the paper's 6×64 AVX-512 microkernel, verify it
//! against the interpreter, and evaluate it on the Tiger Lake core
//! model next to the MKL-like and OpenBLAS-like strategies.
//!
//! ```sh
//! cargo run --release --example avx512_sgemm
//! ```

use std::sync::{Arc, Mutex};

use exo::hwlibs::Avx512Lib;
use exo::kernels::x86_gemm::{schedule_sgemm, GemmStrategy};
use exo::sched::SchedState;
use x86_sim::CoreModel;

fn main() {
    let lib = Avx512Lib::new();
    let state = Arc::new(Mutex::new(SchedState::default()));

    println!("scheduling a 48x128x64 SGEMM into the 6x64 microkernel…");
    let p = schedule_sgemm(&lib, &state, 48, 128, 64, 6, 64).expect("schedule");
    println!("{} directives; kernel head:", p.directives());
    for line in p.show().lines().take(16) {
        println!("{line}");
    }
    println!("…\n");

    // static profile of the scheduled IR
    let profile = x86_sim::profile_proc(p.proc()).expect("constant bounds");
    println!(
        "static profile: {} FMAs, {} loads, {} broadcasts, {} stores",
        profile.fmas, profile.vec_loads, profile.broadcasts, profile.vec_stores
    );

    // the Fig. 5a comparison at a few square sizes
    let core = CoreModel::tiger_lake();
    println!(
        "\n=== GFLOP/s on square sizes (peak {:.1}) ===",
        core.peak_gflops()
    );
    println!("{:<8} {:>9} {:>9} {:>9}", "size", "Exo", "MKL", "OpenBLAS");
    for s in [384u64, 768, 1152, 1536, 1920] {
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>9.1}",
            s,
            GemmStrategy::exo().gflops(s, s, s, &core),
            GemmStrategy::mkl_like().gflops(s, s, s, &core),
            GemmStrategy::openblas_like().gflops(s, s, s, &core),
        );
    }
}
