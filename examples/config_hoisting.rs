//! The §2.4 walkthrough: configuration state, instruction abstraction,
//! and hoisting configuration writes out of loops — with the simulator
//! showing why it matters (configuration instructions flush the
//! accelerator pipeline).
//!
//! ```sh
//! cargo run --example config_hoisting
//! ```

use std::sync::{Arc, Mutex};

use exo::hwlibs::GemminiLib;
use exo::prelude::*;
use exo::sched::SchedState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = GemminiLib::new();
    let state = Arc::new(Mutex::new(SchedState::default()));

    // a load phase that re-configures the stride on every tile — the
    // "fused" behavior of §2.4
    let mut b = ProcBuilder::new("load_phase");
    let src = b.tensor("src", DataType::I8, vec![Expr::int(64), Expr::int(64)]);
    let dst = b.tensor_in(
        "dst",
        DataType::I8,
        vec![Expr::int(64), Expr::int(64)],
        lib.scratchpad,
    );
    let t = b.begin_for("t", Expr::int(0), Expr::int(4));
    b.write_config(
        lib.config_ld.0,
        lib.config_ld.1,
        Expr::Stride { buf: src, dim: 0 },
    );
    let i = b.begin_for("i", Expr::int(0), Expr::int(16));
    let j = b.begin_for("j", Expr::int(0), Expr::int(64));
    b.assign(
        dst,
        vec![
            Expr::var(t).mul(Expr::int(16)).add(Expr::var(i)),
            Expr::var(j),
        ],
        exo::core::build::read(
            src,
            vec![
                Expr::var(t).mul(Expr::int(16)).add(Expr::var(i)),
                Expr::var(j),
            ],
        ),
    );
    b.end_for().end_for().end_for();
    let p = Procedure::with_state(b.finish(), state);

    println!(
        "=== before: the config write is inside the loop ===\n{}",
        p.show()
    );

    // hoist it: fission the loop after the write, then remove the
    // config-only loop (provably idempotent and non-empty, §5.8)
    let hoisted = p
        .fission_after("ConfigLd.src_stride = _")?
        .remove_loop("for t in _: _")?;
    println!(
        "=== after fission_after + remove_loop ===\n{}",
        hoisted.show()
    );

    // why it matters: simulate both instruction streams
    let count = |q: &Procedure| {
        let mut m = Machine::new();
        m.execute_instr_bodies = false;
        let s = m.alloc_extern_uninit("src", DataType::I8, &[64, 64]);
        let d = m.alloc_extern_uninit("dst", DataType::I8, &[64, 64]);
        // map loops to instructions first
        let q = q
            .split("for j in _: _", 16, "jo", "ji")
            .and_then(|q| q.reorder("for i in _: _", "jo"))
            .and_then(|q| q.replace("for i in _: _", &lib.mvin))
            .and_then(|q| q.replace("ConfigLd.src_stride = _", &lib.config_ld_instr))
            .expect("mapping");
        m.run(q.proc(), &[ArgVal::Tensor(s), ArgVal::Tensor(d)])
            .expect("runs");
        m.take_trace()
    };
    let fused_trace = count(&p);
    let hoisted_trace = count(&hoisted);
    let sim = |t: &[exo::interp::HwOp]| {
        gemmini_sim::Simulator::new(gemmini_sim::SimConfig::software()).run(t)
    };
    let rf = sim(&fused_trace);
    let rh = sim(&hoisted_trace);
    println!("fused:   {} flushes, {} cycles", rf.flushes, rf.cycles);
    println!("hoisted: {} flushes, {} cycles", rh.flushes, rh.cycles);
    println!("hoisting wins {:.2}x", rf.cycles as f64 / rh.cycles as f64);
    Ok(())
}
