//! Prints the schedule-provenance transcript of the Gemmini GEMM
//! case study: every rewrite applied, in order, with its verdict,
//! statement counts, SMT queries, and wall time.
//!
//! ```sh
//! cargo run --example schedule_transcript
//! ```

use std::sync::{Arc, Mutex};

use exo::hwlibs::GemminiLib;
use exo::sched::SchedState;

fn main() {
    let lib = GemminiLib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));
    let p = exo::kernels::gemmini_gemm::schedule_matmul(&lib, &st, 64, 64, 64)
        .expect("the paper's GEMM schedule applies");
    print!("{}", p.transcript_text());

    println!();
    println!("global metrics after scheduling:");
    print!("{}", exo::obs::Registry::global().transcript());
}
