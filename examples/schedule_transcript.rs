//! Prints the schedule-provenance transcript of the paper's Fig. 5a
//! x86 SGEMM case study — every rewrite applied, in order, with its
//! verdict, statement counts, SMT-query and cache-hit deltas, and wall
//! time, plus the per-operator cost table — then exports the causal
//! trace tree as Chrome `trace_event` JSON and collapsed flamegraph
//! stacks:
//!
//! ```sh
//! cargo run --example schedule_transcript
//! # open target/trace_schedule.json in chrome://tracing or Perfetto
//! # third_party flamegraph.pl target/trace_schedule.folded > flame.svg
//! ```
//!
//! The example doubles as the acceptance check for cost attribution: it
//! validates the exported Chrome trace with the strict `exo_obs::json`
//! parser and reconciles the per-operator `smt.queries.op.*` family
//! against the flat `smt.queries` counter, exiting nonzero on any
//! mismatch.

use std::path::Path;
use std::sync::{Arc, Mutex};

use exo::hwlibs::Avx512Lib;
use exo::kernels::x86_gemm::schedule_sgemm;
use exo::obs::{self, Json, Registry};
use exo::sched::SchedState;

fn main() {
    let lib = Avx512Lib::new();
    let st = Arc::new(Mutex::new(SchedState::default()));

    // The Fig. 5a chain: block 6×64, vectorize, hoist B packing.
    let (m, n, k) = (48, 128, 64);
    let p = schedule_sgemm(&lib, &st, m, n, k, 6, 64).expect("the paper's SGEMM schedule applies");
    print!("{}", p.transcript_text());

    // Measure the scheduled kernel on the port-pressure core model so
    // the trace also contains an attributed simulator invocation.
    let core = x86_sim::CoreModel::tiger_lake();
    let traffic = x86_sim::traffic::Traffic::default();
    if let Some((_, cycles)) = x86_sim::evaluate(p.proc(), &core, &traffic) {
        let flops = 2 * (m * n * k) as u64;
        let gf = core.gflops(flops, cycles);
        println!();
        println!(
            "simulated: {cycles:.0} cycles, {gf:.1} GFLOP/s ({:.0}% of peak)",
            gf / core.peak_gflops() * 100.0
        );
    }

    println!();
    println!("global metrics after scheduling:");
    print!("{}", Registry::global().transcript());

    // ---- trace exports ----
    let reg = Registry::global();
    std::fs::create_dir_all("target").expect("create target/");
    let trace_path = Path::new("target/trace_schedule.json");
    let folded_path = Path::new("target/trace_schedule.folded");
    reg.write_chrome_trace(trace_path)
        .expect("write Chrome trace");
    reg.write_collapsed_stacks(folded_path)
        .expect("write collapsed stacks");
    println!();
    println!(
        "wrote {} ({} spans) and {}",
        trace_path.display(),
        reg.traces().len(),
        folded_path.display()
    );

    // ---- acceptance check 1: the exported trace is strict JSON ----
    let text = std::fs::read_to_string(trace_path).expect("read back trace");
    let parsed = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: exported Chrome trace is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    };
    let n_events = match parsed.get("traceEvents") {
        Some(Json::Arr(evs)) if !evs.is_empty() => evs.len(),
        _ => {
            eprintln!("FAIL: Chrome trace has no traceEvents");
            std::process::exit(1);
        }
    };
    println!("trace OK: {n_events} trace events validate under the strict parser");

    // ---- acceptance check 2: attribution reconciles ----
    let flat = obs::counter_get("smt.queries");
    let (by_op, attributed_total) = obs::attr::attributed_counters(reg, "smt.queries");
    println!();
    println!("solver queries by operator (of {flat} total):");
    for (op, v) in &by_op {
        println!("  {op:<16} {v}");
    }
    if attributed_total != flat {
        eprintln!("FAIL: attributed smt.queries sum {attributed_total} != flat counter {flat}");
        std::process::exit(1);
    }
    println!("attribution OK: per-operator queries sum to the global counter");
}
