//! Quickstart: the paper's §2 walkthrough, end to end.
//!
//! Write a naive GEMM in surface syntax, tile it with scheduling
//! rewrites, verify it still computes the same thing with the reference
//! interpreter, and emit C.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use exo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. the algorithm — what to compute, not how
    let src = r#"
@proc
def gemm(A: f32[128, 128], B: f32[128, 128], C: f32[128, 128]):
    for i in seq(0, 128):
        for j in seq(0, 128):
            for k in seq(0, 128):
                C[i, j] += A[i, k] * B[k, j]
"#;
    let gemm = exo::front::parse_proc(src, &exo::front::ParseEnv::new())?;
    exo::core::check::check_proc(&gemm)?;
    println!(
        "=== the algorithm ===\n{}",
        exo::core::printer::proc_to_string(&gemm)
    );

    // 2. the schedule — §2.1's split/reorder rewrites, each one checked
    let p = Procedure::new(gemm.clone())
        .split("for i in _: _", 16, "io", "ii")?
        .split("for j in _: _", 16, "jo", "ji")?
        .split("for k in _: _", 16, "ko", "ki")?
        .reorder("for ii in _: _", "jo")?
        .reorder("for ji in _: _", "ko")?
        .reorder("for ii in _: _", "ko")?;
    println!(
        "=== after {} scheduling directives ===\n{}",
        p.directives(),
        p.show()
    );

    // 3. the proof of equivalence, empirically: run both on the same data
    let run = |proc: &Proc| -> Vec<f64> {
        let n = 128;
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut m = Machine::new();
        let ida = m.alloc_extern("A", DataType::F32, &[n, n], &a);
        let idb = m.alloc_extern("B", DataType::F32, &[n, n], &b);
        let idc = m.alloc_extern("C", DataType::F32, &[n, n], &vec![0.0; n * n]);
        m.run(
            proc,
            &[
                ArgVal::Tensor(ida),
                ArgVal::Tensor(idb),
                ArgVal::Tensor(idc),
            ],
        )
        .expect("runs");
        m.buffer_values(idc).expect("initialized")
    };
    assert_eq!(run(&gemm), run(p.proc()));
    println!("interpreter agrees: naive == scheduled\n");

    // 4. compile to C
    let c = exo::codegen::compile_c(&[p.proc().clone()], &Default::default())?;
    println!("=== generated C ({} lines) ===", c.lines().count());
    for line in c.lines().take(24) {
        println!("{line}");
    }
    println!("…");
    Ok(())
}
