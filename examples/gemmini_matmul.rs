//! The Gemmini MATMUL case study (§7.1) as a runnable example: schedule
//! a naive i8 GEMM onto the Gemmini instruction library, show the
//! resulting kernel and its hardware-instruction trace, and simulate its
//! utilization against the handwritten-library baseline.
//!
//! ```sh
//! cargo run --release --example gemmini_matmul
//! ```

use std::sync::{Arc, Mutex};

use exo::hwlibs::GemminiLib;
use exo::kernels::gemmini_gemm::{old_lib_matmul_trace, schedule_matmul, trace_matmul};
use exo::sched::SchedState;
use gemmini_sim::{SimConfig, Simulator};

fn main() {
    let lib = GemminiLib::new();
    let state = Arc::new(Mutex::new(SchedState::default()));
    let (n, m, k) = (256, 256, 256);

    println!("scheduling a {n}x{m}x{k} i8 GEMM onto Gemmini…");
    let p = schedule_matmul(&lib, &state, n, m, k).expect("the schedule is provably safe");
    println!("{} scheduling directives applied", p.directives());
    println!("polluted configuration fields: {:?}\n", p.polluted().len());

    // show the top of the scheduled kernel
    let shown = p.show();
    println!("=== scheduled kernel (head) ===");
    for line in shown.lines().take(18) {
        println!("{line}");
    }
    println!("…\n");

    // trace and simulate
    let exo_trace = trace_matmul(p.proc(), n, m, k, false);
    let old_trace = old_lib_matmul_trace(n, m, k);
    let r_exo = Simulator::new(SimConfig::software()).run(&exo_trace);
    let r_old = Simulator::new(SimConfig::software()).run(&old_trace);
    let r_hw = Simulator::new(SimConfig::hardware_unroller()).run(&exo_trace);

    println!("=== cycle-approximate simulation ===");
    println!(
        "Old-lib : {:>9} instrs, {:>4} flushes, {:>10} cycles, {:>5.1}% of peak",
        r_old.instructions,
        r_old.flushes,
        r_old.cycles,
        r_old.utilization * 100.0
    );
    println!(
        "Exo-lib : {:>9} instrs, {:>4} flushes, {:>10} cycles, {:>5.1}% of peak",
        r_exo.instructions,
        r_exo.flushes,
        r_exo.cycles,
        r_exo.utilization * 100.0
    );
    println!(
        "Hardware: {:>9} instrs, {:>4} flushes, {:>10} cycles, {:>5.1}% of peak",
        r_exo.instructions,
        r_hw.flushes,
        r_hw.cycles,
        r_hw.utilization * 100.0
    );
    println!(
        "\nExo-lib beats the handwritten library by {:.1}x (paper §7.1: ~3.5x on average)",
        r_exo.utilization / r_old.utilization
    );
}
