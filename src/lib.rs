//! # exo — exocompilation for hardware accelerators, in Rust
//!
//! A from-scratch reproduction of *Exocompilation for Productive
//! Programming of Hardware Accelerators* (Ikarashi, Bernstein, Reinking,
//! Genc, Ragan-Kelley — PLDI 2022).
//!
//! Exocompilation externalizes hardware-specific code generation and
//! optimization policy from the compiler into user libraries: custom
//! memories, instructions (`@instr`), and configuration state are
//! defined in library code ([`hwlibs`]), and optimization happens by
//! *user scheduling* — composable, safety-checked rewrites
//! ([`sched`]) verified by effect analyses ([`analysis`]) over a
//! Presburger solver ([`smt`]).
//!
//! ```
//! use exo::prelude::*;
//!
//! // the paper's §2 GEMM, in surface syntax
//! let src = r#"
//! @proc
//! def gemm(n: size, A: f32[n, n], B: f32[n, n], C: f32[n, n]):
//!     for i in seq(0, n):
//!         for j in seq(0, n):
//!             for k in seq(0, n):
//!                 C[i, j] += A[i, k] * B[k, j]
//! "#;
//! let gemm = exo::front::parse_proc(src, &exo::front::ParseEnv::new())?;
//!
//! // schedule: tile the i and j loops 4×4 (guarded, so any n works)
//! let p = Procedure::new(gemm)
//!     .split_guard("for i in _: _", 4, "io", "ii")?
//!     .split_guard("for j in _: _", 4, "jo", "ji")?;
//!
//! // compile to C
//! let c = exo::codegen::compile_c(&[p.proc().clone()], &Default::default())?;
//! assert!(c.contains("void gemm("));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The crates:
//!
//! * [`core`] — IR, builder, checks, printer
//! * [`front`] — text syntax parser
//! * [`smt`] — ternary logic + Presburger solver
//! * [`analysis`] — effects, location sets, safety conditions
//! * [`sched`] — the scheduling operators (paper Fig. 2)
//! * [`codegen`] — C emission with user memories/instructions
//! * [`interp`] — reference interpreter + instruction traces
//! * [`hwlibs`] — Gemmini and AVX-512 as user libraries
//! * [`gemmini_sim`] / [`x86_sim`] — the evaluation substrates
//! * [`kernels`] — the §7 case studies
//! * [`chaos`] — seeded fault injection for robustness testing
//! * [`obs`] — tracing, metrics, schedule provenance
//! * [`lint`] — loop-dependence classifier + whole-program lint rules

pub use exo_analysis as analysis;
pub use exo_chaos as chaos;
pub use exo_codegen as codegen;
pub use exo_core as core;
pub use exo_front as front;
pub use exo_hwlibs as hwlibs;
pub use exo_interp as interp;
pub use exo_kernels as kernels;
pub use exo_lint as lint;
pub use exo_obs as obs;
pub use exo_sched as sched;
pub use exo_smt as smt;
pub use gemmini_sim;
pub use x86_sim;

/// The common imports for working with exo-rs.
pub mod prelude {
    pub use exo_core::build::{read, read0, ProcBuilder};
    pub use exo_core::ir::{Expr, Proc, Stmt};
    pub use exo_core::types::{CtrlType, DataType, MemName};
    pub use exo_core::Sym;
    pub use exo_interp::{ArgVal, Machine};
    pub use exo_sched::{Procedure, SchedError};
}
