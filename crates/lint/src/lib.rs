//! # exo-lint
//!
//! Whole-program static analysis over the exo-rs core IR, built on the
//! same effect/location-set machinery (`exo-analysis`) that checks
//! scheduling rewrites — so every verdict here is as strong (and as
//! cautious) as the rewrite checker itself.
//!
//! Two entry points:
//!
//! * [`classify_loop`] / [`classify_loops`] — the loop-carried
//!   dependence / race detector. Each `for` loop is classified on the
//!   verdict lattice [`LoopVerdict`]: `Parallel` (iterations fully
//!   independent), `ReductionParallel` (iterations conflict only via
//!   `+=` into the same locations), or `Sequential` (a dependence
//!   exists or could not be ruled out — with a concrete [`Witness`]
//!   pair when the solver confirms a collision). `exo-sched`'s
//!   `parallelize` operator is gated on this verdict.
//! * [`lint_proc`] — the rule pack (`dead-alloc`, `uninit-read`,
//!   `config-clobber`, `window-alias`, `precision-mismatch`,
//!   `empty-loop`), reporting [`exo_core::diag::Diagnostic`]s with
//!   spans into the AST and machine-readable JSON via
//!   [`diagnostics_json`].
//!
//! Every solver query is posed through
//! [`exo_analysis::SharedCheckCtx`], so obligations are canonicalized
//! (alpha-renamed) and memoized: a lint pass warms the same verdict
//! cache scheduling uses, and vice versa. `Unknown` answers — budget
//! exhaustion, chaos-injected give-ups — only ever degrade verdicts
//! toward `Sequential` / "no finding"; they never promote a loop to
//! `Parallel`.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod depend;
pub mod rules;

use exo_core::diag::Diagnostic;
use exo_core::path::StmtPath;
use exo_core::Sym;
use exo_obs::Json;

pub use depend::{classify_loop, classify_loops, AccessKind, LintError, LoopVerdict, Witness};
pub use rules::{lint_proc, lint_proc_with};

fn jobj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders diagnostics as one JSON array (machine-readable export).
pub fn diagnostics_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(diags.iter().map(diagnostic_json).collect())
}

/// Renders one diagnostic as a JSON object.
pub fn diagnostic_json(d: &Diagnostic) -> Json {
    jobj(vec![
        ("rule", Json::Str(d.rule.clone())),
        ("severity", Json::Str(d.severity.name().to_string())),
        ("proc", Json::Str(d.proc_name.clone())),
        (
            "path",
            match &d.path {
                Some(p) => Json::Str(p.to_string()),
                None => Json::Null,
            },
        ),
        ("message", Json::Str(d.message.clone())),
        (
            "notes",
            Json::Arr(d.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
    ])
}

/// Renders one loop verdict as a JSON object (used by the lint bench).
pub fn verdict_json(path: &StmtPath, iter: Sym, v: &LoopVerdict) -> Json {
    let mut fields = vec![
        ("path", Json::Str(path.to_string())),
        ("iter", Json::Str(iter.name())),
        ("verdict", Json::Str(v.name().to_string())),
    ];
    match v {
        LoopVerdict::ReductionParallel { bufs } => {
            fields.push((
                "reduction_bufs",
                Json::Arr(bufs.iter().map(|b| Json::Str(b.name())).collect()),
            ));
        }
        LoopVerdict::Sequential { witness: Some(w) } => {
            fields.push(("witness", Json::Str(w.to_string())));
        }
        _ => {}
    }
    jobj(fields)
}
