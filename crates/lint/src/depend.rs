//! Loop-carried dependence / race detection (the tentpole analysis).
//!
//! For a candidate loop `for x in [lo, hi): s`, the detector asks
//! whether two *distinct* iterations can interfere. The per-iteration
//! effect of `s` is flattened into primitive access atoms (buffer,
//! index, enclosing guards and effect-loop binders); any cross-iteration
//! conflict must be between one atom of iteration `x` and one atom of a
//! symbolically distinct iteration `x′`, so each conflicting pair
//! becomes one small satisfiability probe under the hypothesis
//! `Bd(x) ∧ Bd(x′) ∧ x ≠ x′` (both iterations in bounds and distinct),
//! with the second copy alpha-freshened. Buffers allocated inside the
//! body are iteration-private and erased first. The verdict lattice:
//!
//! * **`Parallel`** — every conflicting pair is *refuted*: no location
//!   is touched by two iterations in any conflicting mode. A plain
//!   `#pragma omp parallel for` is sound.
//! * **`ReductionParallel`** — all non-reduction pairs are refuted, but
//!   distinct iterations may `+=` into the same location. Reduction is
//!   commutative and associative for the analysis (paper Def. 5.6), so
//!   the loop parallelizes with an OpenMP `reduction(+:…)` clause over
//!   the conflicting buffers.
//! * **`Sequential`** — some pair was *confirmed* (it comes with a
//!   concrete [`Witness`]: the pair of accesses the solver proved can
//!   collide) or could not be refuted. `Unknown` answers always land
//!   here — the lattice only ever degrades toward `Sequential`, never
//!   toward `Parallel` (fail-safe, chaos-tested).
//!
//! Decomposing into per-pair probes (instead of one monolithic
//! `Commutes` validity goal over the whole body effect) keeps every
//! query within the solver's work limits even for fully scheduled
//! kernels, and each probe is canonicalized and cached through
//! [`SharedCheckCtx`]: linting a kernel warms the very cache that
//! scheduling (and `parallelize`) will hit later in the process.

use std::collections::{HashMap, HashSet};
use std::fmt;

use exo_analysis::conditions::bd;
use exo_analysis::context::{effect_of_stmts_cached, site_ctx, SiteCtx};
use exo_analysis::{EffExpr, Effect, GlobalReg, LowerCtx, SharedCheckCtx};
use exo_core::ir::{BinOp, Stmt};
use exo_core::path::{stmt_at, visit_paths, StmtPath};
use exo_core::{Proc, Sym};
use exo_smt::formula::Formula;
use exo_smt::solver::Answer;

/// An error from the analysis driver itself (bad path, not a loop).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LintError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

fn lerr(msg: impl Into<String>) -> LintError {
    LintError {
        message: msg.into(),
    }
}

/// How an access touches a location.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Overwrite.
    Write,
    /// Commutative `+=` reduction.
    Reduce,
}

impl AccessKind {
    /// Lower-case name for rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Reduce => "reduce",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A confirmed pair of conflicting accesses from distinct iterations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    /// Buffer both accesses touch.
    pub buf: Sym,
    /// Access in iteration `x`.
    pub first: AccessKind,
    /// Rendered index of the first access.
    pub first_idx: String,
    /// Access in the distinct iteration `x′`.
    pub second: AccessKind,
    /// Rendered index of the second access.
    pub second_idx: String,
    /// The loop iteration variable the conflict is carried by.
    pub iter: Sym,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}[{}] in iteration {} can collide with {} {}[{}] in a distinct iteration",
            self.first,
            self.buf.name(),
            self.first_idx,
            self.iter.name(),
            self.second,
            self.buf.name(),
            self.second_idx,
        )
    }
}

/// The dependence verdict lattice (top to bottom: most to least
/// parallel; `Unknown` solver answers always collapse downward).
#[derive(Clone, PartialEq, Debug)]
pub enum LoopVerdict {
    /// Distinct iterations are fully independent.
    Parallel,
    /// Iterations only conflict through `+=` reductions into the listed
    /// buffers; parallel with a reduction clause.
    ReductionParallel {
        /// Buffers reduced into by multiple iterations.
        bufs: Vec<Sym>,
    },
    /// A loop-carried dependence exists (with witness when the solver
    /// confirmed a concrete colliding pair) or could not be ruled out.
    Sequential {
        /// Confirmed conflicting access pair, if one was found.
        witness: Option<Witness>,
    },
}

impl LoopVerdict {
    /// Short name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LoopVerdict::Parallel => "parallel",
            LoopVerdict::ReductionParallel { .. } => "reduction-parallel",
            LoopVerdict::Sequential { .. } => "sequential",
        }
    }

    /// Whether `parallelize` may accept this loop.
    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, LoopVerdict::Sequential { .. })
    }
}

/// Renders a symbolic index expression for witness messages.
pub(crate) fn render_effexpr(e: &EffExpr) -> String {
    match e {
        EffExpr::Var(s) | EffExpr::BoolVar(s) => s.name().to_string(),
        EffExpr::Int(i) => i.to_string(),
        EffExpr::Bool(b) => b.to_string(),
        EffExpr::Unknown => "⊥".to_string(),
        EffExpr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
            };
            format!("({} {o} {})", render_effexpr(a), render_effexpr(b))
        }
        EffExpr::Neg(a) => format!("-{}", render_effexpr(a)),
        EffExpr::Not(a) => format!("not {}", render_effexpr(a)),
        EffExpr::Ite(c, t, e) => format!(
            "({} ? {} : {})",
            render_effexpr(c),
            render_effexpr(t),
            render_effexpr(e)
        ),
        EffExpr::Stride(b, d) => format!("stride({}, {d})", b.name()),
    }
}

fn render_idx(idx: &[EffExpr]) -> String {
    let parts: Vec<String> = idx.iter().map(render_effexpr).collect();
    parts.join(", ")
}

/// Collects every buffer allocated *inside* the effect — those are
/// created afresh each iteration, so accesses to them can never carry a
/// dependence across iterations.
fn allocated_in(eff: &Effect, out: &mut HashSet<Sym>) {
    match eff {
        Effect::Seq(parts) => {
            for p in parts {
                allocated_in(p, out);
            }
        }
        Effect::Guard(_, e) | Effect::Loop { body: e, .. } => allocated_in(e, out),
        Effect::Alloc(b) => {
            out.insert(*b);
        }
        _ => {}
    }
}

/// Drops all accesses to iteration-private buffers from the effect.
/// Sound for cross-iteration analysis: a buffer allocated in the body is
/// a fresh object each iteration, so its accesses cannot collide with
/// any other iteration's.
fn privatize(eff: &Effect, private: &HashSet<Sym>) -> Effect {
    match eff {
        Effect::Seq(parts) => {
            Effect::seq_all(parts.iter().map(|p| privatize(p, private)).collect())
        }
        Effect::Guard(c, e) => match privatize(e, private) {
            Effect::Empty => Effect::Empty,
            inner => Effect::Guard(c.clone(), Box::new(inner)),
        },
        Effect::Loop { var, lo, hi, body } => match privatize(body, private) {
            Effect::Empty => Effect::Empty,
            inner => Effect::Loop {
                var: *var,
                lo: lo.clone(),
                hi: hi.clone(),
                body: Box::new(inner),
            },
        },
        Effect::Read(b, _) | Effect::Write(b, _) | Effect::Reduce(b, _) | Effect::Alloc(b)
            if private.contains(b) =>
        {
            Effect::Empty
        }
        other => other.clone(),
    }
}

/// One primitive access inside an effect, with enough enclosing
/// context (guards and effect-loop binders) to re-pose it to the solver.
#[derive(Clone, Debug)]
struct Atom {
    kind: AccessKind,
    buf: Sym,
    /// For configuration accesses: the field (the pair `(buf, field)`
    /// names one global cell, and two atoms only collide on equal pairs).
    field: Option<Sym>,
    idx: Vec<EffExpr>,
    /// Guard conditions and binder-bound predicates on the path to the
    /// access, as one conjunction of ternary expressions.
    ctx: Vec<EffExpr>,
    /// Effect-loop binders enclosing the access (for freshening).
    binders: Vec<Sym>,
}

fn collect_atoms(
    eff: &Effect,
    ctx: &mut Vec<EffExpr>,
    binders: &mut Vec<Sym>,
    out: &mut Vec<Atom>,
) {
    match eff {
        Effect::Seq(parts) => {
            for p in parts {
                collect_atoms(p, ctx, binders, out);
            }
        }
        Effect::Empty | Effect::Alloc(_) => {}
        Effect::Guard(c, e) => {
            ctx.push(c.clone());
            collect_atoms(e, ctx, binders, out);
            ctx.pop();
        }
        Effect::Loop { var, lo, hi, body } => {
            ctx.push(bd(*var, lo, hi));
            binders.push(*var);
            collect_atoms(body, ctx, binders, out);
            binders.pop();
            ctx.pop();
        }
        Effect::GlobalRead(c, f) => out.push(Atom {
            kind: AccessKind::Read,
            buf: *c,
            field: Some(*f),
            idx: Vec::new(),
            ctx: ctx.clone(),
            binders: binders.clone(),
        }),
        Effect::GlobalWrite(c, f) => out.push(Atom {
            kind: AccessKind::Write,
            buf: *c,
            field: Some(*f),
            idx: Vec::new(),
            ctx: ctx.clone(),
            binders: binders.clone(),
        }),
        Effect::Read(b, idx) => out.push(Atom {
            kind: AccessKind::Read,
            buf: *b,
            field: None,
            idx: idx.clone(),
            ctx: ctx.clone(),
            binders: binders.clone(),
        }),
        Effect::Write(b, idx) => out.push(Atom {
            kind: AccessKind::Write,
            buf: *b,
            field: None,
            idx: idx.clone(),
            ctx: ctx.clone(),
            binders: binders.clone(),
        }),
        Effect::Reduce(b, idx) => out.push(Atom {
            kind: AccessKind::Reduce,
            buf: *b,
            field: None,
            idx: idx.clone(),
            ctx: ctx.clone(),
            binders: binders.clone(),
        }),
    }
}

/// Whether a pair of access kinds can violate `Commutes` (reductions
/// commute with each other, reads commute with reads).
fn conflicting(a: AccessKind, b: AccessKind) -> bool {
    !matches!(
        (a, b),
        (AccessKind::Read, AccessKind::Read) | (AccessKind::Reduce, AccessKind::Reduce)
    )
}

/// The distinct-iteration-pair hypothesis `Bd(x) ∧ Bd(x′) ∧ x ≠ x′`.
fn pair_hypothesis(x: Sym, x2: Sym, lo: &EffExpr, hi: &EffExpr) -> EffExpr {
    bd(x, lo, hi)
        .and(bd(x2, lo, hi))
        .and(EffExpr::Not(Box::new(EffExpr::Var(x).eq(EffExpr::Var(x2)))))
}

/// Asks the solver whether `a1` in iteration `x` and `a2` in a distinct
/// iteration `x′` can touch the same location: one *satisfiability*
/// query — site assumptions ∧ pair hypothesis ∧ both access contexts ∧
/// index equality — with `a2`'s copy alpha-freshened (`x ↦ x′`, inner
/// effect-loop binders renamed) so the two iterations are unrelated.
/// Returns the answer plus `a2`'s substituted index (for rendering).
#[allow(clippy::too_many_arguments)]
fn pair_collides(
    a1: &Atom,
    a2: &Atom,
    x: Sym,
    x2: Sym,
    lo: &EffExpr,
    hi: &EffExpr,
    site: &SiteCtx,
    check: &SharedCheckCtx,
) -> (Answer, Vec<EffExpr>) {
    let mut map: HashMap<Sym, EffExpr> = HashMap::new();
    map.insert(x, EffExpr::Var(x2));
    for b in &a2.binders {
        map.insert(*b, EffExpr::Var(b.copy()));
    }
    let idx2: Vec<EffExpr> = a2.idx.iter().map(|e| e.subst(&map)).collect();
    let ctx2: Vec<EffExpr> = a2.ctx.iter().map(|e| e.subst(&map)).collect();

    let mut conj = pair_hypothesis(x, x2, lo, hi);
    for c in a1.ctx.iter().chain(ctx2.iter()) {
        conj = conj.and(c.clone());
    }
    for (e1, e2) in a1.idx.iter().zip(idx2.iter()) {
        conj = conj.and(e1.clone().eq(e2.clone()));
    }

    let mut lctx = LowerCtx::new();
    let m_conflict = lctx.lower_bool(&conj).maybe();
    let query = Formula::and(vec![
        site.assumptions(&mut lctx),
        lctx.assumptions(),
        m_conflict,
    ]);
    (check.check_sat(&query), idx2)
}

/// Builds the witness record for a confirmed colliding pair.
fn witness_of(a1: &Atom, a2: &Atom, idx2: &[EffExpr], x: Sym) -> Witness {
    let (first_idx, second_idx) = match a1.field {
        // Config accesses have no index; show the field name instead.
        Some(f) => (f.name(), f.name()),
        None => (render_idx(&a1.idx), render_idx(idx2)),
    };
    Witness {
        buf: a1.buf,
        first: a1.kind,
        first_idx,
        second: a2.kind,
        second_idx,
        iter: x,
    }
}

/// Classifies the loop at `path` in `proc`.
///
/// Queries go through `check` (canonicalized and cached) and `reg`
/// supplies canonical names for configuration fields — pass the
/// scheduler's own context/registry to share its caches.
pub fn classify_loop(
    proc: &Proc,
    path: &StmtPath,
    check: &SharedCheckCtx,
    reg: &mut GlobalReg,
) -> Result<LoopVerdict, LintError> {
    let Some(Stmt::For { iter, lo, hi, body }) = stmt_at(&proc.body, path) else {
        return Err(lerr(format!(
            "classify_loop: no for-loop at path {path} in {}",
            proc.name.name()
        )));
    };
    // Attribution fallback: a standalone dependence probe owns its
    // queries as `lint`; under `parallelize` the operator is the cause.
    let _attr = exo_obs::AttrGuard::fallback("lint", iter.name());
    let _span = exo_obs::Span::enter("lint.classify_loop")
        .with_field("iter", exo_obs::Json::Str(iter.name()));
    let site = site_ctx(proc, path, reg)
        .ok_or_else(|| lerr(format!("classify_loop: invalid path {path}")))?;
    let lo_e = exo_analysis::globals::lift_in_env(lo, &site.genv, reg);
    let hi_e = exo_analysis::globals::lift_in_env(hi, &site.genv, reg);

    let eff = {
        let mut ctx = check.lock();
        effect_of_stmts_cached(proc, body, &site.genv, reg, &mut ctx.effects)
    };
    // Buffers allocated inside the body (staged tiles, spilled registers)
    // are iteration-private — exclude them from the dependence question.
    let mut private = HashSet::new();
    allocated_in(&eff, &mut private);
    let eff = privatize(&eff, &private);

    // The dependence question, decomposed: any cross-iteration conflict
    // is between one access of iteration x and one access of iteration
    // x′, so we enumerate conflicting access pairs and pose each as one
    // *small* satisfiability probe. All pairs refuted → Parallel; only
    // reduce/reduce pairs can collide → ReductionParallel; a confirmed
    // pair → Sequential with that pair as the witness; an unprovable
    // pair → Sequential (fail safe). Unlike one monolithic Commutes
    // validity goal over the whole body effect, each probe is tiny and
    // independently cacheable — scheduled kernels with dozens of nested
    // accesses stay within the solver's work limits.
    let x = *iter;
    let x2 = x.copy();
    let mut atoms = Vec::new();
    collect_atoms(&eff, &mut Vec::new(), &mut Vec::new(), &mut atoms);

    exo_obs::counter_add("lint.depend.loops", 1);
    exo_obs::attr::counter_add_by_op("lint.depend.loops", 1);
    let mut reduction_bufs: Vec<Sym> = Vec::new();
    let mut unknown = false;
    for (n1, a1) in atoms.iter().enumerate() {
        // Conflict is symmetric: unordered pairs, self-pairs included
        // (an access can collide with its own copy in iteration x′).
        for a2 in &atoms[n1..] {
            if a1.buf != a2.buf || a1.field != a2.field || a1.idx.len() != a2.idx.len() {
                continue;
            }
            let reduce_pair = a1.kind == AccessKind::Reduce && a2.kind == AccessKind::Reduce;
            if !reduce_pair && !conflicting(a1.kind, a2.kind) {
                continue; // read/read
            }
            let (ans, idx2) = pair_collides(a1, a2, x, x2, &lo_e, &hi_e, &site, check);
            if reduce_pair {
                // Yes or Unknown: cover the buffer with a reduction
                // clause — sound either way, a clause over a location
                // that never collides is merely redundant.
                if ans != Answer::No && !reduction_bufs.contains(&a1.buf) {
                    reduction_bufs.push(a1.buf);
                }
            } else {
                match ans {
                    Answer::No => {}
                    Answer::Yes => {
                        exo_obs::counter_add("lint.depend.sequential", 1);
                        return Ok(LoopVerdict::Sequential {
                            witness: Some(witness_of(a1, a2, &idx2, x)),
                        });
                    }
                    // The solver gave up: keep scanning for a provable
                    // witness, but the verdict can no longer be Parallel.
                    _ => unknown = true,
                }
            }
        }
    }

    if unknown {
        exo_obs::counter_add("lint.depend.sequential", 1);
        return Ok(LoopVerdict::Sequential { witness: None });
    }
    if !reduction_bufs.is_empty() {
        reduction_bufs.sort_by_key(|b| (b.name(), b.id()));
        exo_obs::counter_add("lint.depend.reduction_parallel", 1);
        return Ok(LoopVerdict::ReductionParallel {
            bufs: reduction_bufs,
        });
    }
    exo_obs::counter_add("lint.depend.parallel", 1);
    Ok(LoopVerdict::Parallel)
}

/// Classifies every `for` loop in `proc`, outermost first (pre-order).
pub fn classify_loops(
    proc: &Proc,
    check: &SharedCheckCtx,
    reg: &mut GlobalReg,
) -> Vec<(StmtPath, Sym, LoopVerdict)> {
    let mut loops = Vec::new();
    visit_paths(&proc.body, |path, stmt| {
        if let Stmt::For { iter, .. } = stmt {
            loops.push((path.clone(), *iter));
        }
    });
    loops
        .into_iter()
        .filter_map(|(path, iter)| {
            classify_loop(proc, &path, check, reg)
                .ok()
                .map(|v| (path, iter, v))
        })
        .collect()
}
