//! The lint rule pack: ~6 whole-program rules over the effect/locset
//! machinery, all reporting through [`exo_core::diag::Diagnostic`].
//!
//! | rule id              | severity | finding |
//! |----------------------|----------|---------|
//! | `dead-alloc`         | Warning  | locally allocated buffer never read |
//! | `uninit-read`        | Error    | read of a local buffer before any possible write |
//! | `config-clobber`     | Warning  | two writes to one config field, no intervening read |
//! | `window-alias`       | Warning  | two windows over one buffer may overlap |
//! | `precision-mismatch` | Warning  | call argument precision differs from the formal |
//! | `empty-loop`         | Warning  | loop bounds provably describe an empty range |
//!
//! Syntactic rules (`dead-alloc`, `uninit-read`, `config-clobber`,
//! `precision-mismatch`) are conservative walks of the IR; the symbolic
//! rules (`window-alias`, `empty-loop`) pose their obligations through
//! the shared [`SharedCheckCtx`], so they are canonicalized and cached
//! alongside scheduling obligations.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use exo_analysis::globals::lift_in_env;
use exo_analysis::{EffExpr, GlobalReg, LowerCtx, SharedCheckCtx};
use exo_core::diag::{Diagnostic, Severity};
use exo_core::ir::{Expr, Stmt, WAccess};
use exo_core::path::{stmt_at, visit_paths, StmtPath};
use exo_core::types::DataType;
use exo_core::visit::visit_stmt_exprs;
use exo_core::{Proc, Sym};
use exo_smt::formula::Formula;
use exo_smt::solver::Answer;

use crate::depend::render_effexpr;

/// Runs every lint rule over `proc` with a private global registry.
pub fn lint_proc(proc: &Arc<Proc>, check: &SharedCheckCtx) -> Vec<Diagnostic> {
    let mut reg = GlobalReg::new();
    lint_proc_with(proc, check, &mut reg)
}

/// Runs every lint rule over `proc`, sharing the caller's registry (so
/// canonical config names — and hence cache keys — match the
/// scheduler's).
pub fn lint_proc_with(
    proc: &Arc<Proc>,
    check: &SharedCheckCtx,
    reg: &mut GlobalReg,
) -> Vec<Diagnostic> {
    // Attribution fallback: standalone lint passes own their solver and
    // cache work as `lint`; when a scheduling operator (e.g.
    // `parallelize`) drives the rules, the operator stays the cause.
    let _attr = exo_obs::AttrGuard::fallback("lint", proc.name.name());
    let _span = exo_obs::Span::enter("lint.rules")
        .with_field("proc", exo_obs::Json::Str(proc.name.to_string()));
    let mut out = Vec::new();
    rule_dead_alloc(proc, &mut out);
    rule_uninit_read(proc, &mut out);
    rule_config_clobber(proc, &mut out);
    rule_window_alias(proc, check, reg, &mut out);
    rule_precision_mismatch(proc, &mut out);
    rule_empty_loop(proc, check, reg, &mut out);
    for d in &out {
        exo_obs::counter_add(&format!("lint.rule.{}", d.rule), 1);
    }
    exo_obs::counter_add("lint.findings", out.len() as u64);
    out
}

fn diag(
    rule: &str,
    severity: Severity,
    proc: &Proc,
    path: &StmtPath,
    message: String,
) -> Diagnostic {
    Diagnostic::new(rule, severity, proc.name.name(), message).with_path(path.clone())
}

/// Resolves window names to their root buffer (windows alias their
/// base, so reads/writes through a window count against the root).
fn window_roots(proc: &Proc) -> HashMap<Sym, Sym> {
    let mut roots: HashMap<Sym, Sym> = HashMap::new();
    visit_paths(&proc.body, |_, s| {
        if let Stmt::WindowDef {
            name,
            rhs: Expr::Window { buf, .. },
        } = s
        {
            let root = *roots.get(buf).unwrap_or(buf);
            roots.insert(*name, root);
        }
    });
    roots
}

fn root_of(buf: Sym, roots: &HashMap<Sym, Sym>) -> Sym {
    *roots.get(&buf).unwrap_or(&buf)
}

// ---------------------------------------------------------------------
// dead-alloc: a locally allocated buffer that is never read.
// ---------------------------------------------------------------------

fn rule_dead_alloc(proc: &Proc, out: &mut Vec<Diagnostic>) {
    let roots = window_roots(proc);
    // Every buffer whose data may be observed: read expressions, window
    // creation over it does not count by itself, but passing it (or a
    // window of it) to a call does — the callee may read it.
    let mut observed: HashSet<Sym> = HashSet::new();
    visit_paths(&proc.body, |_, s| {
        let callee_args: Option<&Vec<Expr>> = match s {
            Stmt::Call { args, .. } => Some(args),
            _ => None,
        };
        visit_stmt_exprs(s, &mut |e| {
            if let Expr::Read { buf, .. } = e {
                observed.insert(root_of(*buf, &roots));
            }
        });
        if let Some(args) = callee_args {
            for a in args {
                if let Expr::Read { buf, .. } | Expr::Window { buf, .. } | Expr::Var(buf) = a {
                    observed.insert(root_of(*buf, &roots));
                }
            }
        }
    });
    visit_paths(&proc.body, |path, s| {
        if let Stmt::Alloc { name, .. } = s {
            if !observed.contains(name) {
                out.push(diag(
                    "dead-alloc",
                    Severity::Warning,
                    proc,
                    path,
                    format!(
                        "buffer {} is allocated (and possibly written) but never read",
                        name.name()
                    ),
                ));
            }
        }
    });
}

// ---------------------------------------------------------------------
// uninit-read: a read of a locally allocated buffer before any write
// to it could possibly have happened (on *any* path — so the read is
// definitely uninitialized).
// ---------------------------------------------------------------------

fn rule_uninit_read(proc: &Proc, out: &mut Vec<Diagnostic>) {
    let roots = window_roots(proc);
    let mut local: HashSet<Sym> = HashSet::new();
    let mut written: HashSet<Sym> = HashSet::new();
    let mut flagged: HashSet<Sym> = HashSet::new();
    walk_uninit(
        proc,
        &proc.body,
        &StmtPath::default(),
        0,
        &roots,
        &mut local,
        &mut written,
        &mut flagged,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn walk_uninit(
    proc: &Proc,
    block: &[Stmt],
    parent: &StmtPath,
    block_id: usize,
    roots: &HashMap<Sym, Sym>,
    local: &mut HashSet<Sym>,
    written: &mut HashSet<Sym>,
    flagged: &mut HashSet<Sym>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, s) in block.iter().enumerate() {
        let path = if parent.is_empty() {
            StmtPath::top(i)
        } else {
            parent.child(block_id, i)
        };
        // Reads happen before this statement's own write takes effect —
        // including the implicit read of a `+=` target.
        let mut check_read = |buf: Sym, path: &StmtPath, out: &mut Vec<Diagnostic>| {
            let root = root_of(buf, roots);
            if local.contains(&root) && !written.contains(&root) && flagged.insert(root) {
                out.push(diag(
                    "uninit-read",
                    Severity::Error,
                    proc,
                    path,
                    format!(
                        "buffer {} is read before any write could have initialized it",
                        root.name()
                    ),
                ));
            }
        };
        // A call's argument expressions are pass-by-reference handles,
        // not value reads — the callee may well be the initializer
        // (`loadu`-style @instrs), so they are excluded here and the
        // buffers marked written below instead.
        if !matches!(s, Stmt::Call { .. }) {
            visit_stmt_exprs(s, &mut |e| {
                if let Expr::Read { buf, .. } = e {
                    check_read(*buf, &path, out);
                }
            });
        }
        match s {
            Stmt::Alloc { name, .. } => {
                local.insert(*name);
            }
            Stmt::Assign { buf, .. } => {
                written.insert(root_of(*buf, roots));
            }
            Stmt::Reduce { buf, .. } => {
                check_read(*buf, &path, out);
                written.insert(root_of(*buf, roots));
            }
            Stmt::Call { proc: callee, args } => {
                // A callee may write any data argument it receives.
                for a in args {
                    if let Expr::Read { buf, .. } | Expr::Window { buf, .. } | Expr::Var(buf) = a {
                        written.insert(root_of(*buf, roots));
                    }
                }
                let _ = callee;
            }
            Stmt::For { body, .. } => {
                // The loop may run zero times: writes inside are
                // maybe-writes — which is exactly what suppresses the
                // rule (we only flag reads no write can precede).
                walk_uninit(proc, body, &path, 0, roots, local, written, flagged, out);
            }
            Stmt::If { body, orelse, .. } => {
                let mut w_then = written.clone();
                walk_uninit(
                    proc,
                    body,
                    &path,
                    0,
                    roots,
                    local,
                    &mut w_then,
                    flagged,
                    out,
                );
                let mut w_else = written.clone();
                walk_uninit(
                    proc,
                    orelse,
                    &path,
                    1,
                    roots,
                    local,
                    &mut w_else,
                    flagged,
                    out,
                );
                written.extend(w_then);
                written.extend(w_else);
            }
            Stmt::WindowDef { .. } | Stmt::Pass | Stmt::WriteConfig { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// config-clobber: two writes to the same configuration field with no
// possible intervening read of that field.
// ---------------------------------------------------------------------

fn rule_config_clobber(proc: &Proc, out: &mut Vec<Diagnostic>) {
    let mut pending: HashMap<(Sym, Sym), StmtPath> = HashMap::new();
    walk_clobber(proc, &proc.body, &StmtPath::default(), 0, &mut pending, out);
}

fn walk_clobber(
    proc: &Proc,
    block: &[Stmt],
    parent: &StmtPath,
    block_id: usize,
    pending: &mut HashMap<(Sym, Sym), StmtPath>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, s) in block.iter().enumerate() {
        let path = if parent.is_empty() {
            StmtPath::top(i)
        } else {
            parent.child(block_id, i)
        };
        // Any config read discharges the pending write of that field.
        visit_stmt_exprs(s, &mut |e| {
            if let Expr::ReadConfig { config, field } = e {
                pending.remove(&(*config, *field));
            }
        });
        match s {
            Stmt::WriteConfig { config, field, .. } => {
                if let Some(prev) = pending.insert((*config, *field), path.clone()) {
                    out.push(
                        diag(
                            "config-clobber",
                            Severity::Warning,
                            proc,
                            &path,
                            format!(
                                "{}.{} is overwritten before the previous write is read",
                                config.name(),
                                field.name()
                            ),
                        )
                        .with_note(format!("previous write at {prev}")),
                    );
                }
            }
            Stmt::Call { .. } => {
                // The callee may read any field: discharge everything.
                pending.clear();
            }
            Stmt::For { body, .. } => {
                // The last write of one iteration meets the first write
                // of the next, but reads in between are iteration-order
                // dependent; stay conservative across the loop boundary.
                let mut inner = HashMap::new();
                walk_clobber(proc, body, &path, 0, &mut inner, out);
                pending.clear();
            }
            Stmt::If { body, orelse, .. } => {
                let mut t = pending.clone();
                walk_clobber(proc, body, &path, 0, &mut t, out);
                let mut e = pending.clone();
                walk_clobber(proc, orelse, &path, 1, &mut e, out);
                // Only writes pending on *both* branches survive.
                pending.retain(|k, _| t.contains_key(k) && e.contains_key(k));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// window-alias: two windows over the same base whose coordinate boxes
// provably may overlap.
// ---------------------------------------------------------------------

/// One window as a per-dimension box `[lo, hi)` over its base buffer.
fn window_box(
    coords: &[WAccess],
    genv: &exo_analysis::GlobalEnv,
    reg: &mut GlobalReg,
) -> Vec<(EffExpr, EffExpr)> {
    coords
        .iter()
        .map(|c| match c {
            WAccess::Point(e) => {
                let p = lift_in_env(e, genv, reg);
                (p.clone(), p.add(EffExpr::Int(1)))
            }
            WAccess::Interval(lo, hi) => (lift_in_env(lo, genv, reg), lift_in_env(hi, genv, reg)),
        })
        .collect()
}

fn rule_window_alias(
    proc: &Proc,
    check: &SharedCheckCtx,
    reg: &mut GlobalReg,
    out: &mut Vec<Diagnostic>,
) {
    // Collect windows per direct base buffer.
    let mut windows: Vec<(StmtPath, Sym, Sym, Vec<WAccess>)> = Vec::new();
    visit_paths(&proc.body, |path, s| {
        if let Stmt::WindowDef {
            name,
            rhs: Expr::Window { buf, coords },
        } = s
        {
            windows.push((path.clone(), *name, *buf, coords.clone()));
        }
    });
    for (i, (p1, n1, b1, c1)) in windows.iter().enumerate() {
        for (p2, n2, b2, c2) in windows.iter().skip(i + 1) {
            if b1 != b2 || c1.len() != c2.len() {
                continue;
            }
            // Pose the overlap question at the later window's site so
            // both sets of coordinates are in scope.
            let Some(site) = exo_analysis::context::site_ctx(proc, p2, reg) else {
                continue;
            };
            let box1 = window_box(c1, &site.genv, reg);
            let box2 = window_box(c2, &site.genv, reg);
            let mut overlap = EffExpr::Bool(true);
            for ((lo1, hi1), (lo2, hi2)) in box1.iter().zip(box2.iter()) {
                overlap = overlap
                    .and(lo1.clone().lt(hi2.clone()))
                    .and(lo2.clone().lt(hi1.clone()));
            }
            let mut lctx = LowerCtx::new();
            let m_overlap = lctx.lower_bool(&overlap).maybe();
            let query = Formula::and(vec![
                site.assumptions(&mut lctx),
                lctx.assumptions(),
                m_overlap,
            ]);
            if check.check_sat(&query) == Answer::Yes {
                out.push(
                    diag(
                        "window-alias",
                        Severity::Warning,
                        proc,
                        p2,
                        format!(
                            "windows {} and {} over {} may overlap",
                            n1.name(),
                            n2.name(),
                            b1.name()
                        ),
                    )
                    .with_note(format!("first window defined at {p1}")),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// precision-mismatch: a call passes a buffer whose element precision
// differs from the callee's formal. `call_eqv` deliberately matches
// signatures up to precision, so this is the rule that keeps mixed
// chains honest.
// ---------------------------------------------------------------------

fn rule_precision_mismatch(proc: &Proc, out: &mut Vec<Diagnostic>) {
    // Element types of everything nameable in this procedure.
    let mut types: HashMap<Sym, DataType> = HashMap::new();
    for arg in &proc.args {
        if let Some(ty) = arg.ty.data_type() {
            types.insert(arg.name, ty);
        }
    }
    visit_paths(&proc.body, |_, s| match s {
        Stmt::Alloc { name, ty, .. } => {
            types.insert(*name, *ty);
        }
        Stmt::WindowDef {
            name,
            rhs: Expr::Window { buf, .. },
        } => {
            if let Some(ty) = types.get(buf).copied() {
                types.insert(*name, ty);
            }
        }
        _ => {}
    });
    visit_paths(&proc.body, |path, s| {
        if let Stmt::Call { proc: callee, args } = s {
            for (formal, actual) in callee.args.iter().zip(args.iter()) {
                let Some(want) = formal.ty.data_type() else {
                    continue;
                };
                let actual_buf = match actual {
                    Expr::Read { buf, .. } | Expr::Window { buf, .. } | Expr::Var(buf) => {
                        Some(*buf)
                    }
                    _ => None,
                };
                let Some(got) = actual_buf.and_then(|b| types.get(&b).copied()) else {
                    continue;
                };
                // `R` is the not-yet-chosen abstract precision: anything
                // unifies with it.
                if got != want && got != DataType::R && want != DataType::R {
                    out.push(diag(
                        "precision-mismatch",
                        Severity::Warning,
                        proc,
                        path,
                        format!(
                            "call to {} passes {:?} buffer {} where the formal {} is {:?}",
                            callee.name.name(),
                            got,
                            actual_buf.map(|b| b.name()).unwrap_or_default(),
                            formal.name.name(),
                            want
                        ),
                    ));
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// empty-loop: the loop range is provably empty under the site's
// assumptions.
// ---------------------------------------------------------------------

fn rule_empty_loop(
    proc: &Proc,
    check: &SharedCheckCtx,
    reg: &mut GlobalReg,
    out: &mut Vec<Diagnostic>,
) {
    let mut loops: Vec<StmtPath> = Vec::new();
    visit_paths(&proc.body, |path, s| {
        if matches!(s, Stmt::For { .. }) {
            loops.push(path.clone());
        }
    });
    for path in loops {
        let Some(Stmt::For { iter, lo, hi, .. }) = stmt_at(&proc.body, &path) else {
            continue;
        };
        let Some(site) = exo_analysis::context::site_ctx(proc, &path, reg) else {
            continue;
        };
        let lo_e = lift_in_env(lo, &site.genv, reg);
        let hi_e = lift_in_env(hi, &site.genv, reg);
        let mut lctx = LowerCtx::new();
        let empty = lctx.lower_bool(&hi_e.clone().le(lo_e.clone())).definitely();
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        if check.check_valid(&hyp.implies(empty)) == Answer::Yes {
            out.push(diag(
                "empty-loop",
                Severity::Warning,
                proc,
                &path,
                format!(
                    "loop over {} in [{}, {}) provably executes zero iterations",
                    iter.name(),
                    render_effexpr(&lo_e),
                    render_effexpr(&hi_e)
                ),
            ));
        }
    }
}
