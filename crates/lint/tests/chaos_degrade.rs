//! Fail-safe under fault injection: when the solver is forced to give up
//! on every query, the classifier must degrade to `Sequential` — it may
//! never upgrade a verdict to `Parallel` on an unproven loop.
//!
//! Chaos arming is process-global, so this lives in its own integration
//! test binary (own process) to avoid poisoning the other suites.

use exo_analysis::{GlobalReg, SharedCheckCtx};
use exo_chaos::{FaultPlan, FaultSite};
use exo_core::build::{read, ProcBuilder};
use exo_core::ir::Expr;
use exo_core::path::StmtPath;
use exo_core::types::DataType;
use exo_lint::{classify_loop, LoopVerdict};

/// The provably-parallel elementwise map from the classifier matrix.
fn parallel_map() -> std::sync::Arc<exo_core::ir::Proc> {
    let mut b = ProcBuilder::new("map");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(bb, vec![Expr::var(i)]).mul(Expr::int(2)),
    );
    b.end_for();
    b.finish()
}

#[test]
fn solver_giveups_degrade_to_sequential_never_parallel() {
    let p = parallel_map();

    // Sanity: unfaulted, this loop proves Parallel.
    {
        let check = SharedCheckCtx::fresh();
        let mut reg = GlobalReg::new();
        let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg)
            .expect("classification succeeds unfaulted");
        assert_eq!(v, LoopVerdict::Parallel);
    }

    // Armed: every solver query reports Unknown. The classifier must not
    // trust an unproven independence claim.
    let guard = exo_chaos::arm(FaultPlan::always(0xDEC0DE, &[FaultSite::SmtTooHard]));
    let check = SharedCheckCtx::fresh();
    let mut reg = GlobalReg::new();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg)
        .expect("classification still succeeds under give-ups");
    match v {
        LoopVerdict::Sequential { witness } => {
            // With the solver refusing every SAT probe there is no proven
            // collision either — the verdict is conservative, not a lie.
            assert!(
                witness.is_none(),
                "give-ups cannot manufacture a witness: {witness:?}"
            );
        }
        other => panic!("faulted classification must fail safe, got {other:?}"),
    }
    drop(guard);

    // Disarmed again, the proof comes back.
    let check = SharedCheckCtx::fresh();
    let mut reg = GlobalReg::new();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg)
        .expect("classification succeeds after disarm");
    assert_eq!(v, LoopVerdict::Parallel);
}
