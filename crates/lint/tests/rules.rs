//! One positive and one negative test per lint rule.

use std::sync::Arc;

use exo_analysis::SharedCheckCtx;
use exo_core::build::{read, ProcBuilder};
use exo_core::diag::{Diagnostic, Severity};
use exo_core::ir::{Expr, Proc, WAccess};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;
use exo_lint::lint_proc;

fn findings(p: &Arc<Proc>) -> Vec<Diagnostic> {
    lint_proc(p, &SharedCheckCtx::fresh())
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

fn assert_fires(diags: &[Diagnostic], rule: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "expected {rule} to fire, got {:?}",
        rules_of(diags)
    );
}

fn assert_silent(diags: &[Diagnostic], rule: &str) {
    assert!(
        diags.iter().all(|d| d.rule != rule),
        "expected {rule} to stay silent, got {:?}",
        rules_of(diags)
    );
}

// ------------------------------------------------------------- dead-alloc

#[test]
fn dead_alloc_fires_on_write_only_buffer() {
    let mut b = ProcBuilder::new("dead");
    let t = b.alloc("T", DataType::F32, vec![Expr::int(4)], MemName::dram());
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    b.assign(t, vec![Expr::var(i)], Expr::int(1));
    b.end_for();
    let p = b.finish();
    let diags = findings(&p);
    assert_fires(&diags, "dead-alloc");
    let d = diags.iter().find(|d| d.rule == "dead-alloc").unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.path.is_some(), "dead-alloc should anchor to the alloc");
}

#[test]
fn dead_alloc_silent_when_buffer_is_read() {
    let mut b = ProcBuilder::new("live");
    let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
    let t = b.alloc("T", DataType::F32, vec![Expr::int(4)], MemName::dram());
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    b.assign(t, vec![Expr::var(i)], Expr::int(1));
    b.assign(c, vec![Expr::var(i)], read(t, vec![Expr::var(i)]));
    b.end_for();
    let p = b.finish();
    assert_silent(&findings(&p), "dead-alloc");
}

// ----------------------------------------------------------- uninit-read

#[test]
fn uninit_read_fires_on_read_before_any_write() {
    let mut b = ProcBuilder::new("uninit");
    let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
    let t = b.alloc("T", DataType::F32, vec![Expr::int(4)], MemName::dram());
    b.assign(c, vec![Expr::int(0)], read(t, vec![Expr::int(0)]));
    let p = b.finish();
    let diags = findings(&p);
    assert_fires(&diags, "uninit-read");
    let d = diags.iter().find(|d| d.rule == "uninit-read").unwrap();
    assert_eq!(d.severity, Severity::Error, "uninit reads gate CI");
}

#[test]
fn uninit_read_silent_after_initializing_write() {
    let mut b = ProcBuilder::new("init");
    let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
    let t = b.alloc("T", DataType::F32, vec![Expr::int(4)], MemName::dram());
    b.assign(t, vec![Expr::int(0)], Expr::int(1));
    b.assign(c, vec![Expr::int(0)], read(t, vec![Expr::int(0)]));
    let p = b.finish();
    assert_silent(&findings(&p), "uninit-read");
}

// -------------------------------------------------------- config-clobber

#[test]
fn config_clobber_fires_on_backtoback_writes() {
    let cfg = Sym::new("CFG");
    let f = Sym::new("stride");
    let mut b = ProcBuilder::new("clobber");
    b.write_config(cfg, f, Expr::int(1));
    b.write_config(cfg, f, Expr::int(2));
    let p = b.finish();
    let diags = findings(&p);
    assert_fires(&diags, "config-clobber");
    let d = diags.iter().find(|d| d.rule == "config-clobber").unwrap();
    assert!(
        d.notes.iter().any(|n| n.contains("previous write")),
        "clobber should point at the shadowed write: {d}"
    );
}

#[test]
fn config_clobber_silent_when_read_intervenes() {
    let cfg = Sym::new("CFG");
    let f = Sym::new("stride");
    let mut b = ProcBuilder::new("ok_cfg");
    let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
    b.write_config(cfg, f, Expr::int(1));
    // An If guard reading the field observes the first write.
    b.begin_if(
        Expr::ReadConfig {
            config: cfg,
            field: f,
        }
        .eq(Expr::int(1)),
    );
    b.assign(c, vec![Expr::int(0)], Expr::int(1));
    b.end_if();
    b.write_config(cfg, f, Expr::int(2));
    let p = b.finish();
    assert_silent(&findings(&p), "config-clobber");
}

// --------------------------------------------------------- window-alias

#[test]
fn window_alias_fires_on_overlapping_windows() {
    let mut b = ProcBuilder::new("alias");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(16)]);
    b.window("w1", a, vec![WAccess::Interval(Expr::int(0), Expr::int(8))]);
    b.window(
        "w2",
        a,
        vec![WAccess::Interval(Expr::int(4), Expr::int(12))],
    );
    let p = b.finish();
    assert_fires(&findings(&p), "window-alias");
}

#[test]
fn window_alias_silent_on_disjoint_windows() {
    let mut b = ProcBuilder::new("no_alias");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(16)]);
    b.window("w1", a, vec![WAccess::Interval(Expr::int(0), Expr::int(8))]);
    b.window(
        "w2",
        a,
        vec![WAccess::Interval(Expr::int(8), Expr::int(16))],
    );
    let p = b.finish();
    assert_silent(&findings(&p), "window-alias");
}

// --------------------------------------------------- precision-mismatch

fn callee_f32() -> Arc<Proc> {
    let mut b = ProcBuilder::new("consume_f32");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(4)]);
    let s = b.scalar("acc", DataType::F32);
    b.reduce(s, vec![], read(x, vec![Expr::int(0)]));
    b.finish()
}

#[test]
fn precision_mismatch_fires_on_f64_into_f32_formal() {
    let callee = callee_f32();
    let mut b = ProcBuilder::new("mixed");
    let a = b.tensor("A", DataType::F64, vec![Expr::int(4)]);
    let s = b.scalar("s", DataType::F64);
    b.call(&callee, vec![Expr::var(a), Expr::var(s)]);
    let p = b.finish();
    let diags = findings(&p);
    assert_fires(&diags, "precision-mismatch");
    let d = diags
        .iter()
        .find(|d| d.rule == "precision-mismatch")
        .unwrap();
    assert!(d.message.contains("consume_f32"), "{d}");
}

#[test]
fn precision_mismatch_silent_on_matching_precisions() {
    let callee = callee_f32();
    let mut b = ProcBuilder::new("matched");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
    let s = b.scalar("s", DataType::F32);
    b.call(&callee, vec![Expr::var(a), Expr::var(s)]);
    let p = b.finish();
    assert_silent(&findings(&p), "precision-mismatch");
}

// ------------------------------------------------------------ empty-loop

#[test]
fn empty_loop_fires_on_provably_empty_range() {
    let mut b = ProcBuilder::new("empty");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
    let i = b.begin_for("i", Expr::int(4), Expr::int(2));
    b.assign(a, vec![Expr::var(i)], Expr::int(1));
    b.end_for();
    let p = b.finish();
    assert_fires(&findings(&p), "empty-loop");
}

#[test]
fn empty_loop_silent_on_symbolic_nonempty_range() {
    let mut b = ProcBuilder::new("nonempty");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(a, vec![Expr::var(i)], Expr::int(1));
    b.end_for();
    let p = b.finish();
    assert_silent(&findings(&p), "empty-loop");
}

// ------------------------------------------------------------- plumbing

#[test]
fn diagnostics_export_as_json() {
    let mut b = ProcBuilder::new("dead");
    let t = b.alloc("T", DataType::F32, vec![Expr::int(4)], MemName::dram());
    b.assign(t, vec![Expr::int(0)], Expr::int(1));
    let p = b.finish();
    let diags = findings(&p);
    let json = exo_lint::diagnostics_json(&diags);
    let text = json.to_string();
    // Round-trips through the strict parser and carries the rule id.
    let parsed = exo_obs::Json::parse(&text).expect("lint JSON parses");
    assert!(text.contains("dead-alloc"), "{text}");
    match parsed {
        exo_obs::Json::Arr(items) => assert_eq!(items.len(), diags.len()),
        other => panic!("expected array, got {other:?}"),
    }
}
