//! Dependence-classifier matrix: known-parallel, reduction, and
//! loop-carried kernels, plus witness-pair correctness.

use exo_analysis::{GlobalReg, SharedCheckCtx};
use exo_core::build::{read, ProcBuilder};
use exo_core::ir::Expr;
use exo_core::path::StmtPath;
use exo_core::types::DataType;
use exo_lint::{classify_loop, classify_loops, AccessKind, LoopVerdict};

fn ctx() -> (SharedCheckCtx, GlobalReg) {
    // Private context so these verdicts don't leak into (or depend on)
    // other suites sharing the process-wide cache.
    (SharedCheckCtx::fresh(), GlobalReg::new())
}

/// `for i: A[i] = B[i] * 2` — iterations touch disjoint locations.
#[test]
fn elementwise_map_is_parallel() {
    let mut b = ProcBuilder::new("map");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(bb, vec![Expr::var(i)]).mul(Expr::int(2)),
    );
    b.end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap();
    assert_eq!(v, LoopVerdict::Parallel);
}

/// `for i: s += A[i]` — iterations conflict only via `+=` into `s`.
#[test]
fn scalar_sum_is_reduction_parallel() {
    let mut b = ProcBuilder::new("sum");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let s = b.scalar("s", DataType::F32);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.reduce(s, vec![], read(a, vec![Expr::var(i)]));
    b.end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap();
    match v {
        LoopVerdict::ReductionParallel { bufs } => {
            assert_eq!(bufs.len(), 1);
            assert_eq!(bufs[0].name(), "s");
        }
        other => panic!("expected ReductionParallel, got {other:?}"),
    }
}

/// `for i in [0, n-1): A[i] = A[i+1] + 1` — a classic loop-carried
/// anti-dependence: iteration i writes what iteration i+1... reads.
#[test]
fn shifted_copy_is_sequential_with_witness() {
    let mut b = ProcBuilder::new("shift");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n).sub(Expr::int(1)));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(a, vec![Expr::var(i).add(Expr::int(1))]).add(Expr::int(1)),
    );
    b.end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap();
    let LoopVerdict::Sequential { witness } = v else {
        panic!("expected Sequential, got {v:?}");
    };
    let w = witness.expect("racy loop should come with a witness pair");
    assert_eq!(w.buf.name(), "A");
    // The collision must involve the write; the pair is (write, read) or
    // (read, write) or (write, write) depending on enumeration order —
    // for this kernel only write-vs-read collides across iterations.
    assert!(
        (w.first == AccessKind::Write) ^ (w.second == AccessKind::Write),
        "exactly one side of the witness is the write: {w}"
    );
    assert_eq!(w.iter.name(), "i");
}

/// `for i: s = s + A[i]` spelled as an *assignment* (not `+=`) is a
/// genuine write-write + read-write race between iterations.
#[test]
fn non_reduction_accumulation_is_sequential() {
    let mut b = ProcBuilder::new("acc");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let s = b.scalar("s", DataType::F32);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(s, vec![], read(s, vec![]).add(read(a, vec![Expr::var(i)])));
    b.end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap();
    let LoopVerdict::Sequential { witness } = v else {
        panic!("expected Sequential, got {v:?}");
    };
    let w = witness.expect("write-write race should have a witness");
    assert_eq!(w.buf.name(), "s");
}

/// The three GEMM loops: `i`/`j` are parallel (each iteration owns a
/// disjoint slice of C), `k` is reduction-parallel into C.
#[test]
fn gemm_loop_nest_classifies_on_the_full_lattice() {
    // The 8×8×8 GEMM from paper §2.1 (built inline to keep the crate
    // graph acyclic — `exo-kernels` sits above `exo-lint`).
    let mut b = ProcBuilder::new("gemm");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    let j = b.begin_for("j", Expr::int(0), Expr::int(8));
    let k = b.begin_for("k", Expr::int(0), Expr::int(8));
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(k)]).mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let verdicts = classify_loops(&p, &check, &mut reg);
    assert_eq!(verdicts.len(), 3);
    let by_name: Vec<(String, &LoopVerdict)> = verdicts
        .iter()
        .map(|(_, iter, v)| (iter.name(), v))
        .collect();
    for (name, v) in &by_name {
        match name.as_str() {
            "i" | "j" => assert_eq!(**v, LoopVerdict::Parallel, "loop {name}: {v:?}"),
            "k" => match v {
                LoopVerdict::ReductionParallel { bufs } => {
                    assert_eq!(bufs.len(), 1);
                    assert_eq!(bufs[0].name(), "C");
                }
                other => panic!("loop k: expected ReductionParallel, got {other:?}"),
            },
            other => panic!("unexpected loop {other}"),
        }
    }
}

/// A loop whose body writes through an index that folds to a constant:
/// every iteration writes A[0] — sequential, witness on A.
#[test]
fn constant_index_write_is_sequential() {
    let mut b = ProcBuilder::new("const_idx");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    b.assign(
        a,
        vec![Expr::int(0)],
        Expr::var(i).mul(Expr::int(0)).add(Expr::int(1)),
    );
    b.end_for();
    let p = b.finish();
    let (check, mut reg) = ctx();
    let v = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap();
    let LoopVerdict::Sequential { witness } = v else {
        panic!("expected Sequential, got {v:?}");
    };
    let w = witness.expect("write-write collision on A[0]");
    assert_eq!(w.buf.name(), "A");
    assert_eq!(w.first, AccessKind::Write);
    assert_eq!(w.second, AccessKind::Write);
}

/// Asking about a non-loop path is a typed error, not a panic.
#[test]
fn classify_non_loop_is_an_error() {
    let mut b = ProcBuilder::new("flat");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
    b.assign(a, vec![Expr::int(0)], Expr::int(1));
    let p = b.finish();
    let (check, mut reg) = ctx();
    let err = classify_loop(&p, &StmtPath::top(0), &check, &mut reg).unwrap_err();
    assert!(err.message.contains("no for-loop"), "{err}");
}
