//! Differential testing of the Cooper-QE solver against brute-force
//! enumeration on a bounded domain.
//!
//! We generate random quantifier-free formulas over ≤3 variables with
//! small coefficients, bound each variable to a box `[-B, B]` inside the
//! formula itself, and compare `check_sat` with exhaustive search. With
//! the box conjoined, bounded enumeration is exact, so any disagreement
//! is a solver bug.

#![cfg(feature = "proptest-tests")]

use exo_core::sym::Sym;
use exo_smt::canon::canonicalize;
use exo_smt::formula::{Atom, Formula};
use exo_smt::linear::LinExpr;
use exo_smt::solver::{Answer, Solver};
use proptest::prelude::*;

/// All property tests share the process-wide solver: one cache, realistic
/// reuse, and no per-case construction cost.
fn shared() -> std::sync::MutexGuard<'static, Solver> {
    Solver::shared()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const BOUND: i64 = 6;

#[derive(Clone, Debug)]
enum FExpr {
    Le(Vec<i64>, i64),
    Eq(Vec<i64>, i64),
    Dvd(i64, Vec<i64>, i64),
    Not(Box<FExpr>),
    And(Vec<FExpr>),
    Or(Vec<FExpr>),
}

fn lin(coeffs: &[i64], c: i64, vars: &[Sym]) -> LinExpr {
    let mut e = LinExpr::constant(c);
    for (i, &k) in coeffs.iter().enumerate() {
        e = e.add(&LinExpr::scaled_var(k, vars[i]));
    }
    e
}

fn to_formula(f: &FExpr, vars: &[Sym]) -> Formula {
    match f {
        FExpr::Le(cs, c) => Formula::Atom(Atom::Le(lin(cs, *c, vars))),
        FExpr::Eq(cs, c) => Formula::Atom(Atom::Eq(lin(cs, *c, vars))),
        FExpr::Dvd(m, cs, c) => Formula::Atom(Atom::Dvd(*m, lin(cs, *c, vars))),
        FExpr::Not(g) => to_formula(g, vars).negate(),
        FExpr::And(gs) => Formula::and(gs.iter().map(|g| to_formula(g, vars)).collect()),
        FExpr::Or(gs) => Formula::or(gs.iter().map(|g| to_formula(g, vars)).collect()),
    }
}

fn eval(f: &FExpr, asg: &[i64]) -> bool {
    let dot =
        |cs: &[i64], c: i64| -> i64 { cs.iter().zip(asg).map(|(k, v)| k * v).sum::<i64>() + c };
    match f {
        FExpr::Le(cs, c) => dot(cs, *c) <= 0,
        FExpr::Eq(cs, c) => dot(cs, *c) == 0,
        FExpr::Dvd(m, cs, c) => dot(cs, *c).rem_euclid(*m) == 0,
        FExpr::Not(g) => !eval(g, asg),
        FExpr::And(gs) => gs.iter().all(|g| eval(g, asg)),
        FExpr::Or(gs) => gs.iter().any(|g| eval(g, asg)),
    }
}

fn brute_force_sat(f: &FExpr, nvars: usize) -> bool {
    fn go(f: &FExpr, nvars: usize, asg: &mut Vec<i64>) -> bool {
        if asg.len() == nvars {
            return eval(f, asg);
        }
        for v in -BOUND..=BOUND {
            asg.push(v);
            if go(f, nvars, asg) {
                asg.pop();
                return true;
            }
            asg.pop();
        }
        false
    }
    go(f, nvars, &mut Vec::new())
}

fn arb_coeffs(nvars: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-3i64..=3, nvars)
}

fn arb_atom(nvars: usize) -> impl Strategy<Value = FExpr> {
    prop_oneof![
        3 => (arb_coeffs(nvars), -10i64..=10).prop_map(|(cs, c)| FExpr::Le(cs, c)),
        2 => (arb_coeffs(nvars), -10i64..=10).prop_map(|(cs, c)| FExpr::Eq(cs, c)),
        // divisibility atoms multiply Cooper's period; keep their moduli
        // small so worst cases stay within the work budget (the real
        // analyses emit at most one or two strided moduli per variable)
        1 => (2i64..=3, arb_coeffs(nvars), -10i64..=10)
            .prop_map(|(m, cs, c)| FExpr::Dvd(m, cs, c)),
    ]
}

fn arb_fexpr(nvars: usize) -> impl Strategy<Value = FExpr> {
    arb_atom(nvars).prop_recursive(2, 12, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|g| FExpr::Not(Box::new(g))),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(FExpr::And),
            proptest::collection::vec(inner, 1..3).prop_map(FExpr::Or),
        ]
    })
}

fn boxed(f: Formula, vars: &[Sym]) -> Formula {
    let mut parts = vec![f];
    for &v in vars {
        parts.push(Formula::ge(LinExpr::var(v), LinExpr::constant(-BOUND)));
        parts.push(Formula::le(LinExpr::var(v), LinExpr::constant(BOUND)));
    }
    Formula::and(parts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn qe_matches_brute_force_2vars(f in arb_fexpr(2)) {
        let vars = [Sym::new("p0"), Sym::new("p1")];
        let formula = boxed(to_formula(&f, &vars), &vars);
        let boxed_fexpr = f; // box is applied on the enumeration side too
        let expected = brute_force_sat(&boxed_fexpr, 2);
        let mut solver = shared();
        let got = solver.check_sat(&formula);
        prop_assert_ne!(got, Answer::Unknown, "work limit hit on small formula");
        prop_assert_eq!(got == Answer::Yes, expected, "formula: {}", formula);
    }

    #[test]
    fn qe_matches_brute_force_3vars(f in arb_fexpr(3)) {
        let vars = [Sym::new("q0"), Sym::new("q1"), Sym::new("q2")];
        let formula = boxed(to_formula(&f, &vars), &vars);
        let expected = brute_force_sat(&f, 3);
        let mut solver = shared();
        let got = solver.check_sat(&formula);
        prop_assert_ne!(got, Answer::Unknown, "work limit hit on small formula");
        prop_assert_eq!(got == Answer::Yes, expected, "formula: {}", formula);
    }

    #[test]
    fn validity_of_disjunction_with_negation(f in arb_fexpr(2)) {
        // f ∨ ¬f is always valid. The solver may return Unknown on
        // adversarial divisibility mixes (the documented fail-safe), but
        // must never *refute* a tautology.
        let vars = [Sym::new("r0"), Sym::new("r1")];
        let g = to_formula(&f, &vars);
        let tauto = Formula::or(vec![g.clone(), g.negate()]);
        let mut solver = shared();
        prop_assert_ne!(solver.check_valid(&tauto), Answer::No);
    }

    #[test]
    fn forall_exists_weakening(f in arb_fexpr(1)) {
        // (∀x. f) ⇒ (∃x. f) over a non-empty domain
        let vars = [Sym::new("s0")];
        let g = boxed(to_formula(&f, &vars), &vars);
        let all = g.clone().forall(vars[0]);
        let some = g.exists(vars[0]);
        let mut solver = shared();
        prop_assert_eq!(solver.check_valid(&all.implies(some)), Answer::Yes);
    }

    #[test]
    fn canonicalization_is_sound_and_merges_alpha_variants(f in arb_fexpr(2)) {
        // Renaming all variables to fresh syms must not change the
        // verdict, and both spellings must share one canonical form.
        let vars = [Sym::new("t0"), Sym::new("t1")];
        let renamed = [Sym::new("u0"), Sym::new("u1")];
        let g = boxed(to_formula(&f, &vars), &vars);
        let h = boxed(to_formula(&f, &renamed), &renamed);
        prop_assert_eq!(canonicalize(&g), canonicalize(&h));
        let mut solver = shared();
        let direct = solver.check_sat(&g);
        let canon = solver.check_sat(&canonicalize(&g));
        prop_assert_eq!(direct, canon);
    }
}
