//! Linear integer expressions in canonical form.
//!
//! Every control expression in Exo is quasi-affine, so after lowering
//! `/`/`%`-by-constant to fresh variables, everything the analyses need
//! to reason about is a linear combination `c₀ + Σ cᵢ·xᵢ` over ℤ.

use std::collections::BTreeMap;
use std::fmt;

use exo_core::sym::Sym;

/// A linear expression `constant + Σ coeff·var` with integer
/// coefficients. Zero-coefficient entries are never stored.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinExpr {
    /// Constant term.
    pub constant: i64,
    /// Coefficients per variable (sorted by symbol for canonicity).
    pub coeffs: BTreeMap<Sym, i64>,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// The variable expression `x`.
    pub fn var(x: Sym) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(x, 1);
        LinExpr {
            constant: 0,
            coeffs,
        }
    }

    /// `c·x`.
    pub fn scaled_var(c: i64, x: Sym) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        if c != 0 {
            coeffs.insert(x, c);
        }
        LinExpr {
            constant: 0,
            coeffs,
        }
    }

    /// The coefficient of `x` (0 if absent).
    pub fn coeff(&self, x: Sym) -> i64 {
        self.coeffs.get(&x).copied().unwrap_or(0)
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns the constant value if the expression is constant.
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Whether `x` occurs with non-zero coefficient.
    pub fn mentions(&self, x: Sym) -> bool {
        self.coeffs.contains_key(&x)
    }

    /// Adds another linear expression.
    ///
    /// # Panics
    ///
    /// Panics on `i64` coefficient overflow — saturating or wrapping here
    /// would silently change formula semantics and could turn a reject into
    /// an unsound accept. Overflow needs coefficients near 2^63 (far past
    /// any real loop bound); if it ever fires during scheduling, the
    /// `catch_unwind` boundary in operator dispatch reports it as a typed
    /// internal error.
    #[allow(clippy::expect_used)]
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = out
            .constant
            .checked_add(other.constant)
            .expect("LinExpr overflow in add");
        for (&v, &c) in &other.coeffs {
            let e = out.coeffs.entry(v).or_insert(0);
            *e = e.checked_add(c).expect("LinExpr overflow in add");
            if *e == 0 {
                out.coeffs.remove(&v);
            }
        }
        out
    }

    /// Subtracts another linear expression.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Multiplies by a constant.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow (see [`LinExpr::add`] for why that beats
    /// silent wrapping).
    #[allow(clippy::expect_used)]
    pub fn scale(&self, c: i64) -> LinExpr {
        if c == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            constant: self
                .constant
                .checked_mul(c)
                .expect("LinExpr overflow in scale"),
            coeffs: self
                .coeffs
                .iter()
                .map(|(&v, &k)| (v, k.checked_mul(c).expect("LinExpr overflow in scale")))
                .collect(),
        }
    }

    /// Adds a constant.
    ///
    /// # Panics
    ///
    /// Panics on `i64` overflow (see [`LinExpr::add`]).
    #[allow(clippy::expect_used)]
    pub fn offset(&self, c: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant = out
            .constant
            .checked_add(c)
            .expect("LinExpr overflow in offset");
        out
    }

    /// Substitutes `x := e`.
    pub fn subst(&self, x: Sym, e: &LinExpr) -> LinExpr {
        match self.coeffs.get(&x) {
            None => self.clone(),
            Some(&c) => {
                let mut rest = self.clone();
                rest.coeffs.remove(&x);
                rest.add(&e.scale(c))
            }
        }
    }

    /// Evaluates under a complete assignment.
    ///
    /// Returns `None` if some variable is unassigned.
    pub fn eval(&self, asg: &BTreeMap<Sym, i64>) -> Option<i64> {
        let mut v = self.constant;
        for (&x, &c) in &self.coeffs {
            v = v.checked_add(c.checked_mul(*asg.get(&x)?)?)?;
        }
        Some(v)
    }

    /// All variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.coeffs.keys().copied()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&v, &c) in &self.coeffs {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}·{v}")?,
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}·{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Greatest common divisor (non-negative).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple (non-negative; 0 if either is 0).
///
/// # Panics
///
/// Panics on `i64` overflow (see [`LinExpr::add`]).
#[allow(clippy::expect_used)]
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        0
    } else {
        (a / gcd(a, b)).checked_mul(b.abs()).expect("lcm overflow")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_canonical() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        let e = LinExpr::var(x).add(&LinExpr::scaled_var(2, y)).offset(3);
        let e2 = e.sub(&LinExpr::var(x));
        assert_eq!(e2.coeff(x), 0);
        assert!(!e2.mentions(x));
        assert_eq!(e2.coeff(y), 2);
        assert_eq!(e2.constant, 3);
    }

    #[test]
    fn subst_replaces() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        // 3x + 1, x := y + 2  ⇒  3y + 7
        let e = LinExpr::scaled_var(3, x).offset(1);
        let e2 = e.subst(x, &LinExpr::var(y).offset(2));
        assert_eq!(e2.coeff(y), 3);
        assert_eq!(e2.constant, 7);
    }

    #[test]
    fn eval_complete_and_incomplete() {
        let x = Sym::new("x");
        let e = LinExpr::scaled_var(4, x).offset(-2);
        let mut asg = BTreeMap::new();
        assert_eq!(e.eval(&asg), None);
        asg.insert(x, 10);
        assert_eq!(e.eval(&asg), Some(38));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn display_is_readable() {
        let x = Sym::new("x");
        let e = LinExpr::scaled_var(-2, x).offset(5);
        let s = e.to_string();
        assert!(s.contains('x'), "{s}");
        assert_eq!(LinExpr::constant(0).to_string(), "0");
    }
}
