//! Kleene three-valued logic (paper §5.1).
//!
//! When extended with ⊥ ("unknown"), the booleans become a ternary logic
//! that lets the effect analysis distinguish facts that *definitely* hold
//! from facts that *maybe* hold. The collapsing operators `D p`
//! ("definitely p") and `M p` ("maybe p") map back to classical logic.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A three-valued truth value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TBool {
    /// Definitely false.
    False,
    /// Unknown (⊥).
    Unknown,
    /// Definitely true.
    True,
}

impl TBool {
    /// Lifts a classical boolean.
    pub fn from_bool(b: bool) -> TBool {
        if b {
            TBool::True
        } else {
            TBool::False
        }
    }

    /// `D p` — "definitely p": true only when `p` is [`TBool::True`].
    pub fn definitely(self) -> bool {
        self == TBool::True
    }

    /// `M p` — "maybe p": true unless `p` is [`TBool::False`].
    pub fn maybe(self) -> bool {
        self != TBool::False
    }

    /// Whether the value is known (not ⊥).
    pub fn is_known(self) -> bool {
        self != TBool::Unknown
    }

    /// Kleene conjunction.
    pub fn and(self, other: TBool) -> TBool {
        use TBool::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: TBool) -> TBool {
        use TBool::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    pub fn negate(self) -> TBool {
        use TBool::*;
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }

    /// Kleene implication (`¬a ∨ b`).
    pub fn implies(self, other: TBool) -> TBool {
        self.negate().or(other)
    }
}

impl From<bool> for TBool {
    fn from(b: bool) -> TBool {
        TBool::from_bool(b)
    }
}

impl Not for TBool {
    type Output = TBool;
    fn not(self) -> TBool {
        self.negate()
    }
}

impl BitAnd for TBool {
    type Output = TBool;
    fn bitand(self, rhs: TBool) -> TBool {
        self.and(rhs)
    }
}

impl BitOr for TBool {
    type Output = TBool;
    fn bitor(self, rhs: TBool) -> TBool {
        self.or(rhs)
    }
}

impl fmt::Display for TBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TBool::True => "T",
            TBool::False => "F",
            TBool::Unknown => "⊥",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::TBool::{self, *};

    const ALL: [TBool; 3] = [False, Unknown, True];

    #[test]
    fn collapse_operators() {
        assert!(True.definitely());
        assert!(!Unknown.definitely());
        assert!(!False.definitely());
        assert!(True.maybe());
        assert!(Unknown.maybe());
        assert!(!False.maybe());
    }

    #[test]
    fn kleene_and_truth_table() {
        assert_eq!(True & True, True);
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(False & Unknown, False);
        assert_eq!(Unknown & Unknown, Unknown);
    }

    #[test]
    fn kleene_or_truth_table() {
        assert_eq!(False | False, False);
        assert_eq!(True | Unknown, True);
        assert_eq!(False | Unknown, Unknown);
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn negation_involutive() {
        for a in ALL {
            assert_eq!(!!a, a);
        }
    }

    #[test]
    fn implication() {
        assert_eq!(False.implies(Unknown), True);
        assert_eq!(True.implies(Unknown), Unknown);
        assert_eq!(Unknown.implies(True), True);
    }

    #[test]
    fn maybe_definitely_duality() {
        // M p == ¬D(¬p)
        for a in ALL {
            assert_eq!(a.maybe(), !(!a).definitely());
        }
    }
}
