//! Cooper's quantifier-elimination procedure for Presburger arithmetic.
//!
//! The effect analyses reduce every safety condition to a sentence of
//! linear integer arithmetic (quasi-affinity guarantees this, paper
//! §4.2). This module decides those sentences by eliminating quantifiers
//! innermost-out; [`crate::solver::Solver`] wraps it with caching and a
//! work limit.

use exo_core::sym::Sym;

use crate::formula::{Atom, Formula};
use crate::linear::{lcm, LinExpr};

/// Error raised when a formula exceeds the solver's work limit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TooHard {
    /// Size of the offending intermediate formula.
    pub size: usize,
}

impl std::fmt::Display for TooHard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula exceeded solver work limit (size {})", self.size)
    }
}

impl std::error::Error for TooHard {}

/// Normalizes to negation normal form where `Not` survives only directly
/// above `Dvd` atoms, and `Eq`/negated-`Eq` atoms are expanded into
/// inequalities.
fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Not(g) => nnf(g, !neg),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Exists(x, g) => {
            let body = nnf(g, neg);
            if neg {
                body.forall(*x)
            } else {
                body.exists(*x)
            }
        }
        Formula::Forall(x, g) => {
            let body = nnf(g, neg);
            if neg {
                body.exists(*x)
            } else {
                body.forall(*x)
            }
        }
        Formula::Atom(a) => match (a, neg) {
            (Atom::Le(e), false) => Formula::Atom(Atom::Le(e.clone())),
            // ¬(e ≤ 0) ⇔ e ≥ 1 ⇔ 1 - e ≤ 0
            (Atom::Le(e), true) => Formula::le(e.scale(-1).offset(1), LinExpr::constant(0)),
            // e = 0 ⇔ e ≤ 0 ∧ -e ≤ 0
            (Atom::Eq(e), false) => Formula::and(vec![
                Formula::le(e.clone(), LinExpr::constant(0)),
                Formula::le(e.scale(-1), LinExpr::constant(0)),
            ]),
            // ¬(e = 0) ⇔ e ≤ -1 ∨ e ≥ 1
            (Atom::Eq(e), true) => Formula::or(vec![
                Formula::le(e.offset(1), LinExpr::constant(0)),
                Formula::le(e.scale(-1).offset(1), LinExpr::constant(0)),
            ]),
            (Atom::Dvd(m, e), false) => Formula::dvd(*m, e.clone()),
            (Atom::Dvd(m, e), true) => Formula::dvd(*m, e.clone()).negate(),
        },
    }
}

/// Statistics and limits for a QE run.
#[derive(Debug)]
pub struct QeBudget {
    /// Maximum intermediate formula size before giving up.
    pub max_size: usize,
    /// Nodes produced so far (monotone).
    pub produced: usize,
}

impl Default for QeBudget {
    fn default() -> QeBudget {
        QeBudget {
            max_size: 2_000_000,
            produced: 0,
        }
    }
}

impl QeBudget {
    fn charge(&mut self, n: usize) -> Result<(), TooHard> {
        self.produced += n;
        if self.produced > self.max_size {
            Err(TooHard {
                size: self.produced,
            })
        } else {
            Ok(())
        }
    }
}

/// Eliminates all quantifiers from `f`, returning an equivalent
/// quantifier-free formula over the free variables.
///
/// # Errors
///
/// Returns [`TooHard`] if intermediate formulas exceed the budget.
pub fn eliminate_all(f: &Formula, budget: &mut QeBudget) -> Result<Formula, TooHard> {
    let f = nnf(f, false);
    qe(&f, budget)
}

fn qe(f: &Formula, budget: &mut QeBudget) -> Result<Formula, TooHard> {
    budget.charge(1)?;
    Ok(match f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Not(_) => f.clone(),
        Formula::And(fs) => {
            let mut parts = Vec::with_capacity(fs.len());
            for g in fs {
                let g = qe(g, budget)?;
                if g == Formula::False {
                    return Ok(Formula::False);
                }
                parts.push(g);
            }
            Formula::and(parts)
        }
        Formula::Or(fs) => {
            let mut parts = Vec::with_capacity(fs.len());
            for g in fs {
                let g = qe(g, budget)?;
                if g == Formula::True {
                    return Ok(Formula::True);
                }
                parts.push(g);
            }
            Formula::or(parts)
        }
        Formula::Exists(x, g) => {
            let body = qe(g, budget)?;
            eliminate_exists(*x, &body, budget)?
        }
        Formula::Forall(x, g) => {
            // ∀x.g ⇔ ¬∃x.¬g
            let body = qe(g, budget)?;
            let neg = nnf(&body.negate(), false);
            let ex = eliminate_exists(*x, &neg, budget)?;
            nnf(&ex.negate(), false)
        }
    })
}

/// Eliminates `∃x` from a quantifier-free NNF formula.
pub fn eliminate_exists(x: Sym, f: &Formula, budget: &mut QeBudget) -> Result<Formula, TooHard> {
    // Fast path: x does not occur.
    let mut fv = std::collections::BTreeSet::new();
    f.free_vars(&mut fv);
    if !fv.contains(&x) {
        return Ok(f.clone());
    }

    // ∃ distributes over ∨: eliminating per-disjunct keeps the lower-bound
    // sets local and lets simplification collapse each piece early.
    if let Formula::Or(fs) = f {
        let mut parts = Vec::with_capacity(fs.len());
        for g in fs {
            let g = eliminate_exists(x, g, budget)?;
            if g == Formula::True {
                return Ok(Formula::True);
            }
            parts.push(g);
        }
        return Ok(Formula::or(parts));
    }

    // Step 1: compute λ = lcm of |coefficients of x| and rescale every
    // atom so x occurs with coefficient ±1 (in a rescaled variable), with
    // the extra constraint λ | x'.
    let mut lam: i64 = 1;
    collect_coeffs(f, x, &mut lam);
    let scaled = rescale(f, x, lam);
    let with_div = if lam > 1 {
        Formula::and(vec![scaled, Formula::dvd(lam, LinExpr::var(x))])
    } else {
        scaled
    };

    // Step 2: δ = lcm of divisibility moduli on x; boundary terms. We use
    // whichever of the lower-bound (−∞) or upper-bound (+∞) versions has
    // fewer boundary points.
    let mut delta: i64 = 1;
    let mut lowers: Vec<LinExpr> = Vec::new();
    let mut uppers: Vec<LinExpr> = Vec::new();
    collect_bounds(&with_div, x, &mut delta, &mut lowers, &mut uppers);
    lowers.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    lowers.dedup();
    uppers.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    uppers.dedup();
    let from_below = lowers.len() <= uppers.len();
    let boundary = if from_below { &lowers } else { &uppers };

    // Step 3 (lower version): ⋁_{j=1..δ} ( φ₋∞[x→j] ∨ ⋁_{a∈A} φ[x→a+j] );
    // the upper version is the mirror image with φ₊∞ and x→b−j.
    // Disjuncts are built lazily and charged at their actual size so that
    // pieces that simplify away (bound conflicts, ground atoms) are cheap.
    let inf = project_inf(&with_div, x, from_below);
    let mut disjuncts = Vec::new();
    for j in 1..=delta {
        let jval = if from_below { j } else { -j };
        let g = inf.subst(x, &LinExpr::constant(jval));
        if g == Formula::True {
            return Ok(Formula::True);
        }
        budget.charge(g.size())?;
        disjuncts.push(g);
        for b in boundary {
            let point = if from_below {
                b.offset(j)
            } else {
                b.offset(-j)
            };
            let g = with_div.subst(x, &point);
            if g == Formula::True {
                return Ok(Formula::True);
            }
            budget.charge(g.size())?;
            disjuncts.push(g);
        }
    }
    Ok(Formula::or(disjuncts))
}

fn collect_coeffs(f: &Formula, x: Sym, lam: &mut i64) {
    match f {
        Formula::Atom(a) => {
            let e = match a {
                Atom::Le(e) | Atom::Eq(e) | Atom::Dvd(_, e) => e,
            };
            let c = e.coeff(x);
            if c != 0 {
                *lam = lcm(*lam, c.abs());
            }
        }
        // in NNF, Not wraps only Dvd atoms
        Formula::Not(inner) => collect_coeffs(inner, x, lam),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_coeffs(g, x, lam)),
        _ => {}
    }
}

/// Rescales atoms so x's coefficient becomes ±1; implicitly substitutes
/// x := x'/λ where λ | x'. (We reuse the same symbol for x'.)
fn rescale(f: &Formula, x: Sym, lam: i64) -> Formula {
    match f {
        Formula::Atom(a) => rescale_atom(a, x, lam, false),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(a) => rescale_atom(a, x, lam, true),
            _ => f.clone(),
        },
        Formula::And(fs) => Formula::and(fs.iter().map(|g| rescale(g, x, lam)).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| rescale(g, x, lam)).collect()),
        other => other.clone(),
    }
}

fn rescale_atom(a: &Atom, x: Sym, lam: i64, negated: bool) -> Formula {
    let wrap = |f: Formula| if negated { f.negate() } else { f };
    let e = match a {
        Atom::Le(e) | Atom::Eq(e) | Atom::Dvd(_, e) => e,
    };
    let c = e.coeff(x);
    if c == 0 {
        return wrap(Formula::Atom(a.clone()));
    }
    let k = lam / c.abs();
    debug_assert!(k > 0);
    match a {
        Atom::Le(e) => {
            // multiply through by k (positive): k·e ≤ 0; then coefficient
            // of x is ±λ; rename λ·x → x (unit coefficient).
            let scaled = e.scale(k);
            wrap(Formula::Atom(Atom::Le(unitize(scaled, x))))
        }
        Atom::Eq(e) => {
            let scaled = e.scale(k);
            wrap(Formula::Atom(Atom::Eq(unitize(scaled, x))))
        }
        Atom::Dvd(m, e) => {
            let mut scaled = e.scale(k);
            let mut modulus = m * k;
            // flip sign so the x coefficient is +1 (Dvd is sign-invariant)
            if scaled.coeff(x) < 0 {
                scaled = scaled.scale(-1);
            }
            if modulus < 0 {
                modulus = -modulus;
            }
            wrap(Formula::Atom(Atom::Dvd(modulus, unitize(scaled, x))))
        }
    }
}

/// Replaces the ±λ coefficient on x with ±1 (the x' renaming).
fn unitize(mut e: LinExpr, x: Sym) -> LinExpr {
    if let Some(c) = e.coeffs.get_mut(&x) {
        *c = if *c > 0 { 1 } else { -1 };
    }
    e
}

fn collect_bounds(
    f: &Formula,
    x: Sym,
    delta: &mut i64,
    lowers: &mut Vec<LinExpr>,
    uppers: &mut Vec<LinExpr>,
) {
    match f {
        Formula::Atom(Atom::Le(e)) => {
            match e.coeff(x) {
                // -x + r ≤ 0  ⇔  x ≥ r  ⇔  (r - 1) < x : lower term r-1
                -1 => {
                    let mut r = e.clone();
                    r.coeffs.remove(&x);
                    lowers.push(r.offset(-1));
                }
                // x + r ≤ 0  ⇔  x ≤ -r  ⇔  x < -r + 1 : upper term -r+1
                1 => {
                    let mut r = e.clone();
                    r.coeffs.remove(&x);
                    uppers.push(r.scale(-1).offset(1));
                }
                0 => {}
                c => unreachable!("unrescaled coefficient {c}"),
            }
        }
        Formula::Atom(Atom::Eq(e)) => {
            // equalities were expanded by nnf(); any survivor mentioning x
            // contributes both boundary points.
            match e.coeff(x) {
                0 => {}
                _ => {
                    let mut r = e.clone();
                    let c = r.coeffs.remove(&x).unwrap_or(0);
                    let r = if c > 0 { r.scale(-1) } else { r };
                    lowers.push(r.offset(-1));
                    uppers.push(r.offset(1));
                }
            }
        }
        Formula::Atom(Atom::Dvd(m, e)) if e.coeff(x) != 0 => {
            *delta = lcm(*delta, *m);
        }
        // in NNF, Not wraps only Dvd atoms
        Formula::Not(inner) => collect_bounds(inner, x, delta, lowers, uppers),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter()
                .for_each(|g| collect_bounds(g, x, delta, lowers, uppers));
        }
        _ => {}
    }
}

/// φ∓∞: the limit of φ as x → −∞ (`minus` = true) or +∞ (`minus` =
/// false). Bound atoms collapse to constants; divisibility atoms persist.
fn project_inf(f: &Formula, x: Sym, minus: bool) -> Formula {
    match f {
        Formula::Atom(Atom::Le(e)) => match e.coeff(x) {
            0 => f.clone(),
            // x ≤ -r : true at -∞, false at +∞
            1 => {
                if minus {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            // x ≥ r : false at -∞, true at +∞
            -1 => {
                if minus {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            c => unreachable!("unrescaled coefficient {c}"),
        },
        Formula::Atom(Atom::Eq(e)) => {
            if e.coeff(x) == 0 {
                f.clone()
            } else {
                Formula::False
            }
        }
        Formula::Atom(Atom::Dvd(..)) | Formula::Not(_) => f.clone(),
        Formula::And(fs) => Formula::and(fs.iter().map(|g| project_inf(g, x, minus)).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| project_inf(g, x, minus)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decide(f: &Formula) -> bool {
        let mut budget = QeBudget::default();
        let mut fv = std::collections::BTreeSet::new();
        f.free_vars(&mut fv);
        let mut g = f.clone();
        for v in fv {
            g = g.exists(v);
        }
        match eliminate_all(&g, &mut budget).expect("budget") {
            Formula::True => true,
            Formula::False => false,
            other => panic!("not ground after QE: {other}"),
        }
    }

    #[test]
    fn simple_feasibility() {
        let x = Sym::new("x");
        // ∃x. 0 ≤ x ∧ x ≤ 5
        let f = Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        assert!(decide(&f));
        // ∃x. x ≤ 0 ∧ x ≥ 5
        let g = Formula::and(vec![
            Formula::le(LinExpr::var(x), LinExpr::constant(0)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        assert!(!decide(&g));
    }

    #[test]
    fn divisibility_reasoning() {
        let x = Sym::new("x");
        // ∃x. 2|x ∧ 3|x ∧ 1 ≤ x ≤ 5  — false (only 6, 12, …)
        let f = Formula::and(vec![
            Formula::dvd(2, LinExpr::var(x)),
            Formula::dvd(3, LinExpr::var(x)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(1)),
            Formula::le(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        assert!(!decide(&f));
        // widen to ≤ 6 — true
        let g = Formula::and(vec![
            Formula::dvd(2, LinExpr::var(x)),
            Formula::dvd(3, LinExpr::var(x)),
            Formula::ge(LinExpr::var(x), LinExpr::constant(1)),
            Formula::le(LinExpr::var(x), LinExpr::constant(6)),
        ]);
        assert!(decide(&g));
    }

    #[test]
    fn scaled_coefficients() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        // ∃x,y. 3x + 5y = 1  — Bezout: solvable
        let f = Formula::eq(
            LinExpr::scaled_var(3, x).add(&LinExpr::scaled_var(5, y)),
            LinExpr::constant(1),
        );
        assert!(decide(&f));
        // ∃x,y. 2x + 4y = 1 — parity: unsolvable
        let g = Formula::eq(
            LinExpr::scaled_var(2, x).add(&LinExpr::scaled_var(4, y)),
            LinExpr::constant(1),
        );
        assert!(!decide(&g));
    }

    #[test]
    fn forall_via_negation() {
        let x = Sym::new("x");
        let mut budget = QeBudget::default();
        // ∀x. x ≥ 0 ∨ x < 0
        let f = Formula::or(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::lt(LinExpr::var(x), LinExpr::constant(0)),
        ])
        .forall(x);
        assert_eq!(eliminate_all(&f, &mut budget).unwrap(), Formula::True);
        // ∀x. x ≥ 0 — false
        let g = Formula::ge(LinExpr::var(x), LinExpr::constant(0)).forall(x);
        assert_eq!(eliminate_all(&g, &mut budget).unwrap(), Formula::False);
    }

    #[test]
    fn alternating_quantifiers() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        // ∀x ∃y. y > x — true
        let f = Formula::gt(LinExpr::var(y), LinExpr::var(x))
            .exists(y)
            .forall(x);
        let mut budget = QeBudget::default();
        assert_eq!(eliminate_all(&f, &mut budget).unwrap(), Formula::True);
        // ∃y ∀x. y > x — false
        let g = Formula::gt(LinExpr::var(y), LinExpr::var(x))
            .forall(x)
            .exists(y);
        assert_eq!(eliminate_all(&g, &mut budget).unwrap(), Formula::False);
    }

    #[test]
    fn tiling_disjointness() {
        // the shape of a real scheduling query: two tiles of a split loop
        // never alias: ∀io,ii,io',ii'. (io,ii)≠(io',ii') ∧ bounds ⇒
        //   16·io + ii ≠ 16·io' + ii'
        let io = Sym::new("io");
        let ii = Sym::new("ii");
        let jo = Sym::new("jo");
        let ji = Sym::new("ji");
        let bounds = Formula::and(vec![
            Formula::ge(LinExpr::var(ii), LinExpr::constant(0)),
            Formula::lt(LinExpr::var(ii), LinExpr::constant(16)),
            Formula::ge(LinExpr::var(ji), LinExpr::constant(0)),
            Formula::lt(LinExpr::var(ji), LinExpr::constant(16)),
        ]);
        let distinct = Formula::eq(LinExpr::var(io), LinExpr::var(jo)).negate();
        let alias = Formula::eq(
            LinExpr::scaled_var(16, io).add(&LinExpr::var(ii)),
            LinExpr::scaled_var(16, jo).add(&LinExpr::var(ji)),
        );
        let goal = Formula::and(vec![bounds, distinct])
            .implies(alias.negate())
            .forall(ji)
            .forall(jo)
            .forall(ii)
            .forall(io);
        let mut budget = QeBudget::default();
        assert_eq!(eliminate_all(&goal, &mut budget).unwrap(), Formula::True);
    }
}
