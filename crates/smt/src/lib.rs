//! # exo-smt
//!
//! The decision procedure behind exo-rs's safety analyses: a
//! from-scratch solver for **Presburger arithmetic** (linear integer
//! arithmetic with divisibility), standing in for the Z3 solver used by
//! the original Exo implementation.
//!
//! * [`ternary`] — the three-valued logic of paper §5.1 with the `D`
//!   ("definitely") and `M` ("maybe") collapsing operators;
//! * [`linear`] — canonical linear expressions over ℤ;
//! * [`formula`] — first-order formulas with quantifiers;
//! * [`qe`] — Cooper-style quantifier elimination;
//! * [`solver`] — cached validity/satisfiability checking with a work
//!   limit that fails safe ([`solver::Answer::Unknown`]);
//! * [`canon`] — alpha-normalization of formulas onto a stable symbol
//!   pool, the key function behind the cross-rewrite verdict cache in
//!   `exo-analysis`.
//!
//! Exo's quasi-affine restriction on control expressions (paper §3.1)
//! guarantees that every safety condition the analyses generate lands in
//! exactly this decidable fragment.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod canon;
pub mod formula;
pub mod linear;
pub mod qe;
pub mod solver;
pub mod ternary;

pub use canon::canonicalize;
pub use formula::{Atom, Formula};
pub use linear::LinExpr;
pub use solver::{Answer, Solver};
pub use ternary::TBool;
