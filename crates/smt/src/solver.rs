//! The solver façade used by the analyses.
//!
//! Wraps [`crate::qe`] with free-variable closure, result caching, and
//! query statistics (the paper §3.3 notes that keeping solver cost low is
//! essential as scheduling complicates procedures; the cache plus the
//! provenance "simplest equivalent definition" optimization in
//! `exo-sched` are the two levers).

use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::formula::Formula;
use crate::qe::{eliminate_all, QeBudget, TooHard};

/// Outcome of a satisfiability/validity query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// The query is true.
    Yes,
    /// The query is false.
    No,
    /// The solver gave up (work limit); callers must fail safe.
    Unknown,
}

impl Answer {
    /// Whether the answer is a definite yes.
    pub fn is_yes(self) -> bool {
        self == Answer::Yes
    }
}

/// Counters describing solver activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    /// Queries answered (including cache hits).
    pub queries: usize,
    /// Cache hits.
    pub cache_hits: usize,
    /// Queries that exceeded the work limit.
    pub gave_up: usize,
    /// Total QE nodes produced.
    pub nodes: usize,
    /// Queries answered `Yes`.
    pub yes: usize,
    /// Queries answered `No`.
    pub no: usize,
    /// Total wall-clock time spent deciding (cache misses only), µs.
    pub time_us: u64,
}

/// A Presburger-arithmetic solver with caching.
///
/// # Examples
///
/// ```
/// use exo_smt::solver::{Answer, Solver};
/// use exo_smt::formula::Formula;
/// use exo_smt::linear::LinExpr;
/// use exo_core::sym::Sym;
///
/// let mut s = Solver::new();
/// let x = Sym::new("x");
/// // x ≤ x + 1 is valid
/// let f = Formula::le(LinExpr::var(x), LinExpr::var(x).offset(1));
/// assert_eq!(s.check_valid(&f), Answer::Yes);
/// ```
#[derive(Debug)]
pub struct Solver {
    cache: HashMap<Formula, Answer>,
    stats: SolverStats,
    max_size: usize,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default work limit.
    pub fn new() -> Solver {
        Solver {
            cache: HashMap::new(),
            stats: SolverStats::default(),
            max_size: 5_000_000,
        }
    }

    /// Creates a solver with a custom work limit (QE nodes per query).
    pub fn with_limit(max_size: usize) -> Solver {
        Solver {
            max_size,
            ..Solver::new()
        }
    }

    /// The process-wide shared solver.
    ///
    /// Tests and tools that only need *some* solver should lock this one
    /// instead of constructing throwaways — queries then accumulate in a
    /// single cache. Scheduling goes further and routes through
    /// `exo-analysis`'s `CheckCtx`, which canonicalizes formulas before
    /// consulting its own shared solver.
    pub fn shared() -> &'static Mutex<Solver> {
        static SHARED: OnceLock<Mutex<Solver>> = OnceLock::new();
        SHARED.get_or_init(|| Mutex::new(Solver::new()))
    }

    /// Returns activity counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Checks whether `f` is satisfiable (free variables are
    /// existentially quantified).
    pub fn check_sat(&mut self, f: &Formula) -> Answer {
        self.stats.queries += 1;
        exo_obs::counter_add("smt.queries", 1);
        // Attribution: split the same total by the scheduling operator
        // (or lint pass) that caused the query — `smt.queries.op.*`
        // always sums to `smt.queries`.
        exo_obs::attr::counter_add_by_op("smt.queries", 1);
        // Chaos injection: pretend QE blew its budget. Answered *before* any
        // cache interaction so the injected verdict can never contaminate
        // later clean queries; `Unknown` is always a sound (conservative)
        // answer, so injection can only turn accepts into rejects.
        if exo_chaos::should_inject(exo_chaos::FaultSite::SmtTooHard) {
            self.stats.gave_up += 1;
            exo_obs::counter_add("smt.answer.unknown", 1);
            return Answer::Unknown;
        }
        if let Some(&a) = self.cache.get(f) {
            self.stats.cache_hits += 1;
            exo_obs::counter_add("smt.cache_hits", 1);
            exo_obs::attr::counter_add_by_op("smt.cache_hits", 1);
            return a;
        }
        exo_obs::record_hist("smt.formula_size", f.size() as u64);
        let mut span = exo_obs::Span::enter("smt.decide");
        span.field("size", exo_obs::Json::uint(f.size() as u64));
        let start = Instant::now();
        let answer = match self.decide(f) {
            Ok(true) => Answer::Yes,
            Ok(false) => Answer::No,
            Err(TooHard { .. }) => Answer::Unknown,
        };
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.stats.time_us = self.stats.time_us.saturating_add(us);
        exo_obs::record_hist("smt.query_us", us);
        span.field(
            "answer",
            exo_obs::Json::Str(
                match answer {
                    Answer::Yes => "yes",
                    Answer::No => "no",
                    Answer::Unknown => "unknown",
                }
                .into(),
            ),
        );
        drop(span);
        match answer {
            Answer::Yes => {
                self.stats.yes += 1;
                exo_obs::counter_add("smt.answer.yes", 1);
            }
            Answer::No => {
                self.stats.no += 1;
                exo_obs::counter_add("smt.answer.no", 1);
            }
            Answer::Unknown => {
                self.stats.gave_up += 1;
                exo_obs::counter_add("smt.answer.unknown", 1);
            }
        }
        self.cache.insert(f.clone(), answer);
        answer
    }

    /// Checks whether `f` is valid (free variables universally
    /// quantified): `valid(f) ⇔ ¬sat(¬f)`.
    pub fn check_valid(&mut self, f: &Formula) -> Answer {
        match self.check_sat(&f.clone().negate()) {
            Answer::Yes => Answer::No,
            Answer::No => Answer::Yes,
            Answer::Unknown => Answer::Unknown,
        }
    }

    /// Checks validity of `hyp ⇒ goal`.
    pub fn check_entails(&mut self, hyp: &Formula, goal: &Formula) -> Answer {
        self.check_valid(&hyp.clone().implies(goal.clone()))
    }

    fn decide(&mut self, f: &Formula) -> Result<bool, TooHard> {
        let mut budget = QeBudget {
            max_size: self.max_size,
            produced: 0,
        };
        // First make the body quantifier-free; the ∃-closure over free
        // variables is then decided disjunct-by-disjunct with early exit.
        let result = eliminate_all(f, &mut budget).and_then(|qf| sat_qf(&qf, &mut budget));
        self.stats.nodes += budget.produced;
        result
    }
}

/// Decides satisfiability of a quantifier-free formula, existentially
/// closing its free variables. Splits top-level disjunctions (early exit
/// on the first satisfiable disjunct) and eliminates the cheapest-looking
/// variable first.
fn sat_qf(f: &Formula, budget: &mut QeBudget) -> Result<bool, TooHard> {
    match f {
        Formula::True => return Ok(true),
        Formula::False => return Ok(false),
        Formula::Or(fs) => {
            for g in fs {
                if sat_qf(g, budget)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        _ => {}
    }
    let mut fv = BTreeSet::new();
    f.free_vars(&mut fv);
    let Some(&x) = fv.iter().min_by_key(|&&v| occurrence_weight(f, v)) else {
        // ground: atoms mostly fold at construction, but a few paths
        // (e.g. Cooper rescaling) build atoms directly — evaluate here.
        return Ok(eval_ground(f));
    };
    let g = crate::qe::eliminate_exists(x, f, budget)?;
    sat_qf(&g, budget)
}

/// Evaluates a ground (variable-free) formula.
///
/// # Panics
///
/// Panics if the formula mentions a variable — unreachable by construction:
/// callers run full quantifier elimination first, which either grounds the
/// formula or fails with `TooHard` before this point.
#[allow(clippy::expect_used)]
fn eval_ground(f: &Formula) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => a.eval_ground().expect("formula is not ground"),
        Formula::Not(g) => !eval_ground(g),
        Formula::And(fs) => fs.iter().all(eval_ground),
        Formula::Or(fs) => fs.iter().any(eval_ground),
        Formula::Exists(_, g) | Formula::Forall(_, g) => eval_ground(g),
    }
}

/// Heuristic elimination cost: number of atoms mentioning the variable.
fn occurrence_weight(f: &Formula, x: exo_core::sym::Sym) -> usize {
    match f {
        Formula::Atom(a) => {
            let e = match a {
                crate::formula::Atom::Le(e)
                | crate::formula::Atom::Eq(e)
                | crate::formula::Atom::Dvd(_, e) => e,
            };
            usize::from(e.mentions(x))
        }
        Formula::Not(g) => occurrence_weight(g, x),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|g| occurrence_weight(g, x)).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;
    use exo_core::sym::Sym;

    /// Locks the process-wide solver, recovering from poisoning (a panic
    /// in an unrelated test must not cascade here).
    fn shared() -> std::sync::MutexGuard<'static, Solver> {
        Solver::shared()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn sat_and_valid_are_dual() {
        let mut s = shared();
        let x = Sym::new("x");
        let f = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        assert_eq!(s.check_sat(&f), Answer::Yes); // x = 0 works
        assert_eq!(s.check_valid(&f), Answer::No); // x = 1 refutes
    }

    #[test]
    fn entailment() {
        let mut s = shared();
        let x = Sym::new("x");
        // x ≥ 4 ⊢ x ≥ 2
        let hyp = Formula::ge(LinExpr::var(x), LinExpr::constant(4));
        let goal = Formula::ge(LinExpr::var(x), LinExpr::constant(2));
        assert_eq!(s.check_entails(&hyp, &goal), Answer::Yes);
        assert_eq!(s.check_entails(&goal, &hyp), Answer::No);
    }

    #[test]
    fn cache_hits_count() {
        let mut s = shared();
        let before = s.stats();
        let x = Sym::new("x");
        let f = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        let _ = s.check_sat(&f);
        let _ = s.check_sat(&f);
        let after = s.stats();
        assert_eq!(after.queries - before.queries, 2);
        assert_eq!(after.cache_hits - before.cache_hits, 1);
    }

    #[test]
    fn work_limit_fails_safe() {
        // a formula with many interacting divisibilities blows up; a tiny
        // budget must yield Unknown, never a wrong answer
        // needs its own budget, so this one test keeps a local solver
        let mut s = Solver::with_limit(4);
        let x = Sym::new("x");
        let y = Sym::new("y");
        let f = Formula::and(vec![
            Formula::dvd(7, LinExpr::var(x).add(&LinExpr::scaled_var(3, y))),
            Formula::dvd(11, LinExpr::var(x).sub(&LinExpr::scaled_var(5, y))),
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::le(LinExpr::var(x), LinExpr::constant(1000)),
        ]);
        assert_eq!(s.check_sat(&f), Answer::Unknown);
        assert_eq!(s.stats().gave_up, 1);
    }

    #[test]
    fn split_loop_bounds_query() {
        // the guard condition produced by split-with-tail: the tail guard
        // 16·io + ii < n is implied when io < n/16 (floor) and ii < 16 …
        // only when 16 | n. Check both directions.
        let mut s = shared();
        let io = Sym::new("io");
        let ii = Sym::new("ii");
        let n = Sym::new("n");
        let hyp = Formula::and(vec![
            Formula::ge(LinExpr::var(io), LinExpr::constant(0)),
            Formula::lt(LinExpr::scaled_var(16, io), LinExpr::var(n)),
            Formula::ge(LinExpr::var(ii), LinExpr::constant(0)),
            Formula::lt(LinExpr::var(ii), LinExpr::constant(16)),
            Formula::dvd(16, LinExpr::var(n)),
        ]);
        let goal = Formula::lt(
            LinExpr::scaled_var(16, io).add(&LinExpr::var(ii)),
            LinExpr::var(n),
        );
        assert_eq!(s.check_entails(&hyp, &goal), Answer::Yes);
        // without the divisibility assumption the entailment fails
        let hyp_weak = Formula::and(vec![
            Formula::ge(LinExpr::var(io), LinExpr::constant(0)),
            Formula::lt(LinExpr::scaled_var(16, io), LinExpr::var(n)),
            Formula::ge(LinExpr::var(ii), LinExpr::constant(0)),
            Formula::lt(LinExpr::var(ii), LinExpr::constant(16)),
        ]);
        assert_eq!(s.check_entails(&hyp_weak, &goal), Answer::No);
    }
}
