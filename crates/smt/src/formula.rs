//! First-order formulas over linear integer arithmetic.
//!
//! This is the logic the effect analyses compile their safety conditions
//! into (paper §5.2, appendix B). Atoms are linear (in)equalities and
//! divisibility constraints; formulas add boolean structure and
//! quantifiers. Validity is decided by Cooper-style quantifier
//! elimination in [`crate::qe`].

use std::fmt;

use exo_core::sym::Sym;

use crate::linear::LinExpr;

/// An atomic constraint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// `e ≤ 0`.
    Le(LinExpr),
    /// `e = 0`.
    Eq(LinExpr),
    /// `m | e` (m > 0 divides e).
    Dvd(i64, LinExpr),
}

impl Atom {
    /// Evaluates the atom if it is ground (mentions no variables).
    pub fn eval_ground(&self) -> Option<bool> {
        match self {
            Atom::Le(e) => e.as_constant().map(|v| v <= 0),
            Atom::Eq(e) => e.as_constant().map(|v| v == 0),
            Atom::Dvd(m, e) => e.as_constant().map(|v| v.rem_euclid(*m) == 0),
        }
    }
}

/// A first-order formula.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic constraint.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Existential quantification over an integer variable.
    Exists(Sym, Box<Formula>),
    /// Universal quantification over an integer variable.
    Forall(Sym, Box<Formula>),
}

impl Formula {
    /// `a ≤ b` as a formula.
    pub fn le(a: LinExpr, b: LinExpr) -> Formula {
        Formula::Atom(Atom::Le(a.sub(&b))).simplify_shallow()
    }

    /// `a < b`.
    pub fn lt(a: LinExpr, b: LinExpr) -> Formula {
        Formula::Atom(Atom::Le(a.sub(&b).offset(1))).simplify_shallow()
    }

    /// `a = b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Formula {
        Formula::Atom(Atom::Eq(a.sub(&b))).simplify_shallow()
    }

    /// `a ≥ b`.
    pub fn ge(a: LinExpr, b: LinExpr) -> Formula {
        Formula::le(b, a)
    }

    /// `a > b`.
    pub fn gt(a: LinExpr, b: LinExpr) -> Formula {
        Formula::lt(b, a)
    }

    /// `m | e`.
    pub fn dvd(m: i64, e: LinExpr) -> Formula {
        assert!(m > 0, "divisibility modulus must be positive");
        Formula::Atom(Atom::Dvd(m, e)).simplify_shallow()
    }

    /// Logical negation (with double-negation elimination).
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(f) => *f,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// N-ary conjunction with short-circuit simplification and
    /// bound-conflict pruning (a conjunction implying both `t ≤ u` and
    /// `t ≥ l` with `l > u` along the same linear direction collapses to
    /// `False` — this keeps Cooper-elimination disjunct counts down).
    pub fn and(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                f => out.push(f),
            }
        }
        out.dedup();
        if conj_has_bound_conflict(&out) {
            return Formula::False;
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap_or(Formula::True),
            _ => Formula::And(out),
        }
    }

    /// N-ary disjunction with short-circuit simplification.
    pub fn or(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                f => out.push(f),
            }
        }
        out.dedup();
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap_or(Formula::False),
            _ => Formula::Or(out),
        }
    }

    /// `a ⇒ b`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or(vec![self.negate(), other])
    }

    /// `a ⇔ b`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::and(vec![
            self.clone().implies(other.clone()),
            other.implies(self),
        ])
    }

    /// `∃x. self`.
    pub fn exists(self, x: Sym) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            f => Formula::Exists(x, Box::new(f)),
        }
    }

    /// `∀x. self`.
    pub fn forall(self, x: Sym) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            f => Formula::Forall(x, Box::new(f)),
        }
    }

    fn simplify_shallow(self) -> Formula {
        if let Formula::Atom(a) = &self {
            if let Some(b) = a.eval_ground() {
                return if b { Formula::True } else { Formula::False };
            }
            // normalize by gcd: g·e' ≤ c ⇒ e' ≤ floor(c/g), etc.
            match a {
                Atom::Le(e) if !e.coeffs.is_empty() => {
                    let g = e.coeffs.values().fold(0, |g, &c| crate::linear::gcd(g, c));
                    if g > 1 {
                        let mut e2 = LinExpr {
                            constant: 0,
                            coeffs: e.coeffs.iter().map(|(&v, &c)| (v, c / g)).collect(),
                        };
                        // Σ g·cᵢxᵢ + k ≤ 0 ⇔ Σ cᵢxᵢ ≤ floor(-k/g) ⇔ Σ cᵢxᵢ - floor(-k/g) ≤ 0
                        e2.constant = -(-e.constant).div_euclid(g);
                        return Formula::Atom(Atom::Le(e2));
                    }
                }
                Atom::Eq(e) if !e.coeffs.is_empty() => {
                    let g = e.coeffs.values().fold(0, |g, &c| crate::linear::gcd(g, c));
                    if g > 1 {
                        if e.constant.rem_euclid(g) != 0 {
                            return Formula::False;
                        }
                        let e2 = LinExpr {
                            constant: e.constant / g,
                            coeffs: e.coeffs.iter().map(|(&v, &c)| (v, c / g)).collect(),
                        };
                        return Formula::Atom(Atom::Eq(e2));
                    }
                }
                _ => {}
            }
        }
        self
    }

    /// Collects the free variables of the formula into `out`.
    pub fn free_vars(&self, out: &mut std::collections::BTreeSet<Sym>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                let e = match a {
                    Atom::Le(e) | Atom::Eq(e) | Atom::Dvd(_, e) => e,
                };
                out.extend(e.vars());
            }
            Formula::Not(f) => f.free_vars(out),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|f| f.free_vars(out)),
            Formula::Exists(x, f) | Formula::Forall(x, f) => {
                let mut inner = std::collections::BTreeSet::new();
                f.free_vars(&mut inner);
                inner.remove(x);
                out.extend(inner);
            }
        }
    }

    /// Substitutes the linear expression `e` for variable `x` in all
    /// atoms. `x` must not be bound by a quantifier whose scope is
    /// entered (bound occurrences shadow).
    pub fn subst(&self, x: Sym, e: &LinExpr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => {
                let f = match a {
                    Atom::Le(t) => Formula::Atom(Atom::Le(t.subst(x, e))),
                    Atom::Eq(t) => Formula::Atom(Atom::Eq(t.subst(x, e))),
                    Atom::Dvd(m, t) => Formula::Atom(Atom::Dvd(*m, t.subst(x, e))),
                };
                f.simplify_shallow()
            }
            Formula::Not(f) => f.subst(x, e).negate(),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| f.subst(x, e)).collect()),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.subst(x, e)).collect()),
            Formula::Exists(y, f) if *y != x => f.subst(x, e).exists(*y),
            Formula::Forall(y, f) if *y != x => f.subst(x, e).forall(*y),
            q => q.clone(),
        }
    }

    /// Whether the formula contains quantifiers.
    pub fn has_quantifiers(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => false,
            Formula::Not(f) => f.has_quantifiers(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(Formula::has_quantifiers),
            Formula::Exists(..) | Formula::Forall(..) => true,
        }
    }

    /// Rough size measure (number of nodes), used to bound solver effort.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }
}

/// Detects pairs of linear bounds in one conjunction that are jointly
/// infeasible: atoms are normalized to `dir·x ≤ u` / `dir·x ≥ l` along a
/// sign-and-gcd-canonical direction `dir`; a direction with `l > u` makes
/// the conjunction false.
fn conj_has_bound_conflict(fs: &[Formula]) -> bool {
    use std::collections::HashMap;
    type Dir = Vec<(Sym, i64)>;
    type Bounds = (Option<i64>, Option<i64>);
    // direction → (max lower bound, min upper bound)
    let mut bounds: HashMap<Dir, Bounds> = HashMap::new();
    let mut note = |dir: Vec<(Sym, i64)>, lower: Option<i64>, upper: Option<i64>| -> bool {
        let entry = bounds.entry(dir).or_insert((None, None));
        if let Some(l) = lower {
            entry.0 = Some(entry.0.map_or(l, |x| x.max(l)));
        }
        if let Some(u) = upper {
            entry.1 = Some(entry.1.map_or(u, |x| x.min(u)));
        }
        matches!(*entry, (Some(l), Some(u)) if l > u)
    };
    for f in fs {
        let (e, is_eq) = match f {
            Formula::Atom(Atom::Le(e)) => (e, false),
            Formula::Atom(Atom::Eq(e)) => (e, true),
            _ => continue,
        };
        if e.coeffs.is_empty() {
            continue;
        }
        let g = e.coeffs.values().fold(0, |g, &c| crate::linear::gcd(g, c));
        let Some(&lead) = e.coeffs.values().next() else {
            continue;
        };
        let sign = if lead > 0 { 1 } else { -1 };
        let dir: Vec<(Sym, i64)> = e.coeffs.iter().map(|(&v, &c)| (v, sign * c / g)).collect();
        // e ≤ 0 ⇔ sign·g·(dir·x) + c ≤ 0
        let conflict = if is_eq {
            if e.constant.rem_euclid(g) != 0 {
                return true;
            }
            let v = -sign * e.constant / g;
            note(dir, Some(v), Some(v))
        } else if sign > 0 {
            // g·(dir·x) ≤ -c  ⇒  dir·x ≤ floor(-c / g)
            note(dir, None, Some((-e.constant).div_euclid(g)))
        } else {
            // -g·(dir·x) + c ≤ 0  ⇒  dir·x ≥ ceil(c / g)
            note(dir, Some(-(-e.constant).div_euclid(g)), None)
        };
        if conflict {
            return true;
        }
    }
    false
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(Atom::Le(e)) => write!(f, "({e} <= 0)"),
            Formula::Atom(Atom::Eq(e)) => write!(f, "({e} == 0)"),
            Formula::Atom(Atom::Dvd(m, e)) => write!(f, "({m} | {e})"),
            Formula::Not(g) => write!(f, "¬{g}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(x, g) => write!(f, "∃{x}. {g}"),
            Formula::Forall(x, g) => write!(f, "∀{x}. {g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_atoms_fold() {
        assert_eq!(
            Formula::le(LinExpr::constant(1), LinExpr::constant(2)),
            Formula::True
        );
        assert_eq!(
            Formula::lt(LinExpr::constant(2), LinExpr::constant(2)),
            Formula::False
        );
        assert_eq!(
            Formula::eq(LinExpr::constant(3), LinExpr::constant(3)),
            Formula::True
        );
        assert_eq!(Formula::dvd(3, LinExpr::constant(9)), Formula::True);
        assert_eq!(Formula::dvd(3, LinExpr::constant(-1)), Formula::False);
    }

    #[test]
    fn and_or_simplify() {
        let x = Sym::new("x");
        let a = Formula::le(LinExpr::var(x), LinExpr::constant(5));
        assert_eq!(Formula::and(vec![Formula::True, a.clone()]), a);
        assert_eq!(
            Formula::and(vec![Formula::False, a.clone()]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::True, a.clone()]), Formula::True);
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![]), Formula::True);
    }

    #[test]
    fn gcd_normalization() {
        let x = Sym::new("x");
        // 2x <= 5  ⇒  x <= 2
        let f = Formula::le(LinExpr::scaled_var(2, x), LinExpr::constant(5));
        match f {
            Formula::Atom(Atom::Le(e)) => {
                assert_eq!(e.coeff(x), 1);
                assert_eq!(e.constant, -2);
            }
            other => panic!("unexpected {other}"),
        }
        // 2x == 5 is unsatisfiable by parity
        let g = Formula::eq(LinExpr::scaled_var(2, x), LinExpr::constant(5));
        assert_eq!(g, Formula::False);
    }

    #[test]
    fn subst_into_atoms() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        let f = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        let g = f.subst(x, &LinExpr::var(y).offset(-1));
        match g {
            Formula::Atom(Atom::Le(e)) => {
                assert_eq!(e.coeff(y), 1);
                assert_eq!(e.constant, -1);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn free_vars_respect_binding() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        let f = Formula::le(LinExpr::var(x), LinExpr::var(y)).exists(x);
        let mut vs = std::collections::BTreeSet::new();
        f.free_vars(&mut vs);
        assert!(vs.contains(&y));
        assert!(!vs.contains(&x));
    }

    #[test]
    fn double_negation_eliminated() {
        let x = Sym::new("x");
        let a = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        assert_eq!(a.clone().negate().negate(), a);
    }
}
