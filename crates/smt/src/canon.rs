//! Canonical (alpha-normalized) formulas.
//!
//! Scheduling rewrites mint fresh [`Sym`]s constantly: re-deriving the
//! same safety condition after a rewrite yields a formula that is
//! semantically identical but structurally distinct (different variable
//! identities), so it misses any structural cache. Canonicalization
//! renames every variable — free and bound alike — injectively, in order
//! of first occurrence under a deterministic pre-order traversal, onto a
//! stable pool of canonical symbols (`$c0`, `$c1`, …). A bijective
//! renaming preserves both satisfiability and validity, so a verdict
//! memoized for the canonical form is sound for every alpha-variant.
//!
//! Canonicalization is an approximation of alpha-equivalence detection:
//! two equivalent formulas whose variables *first occur in a different
//! order* (coefficient maps iterate in symbol-creation order) canonicalize
//! differently and simply miss the cache. That direction is harmless; the
//! soundness-critical direction — distinct verdicts never sharing a cache
//! entry — holds because the renaming is injective and everything else
//! (constants, coefficients, boolean structure) is preserved exactly.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use exo_core::sym::Sym;

use crate::formula::{Atom, Formula};
use crate::linear::LinExpr;

/// Returns the `n`-th canonical symbol, growing the shared pool lazily.
/// Pooling (instead of minting per call) keeps canonical formulas from
/// two different queries structurally comparable.
fn pool_sym(n: usize) -> Sym {
    static POOL: OnceLock<Mutex<Vec<Sym>>> = OnceLock::new();
    // The pool is append-only, so a poisoned guard is still consistent.
    let mut pool = POOL
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    while pool.len() <= n {
        let i = pool.len();
        pool.push(Sym::new(format!("$c{i}")));
    }
    pool[n]
}

struct Canon {
    map: HashMap<Sym, Sym>,
    next: usize,
}

impl Canon {
    fn alloc(&mut self) -> Sym {
        let c = pool_sym(self.next);
        self.next += 1;
        c
    }

    fn rename(&mut self, x: Sym) -> Sym {
        if let Some(&c) = self.map.get(&x) {
            return c;
        }
        let c = self.alloc();
        self.map.insert(x, c);
        c
    }

    fn lin(&mut self, e: &LinExpr) -> LinExpr {
        let mut out = LinExpr::constant(e.constant);
        for (&x, &c) in &e.coeffs {
            out.coeffs.insert(self.rename(x), c);
        }
        out
    }

    fn formula(&mut self, f: &Formula) -> Formula {
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(Atom::Le(e)) => Formula::Atom(Atom::Le(self.lin(e))),
            Formula::Atom(Atom::Eq(e)) => Formula::Atom(Atom::Eq(self.lin(e))),
            Formula::Atom(Atom::Dvd(m, e)) => Formula::Atom(Atom::Dvd(*m, self.lin(e))),
            Formula::Not(g) => Formula::Not(Box::new(self.formula(g))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| self.formula(g)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| self.formula(g)).collect()),
            Formula::Exists(x, g) => {
                let (cx, body) = self.binder(*x, g);
                Formula::Exists(cx, Box::new(body))
            }
            Formula::Forall(x, g) => {
                let (cx, body) = self.binder(*x, g);
                Formula::Forall(cx, Box::new(body))
            }
        }
    }

    /// Binders always get a fresh canonical sym, shadowing any outer use
    /// of the same source sym for the extent of the body.
    fn binder(&mut self, x: Sym, body: &Formula) -> (Sym, Formula) {
        let saved = self.map.get(&x).copied();
        let cx = self.alloc();
        self.map.insert(x, cx);
        let out = self.formula(body);
        match saved {
            Some(old) => {
                self.map.insert(x, old);
            }
            None => {
                self.map.remove(&x);
            }
        }
        (cx, out)
    }
}

/// Renames all variables of `f` onto the canonical pool, in first-occurrence
/// pre-order. Alpha-variant formulas (same structure, different variable
/// identities in the same positions) map to the same canonical formula.
pub fn canonicalize(f: &Formula) -> Formula {
    let mut c = Canon {
        map: HashMap::new(),
        next: 0,
    };
    c.formula(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    fn shape(x: Sym, y: Sym, c: i64) -> Formula {
        // 0 ≤ x ∧ x + 2y < c
        Formula::and(vec![
            Formula::ge(LinExpr::var(x), LinExpr::constant(0)),
            Formula::lt(
                LinExpr::var(x).add(&LinExpr::scaled_var(2, y)),
                LinExpr::constant(c),
            ),
        ])
    }

    #[test]
    fn alpha_variants_canonicalize_equal() {
        let f = shape(Sym::new("i"), Sym::new("j"), 8);
        let g = shape(Sym::new("io"), Sym::new("ii"), 8);
        assert_ne!(f, g); // distinct syms: structurally different …
        assert_eq!(canonicalize(&f), canonicalize(&g)); // … same canonical form
    }

    #[test]
    fn different_constants_stay_distinct() {
        let x = Sym::new("i");
        let y = Sym::new("j");
        let f = shape(x, y, 8);
        let g = shape(x, y, 9);
        assert_ne!(canonicalize(&f), canonicalize(&g));
    }

    #[test]
    fn idempotent() {
        let f = shape(Sym::new("i"), Sym::new("j"), 8);
        let c = canonicalize(&f);
        assert_eq!(canonicalize(&c), c);
    }

    #[test]
    fn binders_shadow_outer_occurrences() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        // x ≤ 0 ∧ ∃x. x ≥ 5   vs   x ≤ 0 ∧ ∃y. y ≥ 5 — alpha-equal
        let le = Formula::le(LinExpr::var(x), LinExpr::constant(0));
        let f = Formula::And(vec![
            le.clone(),
            Formula::Exists(
                x,
                Box::new(Formula::ge(LinExpr::var(x), LinExpr::constant(5))),
            ),
        ]);
        let g = Formula::And(vec![
            le,
            Formula::Exists(
                y,
                Box::new(Formula::ge(LinExpr::var(y), LinExpr::constant(5))),
            ),
        ]);
        assert_eq!(canonicalize(&f), canonicalize(&g));
    }

    #[test]
    fn canonicalization_preserves_verdicts() {
        let mut s = Solver::new();
        let cases = vec![
            shape(Sym::new("i"), Sym::new("j"), 8),
            Formula::Forall(
                Sym::new("k"),
                Box::new(Formula::le(
                    LinExpr::var(Sym::new("k")),
                    LinExpr::constant(3),
                )),
            ),
            Formula::dvd(4, LinExpr::var(Sym::new("n"))),
        ];
        for f in cases {
            let c = canonicalize(&f);
            assert_eq!(s.check_sat(&f), s.check_sat(&c));
            assert_eq!(s.check_valid(&f), s.check_valid(&c));
        }
    }
}
