//! # exo-hwlibs
//!
//! Hardware targets as libraries (paper §3.2): everything exo-rs knows
//! about the Gemmini accelerator and x86 AVX-512 lives here, in user
//! code — custom memories, configuration-state structs, and `@instr`
//! procedures whose Exo bodies serve as semantic specifications while
//! their C templates drive code generation.
//!
//! Adding a new accelerator to exo-rs means writing another module like
//! [`gemmini`] or [`avx512`]; the compiler crates are never touched.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod avx512;
pub mod gemmini;

pub use avx512::Avx512Lib;
pub use gemmini::GemminiLib;
