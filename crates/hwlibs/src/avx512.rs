//! The x86 AVX-512 hardware library (paper §7.2).
//!
//! Models one 512-bit vector lane-set: a non-addressable `AVX512` memory
//! standing for the zmm register file, and `@instr` procedures wrapping
//! the intrinsics the paper's SGEMM and CONV kernels use — loads,
//! stores, broadcasts, and fused multiply-add, each with a masked
//! variant for edge cases ("the variable tail on the right edge is
//! handled by masked loads").

use std::sync::Arc;

use exo_codegen::{AllocStyle, CodegenCtx, Memory};
use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;

/// f32 lanes per 512-bit vector.
pub const LANES: i64 = 16;

/// The AVX-512 target library.
pub struct Avx512Lib {
    /// The zmm register-file memory (`@AVX512`, non-addressable).
    pub reg: MemName,
    /// `mm512_loadu_ps(dst@AVX512, src@DRAM)` — unaligned 16-lane load.
    pub loadu: Arc<Proc>,
    /// `mm512_storeu_ps(dst@DRAM, src@AVX512)` — unaligned 16-lane store.
    pub storeu: Arc<Proc>,
    /// `mm512_set0_ps(dst@AVX512)` — zero a vector.
    pub set0: Arc<Proc>,
    /// `mm512_broadcast_ss(dst@AVX512, src)` — broadcast one scalar.
    pub broadcast: Arc<Proc>,
    /// `mm512_fmadd_ps(a, b, dst)` — `dst[l] += a[l] · b[l]`.
    pub fmadd: Arc<Proc>,
    /// `mm512_mask_loadu_ps(n, dst, src)` — tail load of `n < 16` lanes.
    pub mask_loadu: Arc<Proc>,
    /// `mm512_mask_storeu_ps(n, dst, src)` — tail store.
    pub mask_storeu: Arc<Proc>,
    /// `mm512_relu_ps(dst@AVX512)` — in-register ReLU (max with 0).
    pub relu: Arc<Proc>,
}

impl Avx512Lib {
    /// Builds the library.
    pub fn new() -> Avx512Lib {
        let reg = MemName(Sym::new("AVX512"));

        let loadu = {
            let mut b = ProcBuilder::new("mm512_loadu_ps");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::int(LANES)], reg);
            let src = b.window_arg(
                "src",
                DataType::F32,
                vec![Expr::int(LANES)],
                MemName::dram(),
            );
            b.instr("{dst_data} = _mm512_loadu_ps(&{src_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.assign(dst, vec![Expr::var(l)], read(src, vec![Expr::var(l)]));
            b.end_for();
            b.finish()
        };

        let storeu = {
            let mut b = ProcBuilder::new("mm512_storeu_ps");
            let dst = b.window_arg(
                "dst",
                DataType::F32,
                vec![Expr::int(LANES)],
                MemName::dram(),
            );
            let src = b.window_arg("src", DataType::F32, vec![Expr::int(LANES)], reg);
            b.instr("_mm512_storeu_ps(&{dst_data}, {src_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.assign(dst, vec![Expr::var(l)], read(src, vec![Expr::var(l)]));
            b.end_for();
            b.finish()
        };

        let set0 = {
            let mut b = ProcBuilder::new("mm512_set0_ps");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::int(LANES)], reg);
            b.instr("{dst_data} = _mm512_setzero_ps();");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.assign(dst, vec![Expr::var(l)], Expr::float(0.0));
            b.end_for();
            b.finish()
        };

        let broadcast = {
            let mut b = ProcBuilder::new("mm512_broadcast_ss");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::int(LANES)], reg);
            let src = b.window_arg("src", DataType::F32, vec![Expr::int(1)], MemName::dram());
            b.instr("{dst_data} = _mm512_set1_ps({src_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.assign(dst, vec![Expr::var(l)], read(src, vec![Expr::int(0)]));
            b.end_for();
            b.finish()
        };

        let fmadd = {
            let mut b = ProcBuilder::new("mm512_fmadd_ps");
            let a = b.window_arg("a", DataType::F32, vec![Expr::int(LANES)], reg);
            let bb = b.window_arg("b", DataType::F32, vec![Expr::int(LANES)], reg);
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::int(LANES)], reg);
            b.instr("{dst_data} = _mm512_fmadd_ps({a_data}, {b_data}, {dst_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.reduce(
                dst,
                vec![Expr::var(l)],
                read(a, vec![Expr::var(l)]).mul(read(bb, vec![Expr::var(l)])),
            );
            b.end_for();
            b.finish()
        };

        let mask_loadu = {
            let mut b = ProcBuilder::new("mm512_mask_loadu_ps");
            let n = b.size("n");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::var(n)], reg);
            let src = b.window_arg("src", DataType::F32, vec![Expr::var(n)], MemName::dram());
            b.assert_pred(Expr::var(n).le(Expr::int(LANES)));
            b.instr("{dst_data} = _mm512_maskz_loadu_ps(((1 << {n}) - 1), &{src_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::var(n));
            b.assign(dst, vec![Expr::var(l)], read(src, vec![Expr::var(l)]));
            b.end_for();
            b.finish()
        };

        let mask_storeu = {
            let mut b = ProcBuilder::new("mm512_mask_storeu_ps");
            let n = b.size("n");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::var(n)], MemName::dram());
            let src = b.window_arg("src", DataType::F32, vec![Expr::var(n)], reg);
            b.assert_pred(Expr::var(n).le(Expr::int(LANES)));
            b.instr("_mm512_mask_storeu_ps(&{dst_data}, ((1 << {n}) - 1), {src_data});");
            let l = b.begin_for("l", Expr::int(0), Expr::var(n));
            b.assign(dst, vec![Expr::var(l)], read(src, vec![Expr::var(l)]));
            b.end_for();
            b.finish()
        };

        let relu = {
            let mut b = ProcBuilder::new("mm512_relu_ps");
            let dst = b.window_arg("dst", DataType::F32, vec![Expr::int(LANES)], reg);
            b.instr("{dst_data} = _mm512_max_ps({dst_data}, _mm512_setzero_ps());");
            let l = b.begin_for("l", Expr::int(0), Expr::int(LANES));
            b.assign(
                dst,
                vec![Expr::var(l)],
                Expr::BuiltIn {
                    func: Sym::new("relu"),
                    args: vec![read(dst, vec![Expr::var(l)])],
                },
            );
            b.end_for();
            b.finish()
        };

        Avx512Lib {
            reg,
            loadu,
            storeu,
            set0,
            broadcast,
            fmadd,
            mask_loadu,
            mask_storeu,
            relu,
        }
    }

    /// A code-generation context with the register-file memory.
    pub fn codegen_ctx(&self) -> CodegenCtx {
        let mut ctx = CodegenCtx::new();
        ctx.mems.register(Memory {
            name: self.reg,
            // vector "allocations" are local __m512 variables
            alloc: AllocStyle::Custom {
                alloc: "__m512 {name}[({size}) / 16];".into(),
                free: String::new(),
            },
            addressable: false,
            c_global: Some("#include <immintrin.h>".into()),
        });
        ctx
    }
}

impl Default for Avx512Lib {
    fn default() -> Avx512Lib {
        Avx512Lib::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::check::check_proc;
    use exo_interp::{ArgVal, Machine};

    #[test]
    fn all_instructions_are_well_formed() {
        let lib = Avx512Lib::new();
        for p in [
            &lib.loadu,
            &lib.storeu,
            &lib.set0,
            &lib.broadcast,
            &lib.fmadd,
            &lib.mask_loadu,
            &lib.mask_storeu,
            &lib.relu,
        ] {
            check_proc(p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.is_instr());
        }
    }

    #[test]
    fn fmadd_semantics() {
        let lib = Avx512Lib::new();
        let mut m = Machine::new();
        let a = m.alloc_extern("a", DataType::F32, &[16], &[2.0; 16]);
        let b = m.alloc_extern("b", DataType::F32, &[16], &[3.0; 16]);
        let c = m.alloc_extern("c", DataType::F32, &[16], &[1.0; 16]);
        m.run(
            &lib.fmadd,
            &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
        )
        .unwrap();
        assert_eq!(m.buffer_values(c).unwrap(), vec![7.0; 16]);
        assert_eq!(m.trace()[0].instr, "mm512_fmadd_ps");
    }

    #[test]
    fn mask_load_respects_bound() {
        let lib = Avx512Lib::new();
        let mut m = Machine::new();
        let src = m.alloc_extern("src", DataType::F32, &[5], &[1., 2., 3., 4., 5.]);
        let dst = m.alloc_extern_uninit("dst", DataType::F32, &[5]);
        m.run(
            &lib.mask_loadu,
            &[ArgVal::Int(5), ArgVal::Tensor(dst), ArgVal::Tensor(src)],
        )
        .unwrap();
        assert_eq!(m.buffer_values(dst).unwrap(), vec![1., 2., 3., 4., 5.]);
        // n > 16 violates the precondition
        let big_src = m.alloc_extern("bs", DataType::F32, &[20], &[0.0; 20]);
        let big_dst = m.alloc_extern_uninit("bd", DataType::F32, &[20]);
        assert!(m
            .run(
                &lib.mask_loadu,
                &[
                    ArgVal::Int(20),
                    ArgVal::Tensor(big_dst),
                    ArgVal::Tensor(big_src)
                ]
            )
            .is_err());
    }

    #[test]
    fn relu_clamps_negative_lanes() {
        let lib = Avx512Lib::new();
        let mut m = Machine::new();
        let mut data = vec![1.0; 16];
        data[3] = -2.0;
        data[9] = -0.5;
        let c = m.alloc_extern("c", DataType::F32, &[16], &data);
        m.run(&lib.relu, &[ArgVal::Tensor(c)]).unwrap();
        let out = m.buffer_values(c).unwrap();
        assert_eq!(out[3], 0.0);
        assert_eq!(out[9], 0.0);
        assert_eq!(out[0], 1.0);
    }
}
