//! The Gemmini hardware library (paper §7.1 and appendix G).
//!
//! Gemmini [Genc et al., DAC'21] is a systolic-array DNN accelerator:
//! a 16×16 grid of MACs, a 256 KiB scratchpad for quantized inputs and
//! weights, a 64 KiB accumulator for partial sums, and an ISA of strided
//! moves (`mvin`/`mvout`), compute (`matmul`), and configuration
//! instructions that flush the pipeline when executed.
//!
//! Everything here is *user-level* library code — custom memories,
//! `@config` structs, and `@instr` procedures — exactly the artifact a
//! performance engineer would write to target Gemmini from exo-rs
//! without touching the compiler.

use std::sync::Arc;

use exo_codegen::{AllocStyle, CodegenCtx, Memory};
use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{ConfigDecl, Expr, Proc};
use exo_core::types::{CtrlType, DataType, MemName};
use exo_core::Sym;

/// The systolic array dimension (16×16 PEs).
pub const DIM: i64 = 16;
/// Scratchpad capacity in bytes (default Gemmini instantiation).
pub const SPAD_BYTES: usize = 256 * 1024;
/// Accumulator capacity in bytes.
pub const ACC_BYTES: usize = 64 * 1024;

/// The Gemmini target: memories, configuration state, and instructions.
pub struct GemminiLib {
    /// Scratchpad memory name (`@SCRATCHPAD`, non-addressable).
    pub scratchpad: MemName,
    /// Accumulator memory name (`@ACCUM`, non-addressable).
    pub accum: MemName,
    /// `ConfigLd` struct and its `src_stride` field.
    pub config_ld: (Sym, Sym),
    /// `ConfigSt` struct and its `dst_stride` field.
    pub config_st: (Sym, Sym),
    /// `ConfigLd2` struct and field (second load mover, B operands).
    pub config_ld2: (Sym, Sym),
    /// `ConfigLdAcc` struct and field (accumulator loads).
    pub config_ld_acc: (Sym, Sym),
    /// `config_ld(stride)` instruction (flushes the load pipe).
    pub config_ld_instr: Arc<Proc>,
    /// `config_ld2(stride)` instruction.
    pub config_ld2_instr: Arc<Proc>,
    /// `config_ld_acc(stride)` instruction.
    pub config_ld_acc_instr: Arc<Proc>,
    /// `config_st(stride)` instruction (flushes the store pipe).
    pub config_st_instr: Arc<Proc>,
    /// `mvin(n, m, src@DRAM, dst@SCRATCHPAD)` — strided load, i8.
    pub mvin: Arc<Proc>,
    /// `mvin2` — second mover (B operands), own stride config.
    pub mvin2: Arc<Proc>,
    /// `mvin_acc(n, m, src@DRAM, dst@ACCUM)` — load partial sums, i32.
    pub mvin_acc: Arc<Proc>,
    /// `mvout(n, m, src@ACCUM, dst@DRAM)` — store + saturate to i8.
    pub mvout: Arc<Proc>,
    /// `mvout_relu(n, m, src@ACCUM, dst@DRAM)` — store with fused ReLU.
    pub mvout_relu: Arc<Proc>,
    /// `mvout_acc` — full-precision (i32) store.
    pub mvout_acc: Arc<Proc>,
    /// `mvout_acc_relu` — full-precision store with fused ReLU.
    pub mvout_acc_relu: Arc<Proc>,
    /// `zero_acc(n, m, dst@ACCUM)` — clear an accumulator tile.
    pub zero_acc: Arc<Proc>,
    /// `matmul(n, m, k, a@SCRATCHPAD, b@SCRATCHPAD, c@ACCUM)` — one
    /// systolic-array pass, accumulating.
    pub matmul: Arc<Proc>,
    /// Configuration declarations for code generation.
    pub configs: Vec<ConfigDecl>,
}

impl GemminiLib {
    /// Builds the library (fresh symbols each call; build once and
    /// share).
    pub fn new() -> GemminiLib {
        let scratchpad = MemName(Sym::new("SCRATCHPAD"));
        let accum = MemName(Sym::new("ACCUM"));

        let cfg_ld = ConfigDecl::new("ConfigLd", vec![("src_stride", CtrlType::Stride)]);
        let cfg_ld2 = ConfigDecl::new("ConfigLd2", vec![("src_stride", CtrlType::Stride)]);
        let cfg_ld_acc = ConfigDecl::new("ConfigLdAcc", vec![("src_stride", CtrlType::Stride)]);
        let cfg_st = ConfigDecl::new("ConfigSt", vec![("dst_stride", CtrlType::Stride)]);
        let config_ld = (cfg_ld.name, cfg_ld.fields[0].name);
        let config_ld2 = (cfg_ld2.name, cfg_ld2.fields[0].name);
        let config_ld_acc = (cfg_ld_acc.name, cfg_ld_acc.fields[0].name);
        let config_st = (cfg_st.name, cfg_st.fields[0].name);

        let config_ld_instr = {
            let mut b = ProcBuilder::new("gemmini_config_ld");
            let s = b.ctrl("s", CtrlType::Stride);
            b.instr("gemmini_extended3_config_ld({s} * sizeof(int8_t), 1.0f, false, 0);");
            b.write_config(config_ld.0, config_ld.1, Expr::var(s));
            b.finish()
        };
        let config_ld2_instr = {
            let mut b = ProcBuilder::new("gemmini_config_ld2");
            let s = b.ctrl("s", CtrlType::Stride);
            b.instr("gemmini_extended3_config_ld({s} * sizeof(int8_t), 1.0f, false, 1);");
            b.write_config(config_ld2.0, config_ld2.1, Expr::var(s));
            b.finish()
        };
        let config_ld_acc_instr = {
            let mut b = ProcBuilder::new("gemmini_config_ld_acc");
            let s = b.ctrl("s", CtrlType::Stride);
            b.instr("gemmini_extended3_config_ld({s} * sizeof(int32_t), 1.0f, false, 2);");
            b.write_config(config_ld_acc.0, config_ld_acc.1, Expr::var(s));
            b.finish()
        };
        let config_st_instr = {
            let mut b = ProcBuilder::new("gemmini_config_st");
            let s = b.ctrl("s", CtrlType::Stride);
            b.instr("gemmini_extended_config_st({s} * sizeof(int8_t), 0, 1.0f);");
            b.write_config(config_st.0, config_st.1, Expr::var(s));
            b.finish()
        };

        let mvin = {
            let mut b = ProcBuilder::new("gemmini_mvin");
            let n = b.size("n");
            let m = b.size("m");
            let src = b.window_arg(
                "src",
                DataType::I8,
                vec![Expr::var(n), Expr::var(m)],
                MemName::dram(),
            );
            let dst = b.window_arg(
                "dst",
                DataType::I8,
                vec![Expr::var(n), Expr::var(m)],
                scratchpad,
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(
                Expr::ReadConfig {
                    config: config_ld.0,
                    field: config_ld.1,
                }
                .eq(Expr::Stride { buf: src, dim: 0 }),
            );
            b.instr("gemmini_extended_mvin({src}.data, (uint64_t) {dst}.data, {m}, {n});");
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            b.assign(
                dst,
                vec![Expr::var(i), Expr::var(j)],
                read(src, vec![Expr::var(i), Expr::var(j)]),
            );
            b.end_for().end_for();
            b.finish()
        };

        let mvin2 = {
            let mut b = ProcBuilder::new("gemmini_mvin2");
            let n = b.size("n");
            let m = b.size("m");
            let src = b.window_arg(
                "src",
                DataType::I8,
                vec![Expr::var(n), Expr::var(m)],
                MemName::dram(),
            );
            let dst = b.window_arg(
                "dst",
                DataType::I8,
                vec![Expr::var(n), Expr::var(m)],
                scratchpad,
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(
                Expr::ReadConfig {
                    config: config_ld2.0,
                    field: config_ld2.1,
                }
                .eq(Expr::Stride { buf: src, dim: 0 }),
            );
            b.instr("gemmini_extended_mvin2({src}.data, (uint64_t) {dst}.data, {m}, {n});");
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            b.assign(
                dst,
                vec![Expr::var(i), Expr::var(j)],
                read(src, vec![Expr::var(i), Expr::var(j)]),
            );
            b.end_for().end_for();
            b.finish()
        };

        let mvin_acc = {
            let mut b = ProcBuilder::new("gemmini_mvin_acc");
            let n = b.size("n");
            let m = b.size("m");
            let src = b.window_arg(
                "src",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                MemName::dram(),
            );
            let dst = b.window_arg(
                "dst",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                accum,
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(
                Expr::ReadConfig {
                    config: config_ld_acc.0,
                    field: config_ld_acc.1,
                }
                .eq(Expr::Stride { buf: src, dim: 0 }),
            );
            b.instr(
                "gemmini_extended_mvin3({src}.data, (uint64_t) {dst}.data | ACC_BASE, {m}, {n});",
            );
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            b.assign(
                dst,
                vec![Expr::var(i), Expr::var(j)],
                read(src, vec![Expr::var(i), Expr::var(j)]),
            );
            b.end_for().end_for();
            b.finish()
        };

        let mk_mvout = |name: &str, relu: bool| {
            let mut b = ProcBuilder::new(name);
            let n = b.size("n");
            let m = b.size("m");
            let src = b.window_arg(
                "src",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                accum,
            );
            let dst = b.window_arg(
                "dst",
                DataType::I8,
                vec![Expr::var(n), Expr::var(m)],
                MemName::dram(),
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(
                Expr::ReadConfig {
                    config: config_st.0,
                    field: config_st.1,
                }
                .eq(Expr::Stride { buf: dst, dim: 0 }),
            );
            b.instr(if relu {
                "gemmini_extended_mvout_relu({dst}.data, (uint64_t) {src}.data, {m}, {n});"
            } else {
                "gemmini_extended_mvout({dst}.data, (uint64_t) {src}.data, {m}, {n});"
            });
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            let v = read(src, vec![Expr::var(i), Expr::var(j)]);
            let v = if relu {
                Expr::BuiltIn {
                    func: Sym::new("relu"),
                    args: vec![v],
                }
            } else {
                v
            };
            b.assign(dst, vec![Expr::var(i), Expr::var(j)], v);
            b.end_for().end_for();
            b.finish()
        };
        let mvout = mk_mvout("gemmini_mvout", false);
        let mvout_relu = mk_mvout("gemmini_mvout_relu", true);

        let mk_mvout_acc = |name: &str, relu: bool| {
            let mut b = ProcBuilder::new(name);
            let n = b.size("n");
            let m = b.size("m");
            let src = b.window_arg(
                "src",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                accum,
            );
            let dst = b.window_arg(
                "dst",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                MemName::dram(),
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(
                Expr::ReadConfig {
                    config: config_st.0,
                    field: config_st.1,
                }
                .eq(Expr::Stride { buf: dst, dim: 0 }),
            );
            b.instr(if relu {
                "gemmini_extended_mvout_acc_relu({dst}.data, (uint64_t) {src}.data, {m}, {n});"
            } else {
                "gemmini_extended_mvout_acc({dst}.data, (uint64_t) {src}.data, {m}, {n});"
            });
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            let v = read(src, vec![Expr::var(i), Expr::var(j)]);
            let v = if relu {
                Expr::BuiltIn {
                    func: Sym::new("relu"),
                    args: vec![v],
                }
            } else {
                v
            };
            b.assign(dst, vec![Expr::var(i), Expr::var(j)], v);
            b.end_for().end_for();
            b.finish()
        };
        let mvout_acc = mk_mvout_acc("gemmini_mvout_acc", false);
        let mvout_acc_relu = mk_mvout_acc("gemmini_mvout_acc_relu", true);

        let zero_acc = {
            let mut b = ProcBuilder::new("gemmini_zero_acc");
            let n = b.size("n");
            let m = b.size("m");
            let dst = b.window_arg(
                "dst",
                DataType::I32,
                vec![Expr::var(n), Expr::var(m)],
                accum,
            );
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.instr("gemmini_zero((uint64_t) {dst}.data, {m}, {n});");
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            b.assign(dst, vec![Expr::var(i), Expr::var(j)], Expr::int(0));
            b.end_for().end_for();
            b.finish()
        };

        let matmul = {
            let mut b = ProcBuilder::new("gemmini_matmul");
            let n = b.size("n");
            let m = b.size("m");
            let k = b.size("k");
            let a = b.window_arg(
                "a",
                DataType::I8,
                vec![Expr::var(n), Expr::var(k)],
                scratchpad,
            );
            let bb = b.window_arg(
                "b",
                DataType::I8,
                vec![Expr::var(k), Expr::var(m)],
                scratchpad,
            );
            let c = b.window_arg("c", DataType::I32, vec![Expr::var(n), Expr::var(m)], accum);
            b.assert_pred(Expr::var(n).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(m).le(Expr::int(DIM)));
            b.assert_pred(Expr::var(k).le(Expr::int(DIM)));
            b.instr(
                "gemmini_extended_preload((uint64_t) {b}.data, (uint64_t) {c}.data | ACC_BASE, \
                 {m}, {k}, {m}, {n});\n\
                 gemmini_extended_compute_preloaded((uint64_t) {a}.data, ~((uint64_t)0), \
                 {k}, {n}, 16, 16);",
            );
            let i = b.begin_for("i", Expr::int(0), Expr::var(n));
            let j = b.begin_for("j", Expr::int(0), Expr::var(m));
            let kk = b.begin_for("kk", Expr::int(0), Expr::var(k));
            b.reduce(
                c,
                vec![Expr::var(i), Expr::var(j)],
                read(a, vec![Expr::var(i), Expr::var(kk)])
                    .mul(read(bb, vec![Expr::var(kk), Expr::var(j)])),
            );
            b.end_for().end_for().end_for();
            b.finish()
        };

        GemminiLib {
            scratchpad,
            accum,
            config_ld,
            config_ld2,
            config_ld_acc,
            config_st,
            config_ld_instr,
            config_ld2_instr,
            config_ld_acc_instr,
            config_st_instr,
            mvin,
            mvin2,
            mvin_acc,
            mvout,
            mvout_relu,
            mvout_acc,
            mvout_acc_relu,
            zero_acc,
            matmul,
            configs: vec![cfg_ld, cfg_ld2, cfg_ld_acc, cfg_st],
        }
    }

    /// A code-generation context with Gemmini's memories and configs.
    pub fn codegen_ctx(&self) -> CodegenCtx {
        let mut ctx = CodegenCtx::new();
        ctx.mems.register(Memory {
            name: self.scratchpad,
            alloc: AllocStyle::Custom {
                alloc: "{prim_type} *{name} = ({prim_type}*) gemmini_spad_alloc(({size}) * sizeof({prim_type}));".into(),
                free: "gemmini_spad_free({name});".into(),
            },
            addressable: false,
            c_global: Some("#include \"gemmini.h\"".into()),
        });
        ctx.mems.register(Memory {
            name: self.accum,
            alloc: AllocStyle::Custom {
                alloc: "{prim_type} *{name} = ({prim_type}*) gemmini_acc_alloc(({size}) * sizeof({prim_type}));".into(),
                free: "gemmini_acc_free({name});".into(),
            },
            addressable: false,
            c_global: None,
        });
        ctx.configs = self.configs.clone();
        ctx
    }
}

impl Default for GemminiLib {
    fn default() -> GemminiLib {
        GemminiLib::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::check::check_proc;

    #[test]
    fn all_instructions_are_well_formed() {
        let lib = GemminiLib::new();
        for p in [
            &lib.config_ld_instr,
            &lib.config_st_instr,
            &lib.mvin,
            &lib.mvin_acc,
            &lib.mvout,
            &lib.mvout_relu,
            &lib.zero_acc,
            &lib.matmul,
        ] {
            check_proc(p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.is_instr());
        }
    }

    #[test]
    fn instruction_semantics_execute() {
        // mvin through the interpreter: the semantic body runs and the
        // trace records the call
        use exo_interp::{ArgVal, Machine};
        let lib = GemminiLib::new();
        let mut m = Machine::new();
        let src = m.alloc_extern("src", DataType::I8, &[4, 8], &vec![1.0; 32]);
        let dst = m.alloc_extern_uninit("dst", DataType::I8, &[4, 8]);
        // the mvin asserts the stride config; set it first via the config
        // instruction
        m.run(&lib.config_ld_instr, &[ArgVal::Int(8)]).unwrap();
        m.run(
            &lib.mvin,
            &[
                ArgVal::Int(4),
                ArgVal::Int(8),
                ArgVal::Tensor(src),
                ArgVal::Tensor(dst),
            ],
        )
        .unwrap();
        assert_eq!(m.buffer_values(dst).unwrap(), vec![1.0; 32]);
        assert_eq!(m.trace().len(), 2);
        assert_eq!(m.trace()[0].instr, "gemmini_config_ld");
        assert_eq!(m.trace()[1].instr, "gemmini_mvin");
    }

    #[test]
    fn matmul_semantics_accumulate() {
        use exo_interp::{ArgVal, Machine};
        let lib = GemminiLib::new();
        let mut m = Machine::new();
        let a = m.alloc_extern("a", DataType::I8, &[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = m.alloc_extern("b", DataType::I8, &[3, 2], &[1., 0., 0., 1., 1., 1.]);
        let c = m.alloc_extern("c", DataType::I32, &[2, 2], &[0.0; 4]);
        m.run(
            &lib.matmul,
            &[
                ArgVal::Int(2),
                ArgVal::Int(2),
                ArgVal::Int(3),
                ArgVal::Tensor(a),
                ArgVal::Tensor(b),
                ArgVal::Tensor(c),
            ],
        )
        .unwrap();
        // A·B = [[1+3, 2+3], [4+6, 5+6]] = [[4,5],[10,11]]
        assert_eq!(m.buffer_values(c).unwrap(), vec![4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn mvin_rejects_wrong_stride_config() {
        use exo_interp::{ArgVal, Machine};
        let lib = GemminiLib::new();
        let mut m = Machine::new();
        let src = m.alloc_extern("src", DataType::I8, &[4, 8], &vec![1.0; 32]);
        let dst = m.alloc_extern_uninit("dst", DataType::I8, &[4, 8]);
        m.run(&lib.config_ld_instr, &[ArgVal::Int(99)]).unwrap();
        let e = m
            .run(
                &lib.mvin,
                &[
                    ArgVal::Int(4),
                    ArgVal::Int(8),
                    ArgVal::Tensor(src),
                    ArgVal::Tensor(dst),
                ],
            )
            .unwrap_err();
        assert!(e.message.contains("assertion failed"), "{e}");
    }
}
