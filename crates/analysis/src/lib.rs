//! # exo-analysis
//!
//! The effect analyses that make exo-rs scheduling *safe* (paper §5–6).
//!
//! Scheduling operators are rewrites; each must preserve program
//! equivalence (possibly modulo configuration state). This crate provides
//! the machinery those checks are built from:
//!
//! * [`effexpr`] — effect expressions (symbolic control values with ⊥)
//!   and their lowering to classical formulas per appendix B;
//! * [`globals`] — canonical names for configuration fields and the
//!   approximating symbolic dataflow `ValG` (§5.3);
//! * [`effects`] — effect extraction `Eff : Stmt → Effect` (§5.5), with
//!   windows resolved to root buffers and call-site splicing;
//! * [`locset`] — location sets with ternary membership and the
//!   definitely/maybe collapses (§5.4);
//! * [`conditions`] — `Commutes`, `Shadows`, and the loop-rewrite
//!   conditions (§5.7–5.8);
//! * [`context`] — one-holed-context quantities `CtrlPred` / `PreValG` /
//!   `PostEff` and the context-extension rule (§6);
//! * [`bounds`] — static bounds checking and call-site assertion
//!   checking, whole-procedure ([`check_bounds`]) or scoped to the
//!   subtree a rewrite dirtied ([`check_bounds_at`]);
//! * [`check`] — the shared checking context: one reusable solver plus a
//!   canonical (alpha-normalized) verdict cache and the per-statement
//!   effect-summary memo.
//!
//! All conditions bottom out in Presburger validity queries discharged
//! through [`SharedCheckCtx`]; an `Unknown` answer always fails safe.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod check;
pub mod conditions;
pub mod context;
pub mod effects;
pub mod effexpr;
pub mod globals;
pub mod locset;

pub use bounds::{check_bounds, check_bounds_at, CheckError};
pub use check::{CheckCtx, CheckStats, EffectMemo, SharedCheckCtx};
pub use effects::{effect_of_block, effect_of_proc, Effect, ExtractCtx};
pub use effexpr::{EffExpr, LowerCtx};
pub use globals::{GlobalEnv, GlobalReg};
pub use locset::{LocSet, SetBundle};
