//! Safety conditions for program rewrites (paper §5.7–5.8).
//!
//! Each condition is built as a classical [`Formula`] over the free
//! control variables of the procedure; the scheduling layer conjoins the
//! site's assumptions (procedure preconditions, enclosing loop bounds and
//! guards) and asks the solver for validity. An `Unknown` answer fails
//! safe: the rewrite is rejected.

use std::collections::HashMap;

use exo_core::Sym;
use exo_smt::formula::Formula;

use crate::effects::Effect;
use crate::effexpr::{EffExpr, LowerCtx};
use crate::locset::{member, sets_of, LocSet, SetBundle, Target};

/// Builds `∀ shared targets. ¬(M(t ∈ a) ∧ M(t ∈ b))` — the sets are
/// definitely disjoint.
pub fn disjoint(a: &LocSet, b: &LocSet, ctx: &mut LowerCtx) -> Formula {
    let mut bufs_a = HashMap::new();
    let mut globals_a = Vec::new();
    a.collect_targets(&mut bufs_a, &mut globals_a);
    let mut bufs_b = HashMap::new();
    let mut globals_b = Vec::new();
    b.collect_targets(&mut bufs_b, &mut globals_b);

    let mut parts = Vec::new();
    for (&buf, &rank_a) in &bufs_a {
        let Some(&rank_b) = bufs_b.get(&buf) else {
            continue;
        };
        let rank = rank_a.max(rank_b);
        let coords: Vec<Sym> = (0..rank).map(|d| Sym::new(format!("pt{d}"))).collect();
        let tgt = Target::Buf {
            buf,
            coords: coords.clone(),
        };
        let ma = member(a, &tgt, ctx);
        let mb = member(b, &tgt, ctx);
        let mut f = Formula::and(vec![ma.maybe(), mb.maybe()]).negate();
        for c in coords.into_iter().rev() {
            f = f.forall(c);
        }
        parts.push(f);
    }
    for g in &globals_a {
        if globals_b.contains(g) {
            let tgt = Target::Global(g.0, g.1);
            let ma = member(a, &tgt, ctx);
            let mb = member(b, &tgt, ctx);
            parts.push(Formula::and(vec![ma.maybe(), mb.maybe()]).negate());
        }
    }
    Formula::and(parts)
}

/// `Commutes a₁ a₂` (Def. 5.6): non-interference of effects, with the
/// exception that two reductions into the same location commute.
pub fn commutes(a1: &Effect, a2: &Effect, ctx: &mut LowerCtx) -> Formula {
    let s1 = sets_of(a1);
    let s2 = sets_of(a2);
    commutes_sets(&s1, &s2, ctx)
}

/// `Commutes` on precomputed set bundles.
pub fn commutes_sets(s1: &SetBundle, s2: &SetBundle, ctx: &mut LowerCtx) -> Formula {
    Formula::and(vec![
        disjoint(&s1.wr(), &s2.all(), ctx),
        disjoint(&s2.wr(), &s1.all(), ctx),
        disjoint(&s1.rplus(), &s2.rd(), ctx),
        disjoint(&s2.rplus(), &s1.rd(), ctx),
    ])
}

/// `Shadows a₁ a₂` (Def. 5.7): every location possibly modified by `a₁`
/// is definitely overwritten — and not read — by `a₂`, so `a₁;a₂ ≡ a₂`.
pub fn shadows(a1: &Effect, a2: &Effect, ctx: &mut LowerCtx) -> Formula {
    let s1 = sets_of(a1);
    let s2 = sets_of(a2);
    let m1 = s1.modified();
    let rd2 = s2.rd();
    let wr2 = s2.wr();

    let mut bufs = HashMap::new();
    let mut globals = Vec::new();
    m1.collect_targets(&mut bufs, &mut globals);

    let mut parts = Vec::new();
    for (&buf, &rank) in &bufs {
        let coords: Vec<Sym> = (0..rank).map(|d| Sym::new(format!("sh{d}"))).collect();
        let tgt = Target::Buf {
            buf,
            coords: coords.clone(),
        };
        let m_mod = member(&m1, &tgt, ctx);
        let m_rd = member(&rd2, &tgt, ctx);
        let m_wr = member(&wr2, &tgt, ctx);
        let mut f = m_mod
            .maybe()
            .implies(Formula::and(vec![m_rd.maybe().negate(), m_wr.definitely()]));
        for c in coords.into_iter().rev() {
            f = f.forall(c);
        }
        parts.push(f);
    }
    for g in &globals {
        let tgt = Target::Global(g.0, g.1);
        let m_mod = member(&m1, &tgt, ctx);
        let m_rd = member(&rd2, &tgt, ctx);
        let m_wr = member(&wr2, &tgt, ctx);
        parts.push(
            m_mod
                .maybe()
                .implies(Formula::and(vec![m_rd.maybe().negate(), m_wr.definitely()])),
        );
    }
    Formula::and(parts)
}

/// Ternary in-bounds predicate `Bd(x) = lo ≤ x < hi`.
pub fn bd(var: Sym, lo: &EffExpr, hi: &EffExpr) -> EffExpr {
    lo.clone()
        .le(EffExpr::Var(var))
        .and(EffExpr::Var(var).lt(hi.clone()))
}

/// Condition for reordering two perfectly nested loops
/// `for x do for y do s ~> for y do for x do s` (§5.8): the loop bounds
/// must commute with the body, and any iteration pair that changes
/// relative order must commute.
pub fn loop_reorder(
    x: Sym,
    x_bounds: (&EffExpr, &EffExpr),
    y: Sym,
    y_bounds: (&EffExpr, &EffExpr),
    bounds_effect: &Effect,
    body: &Effect,
    ctx: &mut LowerCtx,
) -> Formula {
    // condition 1: ∀x,y. M Bd(x,y) ⇒ Commutes(aₓ;a_y, a)
    let bd_xy = bd(x, x_bounds.0, x_bounds.1).and(bd(y, y_bounds.0, y_bounds.1));
    let m_bd = ctx.lower_bool(&bd_xy).maybe();
    let c1 = m_bd.implies(commutes(bounds_effect, body, ctx));

    // condition 2: reordered iteration pairs commute
    let x2 = x.copy();
    let y2 = y.copy();
    let mut map = HashMap::new();
    map.insert(x, EffExpr::Var(x2));
    map.insert(y, EffExpr::Var(y2));
    let body2 = body.subst(&map);
    let bd2 = bd(x2, x_bounds.0, x_bounds.1).and(bd(y2, y_bounds.0, y_bounds.1));
    let order = EffExpr::Var(x)
        .lt(EffExpr::Var(x2))
        .and(EffExpr::Var(y2).lt(EffExpr::Var(y)));
    let hyp = ctx.lower_bool(&bd_xy.and(bd2).and(order)).maybe();
    let c2 = hyp.implies(commutes(body, &body2, ctx));

    Formula::and(vec![c1, c2])
}

/// Condition for loop fission/fusion
/// `for x do s₁;s₂ ⇌ (for x do s₁); (for x do s₂)` (§5.8).
pub fn loop_fission(
    x: Sym,
    bounds: (&EffExpr, &EffExpr),
    bounds_effect: &Effect,
    s1: &Effect,
    s2: &Effect,
    ctx: &mut LowerCtx,
) -> Formula {
    // condition 1: bounds commute with s₁ while in bounds
    let m_bd = ctx.lower_bool(&bd(x, bounds.0, bounds.1)).maybe();
    let c1 = m_bd.implies(commutes(bounds_effect, s1, ctx));

    // condition 2: s₁(x) commutes with s₂(x') for earlier iterations x' < x
    let x2 = x.copy();
    let mut map = HashMap::new();
    map.insert(x, EffExpr::Var(x2));
    let s2_prev = s2.subst(&map);
    let hyp_e = bd(x, bounds.0, bounds.1)
        .and(bd(x2, bounds.0, bounds.1))
        .and(EffExpr::Var(x2).lt(EffExpr::Var(x)));
    let hyp = ctx.lower_bool(&hyp_e).maybe();
    let c2 = hyp.implies(commutes(s1, &s2_prev, ctx));

    Formula::and(vec![c1, c2])
}

/// Condition for loop removal `for x do s ~> s` (§5.8): the loop must
/// definitely run at least once and the body must be idempotent
/// (`Shadows(a, a)`); the caller separately checks that `x` is not free
/// in `s`.
pub fn loop_remove(
    x: Sym,
    bounds: (&EffExpr, &EffExpr),
    body: &Effect,
    ctx: &mut LowerCtx,
) -> Formula {
    let d_bd = ctx
        .lower_bool(&bd(x, bounds.0, bounds.1))
        .definitely()
        .exists(x);
    Formula::and(vec![d_bd, shadows(body, body, ctx)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::SharedCheckCtx;
    use exo_smt::solver::Answer;

    fn check(ctx: &LowerCtx, goal: &Formula) -> Answer {
        let s = SharedCheckCtx::process();
        s.check_valid(&ctx.assumptions().implies(goal.clone()))
    }

    fn idx(i: i64) -> Vec<EffExpr> {
        vec![EffExpr::Int(i)]
    }

    #[test]
    fn disjoint_writes_commute() {
        let a = Sym::new("A");
        let e1 = Effect::Write(a, idx(0));
        let e2 = Effect::Write(a, idx(1));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn overlapping_write_read_do_not_commute() {
        let a = Sym::new("A");
        let e1 = Effect::Write(a, idx(0));
        let e2 = Effect::Read(a, idx(0));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::No);
    }

    #[test]
    fn reductions_commute_with_each_other() {
        let a = Sym::new("A");
        let e1 = Effect::Reduce(a, idx(0));
        let e2 = Effect::Reduce(a, idx(0));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn reduction_does_not_commute_with_read() {
        let a = Sym::new("A");
        let e1 = Effect::Reduce(a, idx(0));
        let e2 = Effect::Read(a, idx(0));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::No);
    }

    #[test]
    fn different_buffers_commute() {
        let a = Sym::new("A");
        let b = Sym::new("B");
        let e1 = Effect::Write(a, idx(0));
        let e2 = Effect::Write(b, idx(0));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn symbolic_tile_disjointness() {
        // writes at 16·io + ii vs reads at 16·jo + ji with (io,ii) ≠ (jo,ji)
        // bounded — commute only when tiles differ; as free variables they
        // may alias, so the unconditional query must fail
        let a = Sym::new("A");
        let io = Sym::new("io");
        let jo = Sym::new("jo");
        let tile_idx = |o: Sym| {
            vec![EffExpr::bin(
                exo_core::BinOp::Mul,
                EffExpr::Int(16),
                EffExpr::Var(o),
            )]
        };
        let e1 = Effect::Write(a, tile_idx(io));
        let e2 = Effect::Read(a, tile_idx(jo));
        let mut ctx = LowerCtx::new();
        let f = commutes(&e1, &e2, &mut ctx);
        // without constraints io may equal jo → refutable
        assert_eq!(check(&ctx, &f), Answer::No);
        // under io ≠ jo the condition holds
        let hyp = Formula::eq(
            exo_smt::linear::LinExpr::var(io),
            exo_smt::linear::LinExpr::var(jo),
        )
        .negate();
        let s = SharedCheckCtx::process();
        let goal = Formula::and(vec![hyp, ctx.assumptions()]).implies(f);
        assert_eq!(s.check_valid(&goal), Answer::Yes);
    }

    #[test]
    fn shadows_full_overwrite() {
        // s1 writes A[i] for i in 0..4; s2 writes A[i] for i in 0..4 too
        let a = Sym::new("A");
        let i = Sym::new("i");
        let mk = || Effect::Loop {
            var: i,
            lo: EffExpr::Int(0),
            hi: EffExpr::Int(4),
            body: Box::new(Effect::Write(a, vec![EffExpr::Var(i)])),
        };
        let mut ctx = LowerCtx::new();
        let f = shadows(&mk(), &mk(), &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn shadows_partial_overwrite_fails() {
        // s1 writes A[0..4]; s2 writes only A[0..2]
        let a = Sym::new("A");
        let i = Sym::new("i");
        let mk = |hi: i64| Effect::Loop {
            var: i,
            lo: EffExpr::Int(0),
            hi: EffExpr::Int(hi),
            body: Box::new(Effect::Write(a, vec![EffExpr::Var(i)])),
        };
        let mut ctx = LowerCtx::new();
        let f = shadows(&mk(4), &mk(2), &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::No);
    }

    #[test]
    fn shadows_rejects_read_of_modified() {
        // s2 reads what s1 wrote before overwriting
        let a = Sym::new("A");
        let e1 = Effect::Write(a, idx(0));
        let e2 = Effect::seq(Effect::Read(a, idx(0)), Effect::Write(a, idx(0)));
        let mut ctx = LowerCtx::new();
        let f = shadows(&e1, &e2, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::No);
    }

    #[test]
    fn config_write_shadows_config_write() {
        let c = Sym::new("Cfg");
        let fld = Sym::new("s");
        let e = Effect::GlobalWrite(c, fld);
        let mut ctx = LowerCtx::new();
        let f = shadows(&e, &e, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn loop_remove_requires_nonempty_and_idempotent() {
        let a = Sym::new("A");
        let i = Sym::new("i");
        // body writes A[0] (no dependence on i): idempotent
        let body = Effect::Write(a, idx(0));
        let mut ctx = LowerCtx::new();
        let f = loop_remove(i, (&EffExpr::Int(0), &EffExpr::Int(4)), &body, &mut ctx);
        assert_eq!(check(&ctx, &f), Answer::Yes);
        // possibly-empty loop: 0..n for free n — must fail
        let n = Sym::new("n");
        let mut ctx2 = LowerCtx::new();
        let f2 = loop_remove(i, (&EffExpr::Int(0), &EffExpr::Var(n)), &body, &mut ctx2);
        assert_eq!(check(&ctx2, &f2), Answer::No);
        // reduce body: not idempotent
        let body3 = Effect::Reduce(a, idx(0));
        let mut ctx3 = LowerCtx::new();
        let f3 = loop_remove(i, (&EffExpr::Int(0), &EffExpr::Int(4)), &body3, &mut ctx3);
        assert_eq!(check(&ctx3, &f3), Answer::No);
    }

    #[test]
    fn loop_reorder_independent_iterations() {
        // for i: for j: A[i, j] = … — iterations touch disjoint points
        let a = Sym::new("A");
        let i = Sym::new("i");
        let j = Sym::new("j");
        let body = Effect::Write(a, vec![EffExpr::Var(i), EffExpr::Var(j)]);
        let mut ctx = LowerCtx::new();
        let f = loop_reorder(
            i,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            j,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            &Effect::Empty,
            &body,
            &mut ctx,
        );
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn loop_reorder_carried_dependence_fails() {
        // for i: for j: A[j] = A[j-ish] pattern — body writes A[j] and
        // reads A[i]: reordering pairs (i<i', j'<j) write/read alias
        let a = Sym::new("A");
        let i = Sym::new("i");
        let j = Sym::new("j");
        let body = Effect::seq(
            Effect::Read(a, vec![EffExpr::Var(i)]),
            Effect::Write(a, vec![EffExpr::Var(j)]),
        );
        let mut ctx = LowerCtx::new();
        let f = loop_reorder(
            i,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            j,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            &Effect::Empty,
            &body,
            &mut ctx,
        );
        assert_eq!(check(&ctx, &f), Answer::No);
    }

    #[test]
    fn loop_fission_independent_statements() {
        // for i: { A[i] = …; B[i] = … } fissions
        let a = Sym::new("A");
        let b = Sym::new("B");
        let i = Sym::new("i");
        let s1 = Effect::Write(a, vec![EffExpr::Var(i)]);
        let s2 = Effect::Write(b, vec![EffExpr::Var(i)]);
        let mut ctx = LowerCtx::new();
        let f = loop_fission(
            i,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            &Effect::Empty,
            &s1,
            &s2,
            &mut ctx,
        );
        assert_eq!(check(&ctx, &f), Answer::Yes);
    }

    #[test]
    fn loop_fission_forward_dependence_ok_backward_fails() {
        let a = Sym::new("A");
        let i = Sym::new("i");
        // s1: A[i] = …; s2: reads A[i] (same iteration) — fission is fine
        let s1 = Effect::Write(a, vec![EffExpr::Var(i)]);
        let s2 = Effect::Read(a, vec![EffExpr::Var(i)]);
        let mut ctx = LowerCtx::new();
        let f = loop_fission(
            i,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            &Effect::Empty,
            &s1,
            &s2,
            &mut ctx,
        );
        assert_eq!(check(&ctx, &f), Answer::Yes);

        // s2 reads A[i+1] (next iteration's write) — fission unsafe
        let s2b = Effect::Read(a, vec![EffExpr::Var(i).add(EffExpr::Int(1))]);
        let mut ctx2 = LowerCtx::new();
        let f2 = loop_fission(
            i,
            (&EffExpr::Int(0), &EffExpr::Int(8)),
            &Effect::Empty,
            &s1,
            &s2b,
            &mut ctx2,
        );
        assert_eq!(check(&ctx2, &f2), Answer::No);
    }
}
