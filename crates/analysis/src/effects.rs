//! Effects (paper Def. 5.4) and their extraction from statements.
//!
//! An effect characterizes which store-transforming functions a statement
//! could denote. Extraction resolves windows down to their root buffers
//! (so that aliasing is visible) and splices callee effects into call
//! sites with actuals substituted for formals.

use std::collections::HashMap;
use std::sync::Arc;

use exo_core::ir::{ArgType, Expr, Proc, Stmt, WAccess};
use exo_core::visit;
use exo_core::Sym;

use crate::effexpr::EffExpr;
use crate::globals::{lift_in_env, GlobalEnv, GlobalReg};

/// Effects, as in paper Def. 5.4 (with loop bounds attached to `Loop` so
/// location sets can be bounded).
#[derive(Clone, PartialEq, Debug)]
pub enum Effect {
    /// Sequential composition.
    Seq(Vec<Effect>),
    /// No effect.
    Empty,
    /// Effect conditioned on a (ternary) guard.
    Guard(EffExpr, Box<Effect>),
    /// Effect of a loop body, once per iteration of `var ∈ [lo, hi)`.
    Loop {
        /// Iteration variable.
        var: Sym,
        /// Lower bound.
        lo: EffExpr,
        /// Upper bound.
        hi: EffExpr,
        /// Per-iteration effect.
        body: Box<Effect>,
    },
    /// Read of a global configuration field.
    GlobalRead(Sym, Sym),
    /// Write of a global configuration field.
    GlobalWrite(Sym, Sym),
    /// Read of one buffer location.
    Read(Sym, Vec<EffExpr>),
    /// Write of one buffer location.
    Write(Sym, Vec<EffExpr>),
    /// Reduction into one buffer location.
    Reduce(Sym, Vec<EffExpr>),
    /// Allocation of a buffer (scopes over the rest of the sequence).
    Alloc(Sym),
}

impl Effect {
    /// Sequences two effects, flattening.
    pub fn seq(a: Effect, b: Effect) -> Effect {
        match (a, b) {
            (Effect::Empty, x) | (x, Effect::Empty) => x,
            (Effect::Seq(mut xs), Effect::Seq(ys)) => {
                xs.extend(ys);
                Effect::Seq(xs)
            }
            (Effect::Seq(mut xs), y) => {
                xs.push(y);
                Effect::Seq(xs)
            }
            (x, Effect::Seq(mut ys)) => {
                ys.insert(0, x);
                Effect::Seq(ys)
            }
            (x, y) => Effect::Seq(vec![x, y]),
        }
    }

    /// Sequences many effects.
    pub fn seq_all(parts: Vec<Effect>) -> Effect {
        parts.into_iter().fold(Effect::Empty, Effect::seq)
    }

    /// Substitutes control variables inside all index/guard expressions.
    pub fn subst(&self, map: &HashMap<Sym, EffExpr>) -> Effect {
        match self {
            Effect::Seq(xs) => Effect::Seq(xs.iter().map(|e| e.subst(map)).collect()),
            Effect::Empty => Effect::Empty,
            Effect::Guard(c, e) => Effect::Guard(c.subst(map), Box::new(e.subst(map))),
            Effect::Loop { var, lo, hi, body } => {
                // iteration variables are binders: shadow them
                let mut inner = map.clone();
                inner.remove(var);
                Effect::Loop {
                    var: *var,
                    lo: lo.subst(map),
                    hi: hi.subst(map),
                    body: Box::new(body.subst(&inner)),
                }
            }
            Effect::GlobalRead(c, f) => Effect::GlobalRead(*c, *f),
            Effect::GlobalWrite(c, f) => Effect::GlobalWrite(*c, *f),
            Effect::Read(b, idx) => Effect::Read(*b, idx.iter().map(|e| e.subst(map)).collect()),
            Effect::Write(b, idx) => Effect::Write(*b, idx.iter().map(|e| e.subst(map)).collect()),
            Effect::Reduce(b, idx) => {
                Effect::Reduce(*b, idx.iter().map(|e| e.subst(map)).collect())
            }
            Effect::Alloc(b) => Effect::Alloc(*b),
        }
    }
}

/// One axis of a symbolic view: how a buffer dimension is addressed.
#[derive(Clone, PartialEq, Debug)]
pub enum AxisMap {
    /// The dimension is fixed at a symbolic coordinate.
    Fixed(EffExpr),
    /// The dimension is walked by window axis `axis` with an offset.
    Axis(usize, EffExpr),
}

/// A symbolic view: a root buffer plus an affine coordinate translation —
/// the analysis-time analogue of the interpreter's window values.
#[derive(Clone, PartialEq, Debug)]
pub struct SymView {
    /// Root buffer symbol.
    pub buf: Sym,
    /// One entry per root-buffer dimension.
    pub axes: Vec<AxisMap>,
}

impl SymView {
    /// The identity view over a buffer of the given rank.
    pub fn identity(buf: Sym, rank: usize) -> SymView {
        SymView {
            buf,
            axes: (0..rank)
                .map(|d| AxisMap::Axis(d, EffExpr::Int(0)))
                .collect(),
        }
    }

    /// Number of retained (walked) dimensions.
    pub fn rank(&self) -> usize {
        self.axes
            .iter()
            .filter(|a| matches!(a, AxisMap::Axis(..)))
            .count()
    }

    /// Translates view coordinates into root-buffer coordinates.
    pub fn translate(&self, coords: &[EffExpr]) -> Vec<EffExpr> {
        self.axes
            .iter()
            .map(|a| match a {
                AxisMap::Fixed(e) => e.clone(),
                AxisMap::Axis(k, off) => {
                    let c = coords.get(*k).cloned().unwrap_or(EffExpr::Unknown);
                    off.clone().add(c)
                }
            })
            .collect()
    }

    /// Restricts the view by window coordinates (point accesses fix a
    /// dimension, intervals re-offset it).
    pub fn window(&self, coords: &[WAccess], env: &mut ExtractCtx<'_>) -> SymView {
        let mut next_axis = 0usize;
        let mut new_axes = Vec::with_capacity(self.axes.len());
        // map old axis index -> coordinate
        let mut per_axis: Vec<Option<&WAccess>> = vec![None; self.rank()];
        for (k, c) in coords.iter().enumerate() {
            if k < per_axis.len() {
                per_axis[k] = Some(c);
            }
        }
        for a in &self.axes {
            match a {
                AxisMap::Fixed(e) => new_axes.push(AxisMap::Fixed(e.clone())),
                AxisMap::Axis(k, off) => match per_axis.get(*k).copied().flatten() {
                    Some(WAccess::Point(p)) => {
                        let pe = env.lift_ctrl(p);
                        new_axes.push(AxisMap::Fixed(off.clone().add(pe)));
                    }
                    Some(WAccess::Interval(lo, _hi)) => {
                        let le = env.lift_ctrl(lo);
                        new_axes.push(AxisMap::Axis(next_axis, off.clone().add(le)));
                        next_axis += 1;
                    }
                    None => {
                        new_axes.push(AxisMap::Axis(next_axis, off.clone()));
                        next_axis += 1;
                    }
                },
            }
        }
        SymView {
            buf: self.buf,
            axes: new_axes,
        }
    }
}

/// Context for effect extraction: control substitution, data views, the
/// global-dataflow environment at the point of extraction, and the
/// registry of canonical global names.
pub struct ExtractCtx<'a> {
    /// Control-variable substitution (for call inlining).
    pub ctrl: HashMap<Sym, EffExpr>,
    /// Data views per symbol.
    pub views: HashMap<Sym, SymView>,
    /// Symbolic values of configuration fields at entry.
    pub genv: GlobalEnv,
    /// Canonical global names.
    pub reg: &'a mut GlobalReg,
}

impl<'a> ExtractCtx<'a> {
    /// Creates the extraction context for a procedure (parameters bound
    /// to themselves).
    pub fn for_proc(proc: &Proc, reg: &'a mut GlobalReg) -> ExtractCtx<'a> {
        let mut views = HashMap::new();
        for arg in &proc.args {
            match &arg.ty {
                ArgType::Tensor { shape, .. } => {
                    views.insert(arg.name, SymView::identity(arg.name, shape.len()));
                }
                ArgType::Scalar { .. } => {
                    views.insert(arg.name, SymView::identity(arg.name, 0));
                }
                ArgType::Ctrl(_) => {}
            }
        }
        ExtractCtx {
            ctrl: HashMap::new(),
            views,
            genv: GlobalEnv::identity(),
            reg,
        }
    }

    fn lift_ctrl(&mut self, e: &Expr) -> EffExpr {
        let lifted = lift_in_env(e, &self.genv, self.reg);
        lifted.subst(&self.ctrl)
    }

    fn view_of(&self, buf: Sym) -> SymView {
        self.views
            .get(&buf)
            .cloned()
            .unwrap_or_else(|| SymView::identity(buf, 0))
    }
}

/// Extracts the effect of a block (`Eff : Stmt → Effect`).
pub fn effect_of_block(block: &[Stmt], ctx: &mut ExtractCtx<'_>) -> Effect {
    let mut parts = Vec::new();
    let mut saved: Vec<(Sym, Option<SymView>)> = Vec::new();
    for s in block {
        parts.push(effect_of_stmt(s, ctx, &mut saved));
    }
    for (sym, prev) in saved.into_iter().rev() {
        match prev {
            Some(v) => {
                ctx.views.insert(sym, v);
            }
            None => {
                ctx.views.remove(&sym);
            }
        }
    }
    Effect::seq_all(parts)
}

fn effect_of_stmt(
    s: &Stmt,
    ctx: &mut ExtractCtx<'_>,
    saved: &mut Vec<(Sym, Option<SymView>)>,
) -> Effect {
    match s {
        Stmt::Pass => Effect::Empty,
        Stmt::Assign { buf, idx, rhs } => {
            let view = ctx.view_of(*buf);
            let coords: Vec<EffExpr> = idx.iter().map(|e| ctx.lift_ctrl(e)).collect();
            let rd = effect_of_data_expr(rhs, ctx);
            let idx_rd = effect_of_index_reads(idx, ctx);
            Effect::seq_all(vec![
                rd,
                idx_rd,
                Effect::Write(view.buf, view.translate(&coords)),
            ])
        }
        Stmt::Reduce { buf, idx, rhs } => {
            let view = ctx.view_of(*buf);
            let coords: Vec<EffExpr> = idx.iter().map(|e| ctx.lift_ctrl(e)).collect();
            let rd = effect_of_data_expr(rhs, ctx);
            let idx_rd = effect_of_index_reads(idx, ctx);
            Effect::seq_all(vec![
                rd,
                idx_rd,
                Effect::Reduce(view.buf, view.translate(&coords)),
            ])
        }
        Stmt::WriteConfig { config, field, rhs } => {
            let rd = effect_of_ctrl_expr(rhs, ctx);
            // the dataflow env must advance so later lifted expressions
            // see the new symbolic value
            let v = ctx.lift_ctrl(rhs);
            ctx.genv.set(*config, *field, v);
            Effect::seq(rd, Effect::GlobalWrite(*config, *field))
        }
        Stmt::If { cond, body, orelse } => {
            let c = ctx.lift_ctrl(cond);
            let crd = effect_of_ctrl_expr(cond, ctx);
            let genv_before = ctx.genv.clone();
            let then_e = effect_of_block(body, ctx);
            ctx.genv = genv_before.clone();
            let else_e = effect_of_block(orelse, ctx);
            // conservative join for dataflow after the branch
            ctx.genv = join_genv(genv_before, &ctx.genv.clone(), ctx.reg);
            Effect::seq_all(vec![
                crd,
                Effect::Guard(c.clone(), Box::new(then_e)),
                Effect::Guard(EffExpr::Not(Box::new(c)), Box::new(else_e)),
            ])
        }
        Stmt::For { iter, lo, hi, body } => {
            let lo_e = ctx.lift_ctrl(lo);
            let hi_e = ctx.lift_ctrl(hi);
            let bound_rd = Effect::seq(effect_of_ctrl_expr(lo, ctx), effect_of_ctrl_expr(hi, ctx));
            // within the body the iteration variable is free (bound by the
            // Loop node); remove any outer substitution for it
            let prev = ctx.ctrl.remove(iter);
            let genv_before = ctx.genv.clone();
            let body_e = effect_of_block(body, ctx);
            // loop dataflow approximation (see globals.rs)
            ctx.genv = loop_genv(genv_before, &ctx.genv.clone(), *iter, ctx.reg);
            if let Some(p) = prev {
                ctx.ctrl.insert(*iter, p);
            }
            Effect::seq(
                bound_rd,
                Effect::Loop {
                    var: *iter,
                    lo: lo_e,
                    hi: hi_e,
                    body: Box::new(body_e),
                },
            )
        }
        Stmt::Alloc { name, .. } => {
            saved.push((*name, ctx.views.insert(*name, identity_for_alloc(s, *name))));
            Effect::Alloc(*name)
        }
        Stmt::WindowDef { name, rhs } => {
            let (view, rd) = match rhs {
                Expr::Window { buf, coords } => {
                    let base = ctx.view_of(*buf);
                    let rd = effect_of_window_reads(coords, ctx);
                    (base.window(coords, ctx), rd)
                }
                _ => (SymView::identity(*name, 0), Effect::Empty),
            };
            saved.push((*name, ctx.views.insert(*name, view)));
            rd
        }
        Stmt::Call { proc, args } => effect_of_call(proc, args, ctx),
    }
}

fn identity_for_alloc(s: &Stmt, name: Sym) -> SymView {
    match s {
        Stmt::Alloc { shape, .. } => SymView::identity(name, shape.len()),
        _ => SymView::identity(name, 0),
    }
}

fn effect_of_call(proc: &Arc<Proc>, args: &[Expr], ctx: &mut ExtractCtx<'_>) -> Effect {
    // build the callee context: control formals ↦ lifted actuals, data
    // formals ↦ views derived from actuals
    let mut ctrl = HashMap::new();
    let mut views = HashMap::new();
    let mut arg_reads = Vec::new();
    for (formal, actual) in proc.args.iter().zip(args) {
        match &formal.ty {
            ArgType::Ctrl(_) => {
                ctrl.insert(formal.name, ctx.lift_ctrl(actual));
                arg_reads.push(effect_of_ctrl_expr(actual, ctx));
            }
            ArgType::Scalar { .. } | ArgType::Tensor { .. } => {
                let view = match actual {
                    Expr::Read { buf, idx } if idx.is_empty() => ctx.view_of(*buf),
                    Expr::Read { buf, idx } => {
                        // point access: all dims fixed
                        let base = ctx.view_of(*buf);
                        let coords: Vec<WAccess> =
                            idx.iter().map(|e| WAccess::Point(e.clone())).collect();
                        arg_reads.push(effect_of_index_reads(idx, ctx));
                        base.window(&coords, ctx)
                    }
                    Expr::Window { buf, coords } => {
                        let base = ctx.view_of(*buf);
                        arg_reads.push(effect_of_window_reads(coords, ctx));
                        base.window(coords, ctx)
                    }
                    other => {
                        // scalar rvalue: reads whatever it reads, the
                        // callee sees a fresh temporary
                        arg_reads.push(effect_of_data_expr(other, ctx));
                        SymView::identity(Sym::new("rvalue_tmp"), 0)
                    }
                };
                views.insert(formal.name, view);
            }
        }
    }
    // run extraction on the callee body with the caller's context maps
    // swapped out (the dataflow environment flows through unchanged)
    let saved_ctrl = std::mem::replace(&mut ctx.ctrl, ctrl);
    let saved_views = std::mem::replace(&mut ctx.views, views);
    let body_e = effect_of_block(&proc.body, ctx);
    ctx.ctrl = saved_ctrl;
    ctx.views = saved_views;
    Effect::seq(Effect::seq_all(arg_reads), body_e)
}

fn join_genv(a: GlobalEnv, b: &GlobalEnv, reg: &mut GlobalReg) -> GlobalEnv {
    // conservative: any field valued differently on the two paths is ⊥
    let mut out = a.clone();
    let keys: Vec<(Sym, Sym)> = a.touched().chain(b.touched()).copied().collect();
    for (c, f) in keys {
        let va = a.value(c, f, reg);
        let vb = b.value(c, f, reg);
        if va == vb {
            out.set(c, f, va);
        } else {
            out.set(c, f, EffExpr::Unknown);
        }
    }
    out
}

fn loop_genv(before: GlobalEnv, after: &GlobalEnv, iter: Sym, reg: &mut GlobalReg) -> GlobalEnv {
    let mut out = before.clone();
    let keys: Vec<(Sym, Sym)> = after.touched().copied().collect();
    for (c, f) in keys {
        let va = before.value(c, f, reg);
        let vb = after.value(c, f, reg);
        let mut fv = std::collections::BTreeSet::new();
        vb.free_vars(&mut fv);
        if va == vb && !fv.contains(&iter) {
            continue;
        }
        out.set(c, f, EffExpr::Unknown);
    }
    out
}

fn effect_of_index_reads(idx: &[Expr], ctx: &mut ExtractCtx<'_>) -> Effect {
    Effect::seq_all(idx.iter().map(|e| effect_of_ctrl_expr(e, ctx)).collect())
}

fn effect_of_window_reads(coords: &[WAccess], ctx: &mut ExtractCtx<'_>) -> Effect {
    Effect::seq_all(
        coords
            .iter()
            .map(|c| match c {
                WAccess::Point(p) => effect_of_ctrl_expr(p, ctx),
                WAccess::Interval(lo, hi) => {
                    Effect::seq(effect_of_ctrl_expr(lo, ctx), effect_of_ctrl_expr(hi, ctx))
                }
            })
            .collect(),
    )
}

/// The read effects of a control expression (configuration reads).
fn effect_of_ctrl_expr(e: &Expr, ctx: &mut ExtractCtx<'_>) -> Effect {
    let mut parts = Vec::new();
    visit::visit_expr(e, &mut |e| {
        if let Expr::ReadConfig { config, field } = e {
            parts.push(Effect::GlobalRead(*config, *field));
        }
    });
    let _ = ctx;
    Effect::seq_all(parts)
}

/// The read effects of a data expression.
fn effect_of_data_expr(e: &Expr, ctx: &mut ExtractCtx<'_>) -> Effect {
    match e {
        Expr::Read { buf, idx } => {
            let view = ctx.view_of(*buf);
            let coords: Vec<EffExpr> = idx.iter().map(|x| ctx.lift_ctrl(x)).collect();
            Effect::seq(
                effect_of_index_reads(idx, ctx),
                Effect::Read(view.buf, view.translate(&coords)),
            )
        }
        Expr::BinOp(_, a, b) => {
            Effect::seq(effect_of_data_expr(a, ctx), effect_of_data_expr(b, ctx))
        }
        Expr::Neg(a) => effect_of_data_expr(a, ctx),
        Expr::BuiltIn { args, .. } => {
            Effect::seq_all(args.iter().map(|a| effect_of_data_expr(a, ctx)).collect())
        }
        _ => Effect::Empty,
    }
}

/// Extracts the effect of a whole procedure body.
pub fn effect_of_proc(proc: &Proc, reg: &mut GlobalReg) -> Effect {
    let _span = exo_obs::Span::enter("analysis.effect_of_proc")
        .with_field("proc", exo_obs::Json::Str(proc.name.to_string()));
    exo_obs::counter_add("analysis.effect_passes", 1);
    let mut ctx = ExtractCtx::for_proc(proc, reg);
    effect_of_block(&proc.body, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::{read, ProcBuilder};
    use exo_core::types::DataType;

    #[test]
    fn assign_yields_read_then_write() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
        b.assign(c, vec![Expr::int(0)], read(a, vec![Expr::int(1)]));
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let eff = effect_of_proc(&p, &mut reg);
        match eff {
            Effect::Seq(parts) => {
                assert!(matches!(parts[0], Effect::Read(b, _) if b == a));
                assert!(matches!(parts[1], Effect::Write(b, _) if b == c));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loop_effect_captures_bounds() {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        match effect_of_proc(&p, &mut reg) {
            Effect::Loop { var, lo, hi, body } => {
                assert_eq!(var.name(), "i");
                assert_eq!(lo, EffExpr::Int(0));
                assert_eq!(hi, EffExpr::Var(n));
                assert!(matches!(*body, Effect::Write(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn window_reads_resolve_to_root_buffer() {
        // y = x[2:6]; y[i] accesses x at i+2
        let mut b = ProcBuilder::new("p");
        let x = b.tensor("x", DataType::F32, vec![Expr::int(8)]);
        let y = b.window("y", x, vec![WAccess::Interval(Expr::int(2), Expr::int(6))]);
        b.assign(y, vec![Expr::int(1)], Expr::float(0.0));
        let p = b.finish();
        let mut reg = GlobalReg::new();
        match effect_of_proc(&p, &mut reg) {
            Effect::Write(buf, idx) => {
                assert_eq!(buf, x);
                assert_eq!(idx.len(), 1);
                // offset 2 + coordinate 1
                assert_eq!(idx[0], EffExpr::Int(2).add(EffExpr::Int(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_effect_substitutes_actuals() {
        // callee writes dst[i] for i in 0..n; call with n := 4 and a
        // window of A
        let mut cb = ProcBuilder::new("fill");
        let n = cb.size("n");
        let dst = cb.tensor("dst", DataType::F32, vec![Expr::var(n)]);
        let i = cb.begin_for("i", Expr::int(0), Expr::var(n));
        cb.assign(dst, vec![Expr::var(i)], Expr::float(0.0));
        cb.end_for();
        let callee = cb.finish();

        let mut b = ProcBuilder::new("main");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        b.call(
            &callee,
            vec![
                Expr::int(4),
                Expr::Window {
                    buf: a,
                    coords: vec![WAccess::Interval(Expr::int(4), Expr::int(8))],
                },
            ],
        );
        let p = b.finish();
        let mut reg = GlobalReg::new();
        match effect_of_proc(&p, &mut reg) {
            Effect::Loop { lo, hi, body, .. } => {
                assert_eq!(lo, EffExpr::Int(0));
                assert_eq!(hi, EffExpr::Int(4));
                match *body {
                    Effect::Write(buf, ref idx) => {
                        assert_eq!(buf, a, "write resolves to the caller's buffer");
                        // index is 4 + i
                        let shown = format!("{:?}", idx[0]);
                        assert!(shown.contains("Int(4)"), "{shown}");
                    }
                    ref other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn config_write_and_read_effects() {
        let c = Sym::new("Cfg");
        let f = Sym::new("stride");
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        b.write_config(c, f, Expr::int(1));
        b.assign(
            a,
            vec![Expr::ReadConfig {
                config: c,
                field: f,
            }],
            Expr::float(0.0),
        );
        let p = b.finish();
        let mut reg = GlobalReg::new();
        match effect_of_proc(&p, &mut reg) {
            Effect::Seq(parts) => {
                assert!(parts
                    .iter()
                    .any(|e| matches!(e, Effect::GlobalWrite(cc, ff) if *cc == c && *ff == f)));
                assert!(parts
                    .iter()
                    .any(|e| matches!(e, Effect::GlobalRead(cc, ff) if *cc == c && *ff == f)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn index_after_config_write_uses_dataflow_value() {
        // Cfg.s = 3; A[Cfg.s] = 0 — the write index must be 3, not the
        // entry value of Cfg.s
        let c = Sym::new("Cfg");
        let f = Sym::new("s");
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        b.write_config(c, f, Expr::int(3));
        b.assign(
            a,
            vec![Expr::ReadConfig {
                config: c,
                field: f,
            }],
            Expr::float(0.0),
        );
        let p = b.finish();
        let mut reg = GlobalReg::new();
        match effect_of_proc(&p, &mut reg) {
            Effect::Seq(parts) => {
                let write = parts
                    .iter()
                    .find_map(|e| match e {
                        Effect::Write(_, idx) => Some(idx.clone()),
                        _ => None,
                    })
                    .expect("a write effect");
                assert_eq!(write[0], EffExpr::Int(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
