//! Effect expressions (paper §5.2) and their lowering to classical SMT
//! formulas.
//!
//! Effect expressions are symbolic control values that may contain the
//! unknown value ⊥ (introduced by the approximating global dataflow,
//! §5.3). Following appendix B, a ternary expression lowers to a pair
//! *(defined, value)* of classical objects: booleans become a pair of
//! [`Formula`]s, integers a [`Formula`] plus a [`LinExpr`] (with fresh
//! variables and side constraints for `/`, `%`, `if-then-else` and ⊥).

use std::collections::HashMap;

use exo_core::ir::{BinOp, Expr, Lit};
use exo_core::Sym;
use exo_smt::formula::Formula;
use exo_smt::linear::LinExpr;

/// A symbolic control value, possibly unknown.
#[derive(Clone, PartialEq, Debug)]
pub enum EffExpr {
    /// An integer-sorted variable (procedure parameter, loop iterator, or
    /// canonical global).
    Var(Sym),
    /// A boolean-sorted variable (encoded as an integer in {0, 1}).
    BoolVar(Sym),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The unknown value ⊥.
    Unknown,
    /// Binary operation (quasi-affine for integer operators).
    Bin(BinOp, Box<EffExpr>, Box<EffExpr>),
    /// Negation of an integer.
    Neg(Box<EffExpr>),
    /// Boolean negation.
    Not(Box<EffExpr>),
    /// `cond ? then : else`.
    Ite(Box<EffExpr>, Box<EffExpr>, Box<EffExpr>),
    /// The stride of buffer `buf` along dimension `dim`, treated as an
    /// opaque (but canonical) integer.
    Stride(Sym, usize),
}

impl EffExpr {
    /// Builds `lhs op rhs`, folding integer constants and arithmetic
    /// units (`0 + x`, `x · 1`, …) to keep symbolic indices small.
    pub fn bin(op: BinOp, lhs: EffExpr, rhs: EffExpr) -> EffExpr {
        use EffExpr::Int;
        match (op, &lhs, &rhs) {
            (BinOp::Add, Int(a), Int(b)) => return Int(a + b),
            (BinOp::Sub, Int(a), Int(b)) => return Int(a - b),
            (BinOp::Mul, Int(a), Int(b)) => return Int(a * b),
            (BinOp::Div, Int(a), Int(b)) if *b > 0 => return Int(a.div_euclid(*b)),
            (BinOp::Mod, Int(a), Int(b)) if *b > 0 => return Int(a.rem_euclid(*b)),
            (BinOp::Add, Int(0), _) => return rhs,
            (BinOp::Add | BinOp::Sub, _, Int(0)) => return lhs,
            (BinOp::Mul, Int(1), _) => return rhs,
            (BinOp::Mul, _, Int(1)) => return lhs,
            (BinOp::Mul, Int(0), _) | (BinOp::Mul, _, Int(0)) => return Int(0),
            (BinOp::Eq, Int(a), Int(b)) => return EffExpr::Bool(a == b),
            (BinOp::Lt, Int(a), Int(b)) => return EffExpr::Bool(a < b),
            (BinOp::Le, Int(a), Int(b)) => return EffExpr::Bool(a <= b),
            (BinOp::Gt, Int(a), Int(b)) => return EffExpr::Bool(a > b),
            (BinOp::Ge, Int(a), Int(b)) => return EffExpr::Bool(a >= b),
            (BinOp::And, EffExpr::Bool(true), _) => return rhs,
            (BinOp::And, _, EffExpr::Bool(true)) => return lhs,
            (BinOp::And, EffExpr::Bool(false), _) | (BinOp::And, _, EffExpr::Bool(false)) => {
                return EffExpr::Bool(false)
            }
            (BinOp::Or, EffExpr::Bool(false), _) => return rhs,
            (BinOp::Or, _, EffExpr::Bool(false)) => return lhs,
            (BinOp::Or, EffExpr::Bool(true), _) | (BinOp::Or, _, EffExpr::Bool(true)) => {
                return EffExpr::Bool(true)
            }
            _ => {}
        }
        EffExpr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: EffExpr) -> EffExpr {
        EffExpr::bin(BinOp::Add, self, rhs)
    }

    /// `a ≤ b`.
    pub fn le(self, rhs: EffExpr) -> EffExpr {
        EffExpr::bin(BinOp::Le, self, rhs)
    }

    /// `a < b`.
    pub fn lt(self, rhs: EffExpr) -> EffExpr {
        EffExpr::bin(BinOp::Lt, self, rhs)
    }

    /// `a ∧ b`.
    pub fn and(self, rhs: EffExpr) -> EffExpr {
        EffExpr::bin(BinOp::And, self, rhs)
    }

    /// `a = b` (integer equality).
    pub fn eq(self, rhs: EffExpr) -> EffExpr {
        EffExpr::bin(BinOp::Eq, self, rhs)
    }

    /// Whether ⊥ occurs anywhere.
    pub fn has_unknown(&self) -> bool {
        match self {
            EffExpr::Unknown => true,
            EffExpr::Bin(_, a, b) => a.has_unknown() || b.has_unknown(),
            EffExpr::Neg(a) | EffExpr::Not(a) => a.has_unknown(),
            EffExpr::Ite(c, t, e) => c.has_unknown() || t.has_unknown() || e.has_unknown(),
            _ => false,
        }
    }

    /// Substitutes variables by effect expressions.
    pub fn subst(&self, map: &HashMap<Sym, EffExpr>) -> EffExpr {
        match self {
            EffExpr::Var(x) => map.get(x).cloned().unwrap_or_else(|| self.clone()),
            EffExpr::BoolVar(x) => map.get(x).cloned().unwrap_or_else(|| self.clone()),
            EffExpr::Int(_) | EffExpr::Bool(_) | EffExpr::Unknown | EffExpr::Stride(..) => {
                self.clone()
            }
            EffExpr::Bin(op, a, b) => EffExpr::bin(*op, a.subst(map), b.subst(map)),
            EffExpr::Neg(a) => EffExpr::Neg(Box::new(a.subst(map))),
            EffExpr::Not(a) => EffExpr::Not(Box::new(a.subst(map))),
            EffExpr::Ite(c, t, e) => EffExpr::Ite(
                Box::new(c.subst(map)),
                Box::new(t.subst(map)),
                Box::new(e.subst(map)),
            ),
        }
    }

    /// Free variables (excluding stride tokens).
    pub fn free_vars(&self, out: &mut std::collections::BTreeSet<Sym>) {
        match self {
            EffExpr::Var(x) | EffExpr::BoolVar(x) => {
                out.insert(*x);
            }
            EffExpr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            EffExpr::Neg(a) | EffExpr::Not(a) => a.free_vars(out),
            EffExpr::Ite(c, t, e) => {
                c.free_vars(out);
                t.free_vars(out);
                e.free_vars(out);
            }
            _ => {}
        }
    }
}

/// `Lift : Expr → EffExpr` (paper §5.3): translates a control expression,
/// mapping configuration reads through `globals` (the canonical variable
/// per configuration field).
pub fn lift(e: &Expr, globals: &mut crate::globals::GlobalReg) -> EffExpr {
    match e {
        Expr::Var(x) => EffExpr::Var(*x),
        Expr::Lit(Lit::Int(v)) => EffExpr::Int(*v),
        Expr::Lit(Lit::Bool(v)) => EffExpr::Bool(*v),
        Expr::Lit(Lit::Float(_)) => EffExpr::Unknown,
        Expr::BinOp(op, a, b) => EffExpr::bin(*op, lift(a, globals), lift(b, globals)),
        Expr::Neg(a) => EffExpr::Neg(Box::new(lift(a, globals))),
        Expr::Stride { buf, dim } => EffExpr::Stride(*buf, *dim),
        Expr::ReadConfig { config, field } => {
            let (sym, is_bool) = globals.canon(*config, *field);
            if is_bool {
                EffExpr::BoolVar(sym)
            } else {
                EffExpr::Var(sym)
            }
        }
        // data expressions have no control value
        Expr::Read { .. } | Expr::Window { .. } | Expr::BuiltIn { .. } => EffExpr::Unknown,
    }
}

/// A lowered boolean: classical `(defined, value)` pair.
#[derive(Clone, PartialEq, Debug)]
pub struct LBool {
    /// Whether the ternary value is known (not ⊥).
    pub def: Formula,
    /// The value when defined.
    pub val: Formula,
}

impl LBool {
    /// A known boolean.
    pub fn known(val: Formula) -> LBool {
        LBool {
            def: Formula::True,
            val,
        }
    }

    /// `D p` — definitely true.
    pub fn definitely(&self) -> Formula {
        Formula::and(vec![self.def.clone(), self.val.clone()])
    }

    /// `M p` — maybe true (unknown counts as true).
    pub fn maybe(&self) -> Formula {
        Formula::or(vec![self.def.clone().negate(), self.val.clone()])
    }

    /// Kleene conjunction.
    pub fn and(&self, other: &LBool) -> LBool {
        // defined when both defined, or either is a defined false
        let def = Formula::or(vec![
            Formula::and(vec![self.def.clone(), other.def.clone()]),
            Formula::and(vec![self.def.clone(), self.val.clone().negate()]),
            Formula::and(vec![other.def.clone(), other.val.clone().negate()]),
        ]);
        LBool {
            def,
            val: Formula::and(vec![self.val.clone(), other.val.clone()]),
        }
    }

    /// Kleene disjunction.
    pub fn or(&self, other: &LBool) -> LBool {
        let def = Formula::or(vec![
            Formula::and(vec![self.def.clone(), other.def.clone()]),
            Formula::and(vec![self.def.clone(), self.val.clone()]),
            Formula::and(vec![other.def.clone(), other.val.clone()]),
        ]);
        LBool {
            def,
            val: Formula::or(vec![self.val.clone(), other.val.clone()]),
        }
    }

    /// Kleene negation.
    pub fn negate(&self) -> LBool {
        LBool {
            def: self.def.clone(),
            val: self.val.clone().negate(),
        }
    }
}

/// A lowered integer: `(defined, linear value)`.
#[derive(Clone, PartialEq, Debug)]
pub struct LInt {
    /// Whether the ternary value is known.
    pub def: Formula,
    /// The value when defined.
    pub val: LinExpr,
}

/// Context for lowering: fresh-variable supply, accumulated side
/// constraints (definitions of fresh variables), and the canonical-stride
/// registry.
#[derive(Debug, Default)]
pub struct LowerCtx {
    /// Side constraints that must be assumed in every query using the
    /// lowered expressions.
    pub side: Vec<Formula>,
    strides: HashMap<(Sym, usize), Sym>,
}

impl LowerCtx {
    /// Creates an empty context.
    pub fn new() -> LowerCtx {
        LowerCtx::default()
    }

    /// The conjunction of all side constraints.
    pub fn assumptions(&self) -> Formula {
        Formula::and(self.side.clone())
    }

    fn fresh(&mut self, hint: &str) -> Sym {
        Sym::new(hint)
    }

    /// Reverse lookup: which `(buffer, dim)` a canonical stride symbol
    /// stands for, if any.
    pub fn stride_of(&self, sym: Sym) -> Option<(Sym, usize)> {
        self.strides
            .iter()
            .find(|(_, &s)| s == sym)
            .map(|(&(b, d), _)| (b, d))
    }

    fn stride_var(&mut self, buf: Sym, dim: usize) -> Sym {
        *self
            .strides
            .entry((buf, dim))
            .or_insert_with(|| Sym::new(format!("stride_{}_{dim}", buf.name())))
    }

    /// Lowers an integer-sorted effect expression.
    pub fn lower_int(&mut self, e: &EffExpr) -> LInt {
        match e {
            EffExpr::Var(x) => LInt {
                def: Formula::True,
                val: LinExpr::var(*x),
            },
            EffExpr::Int(v) => LInt {
                def: Formula::True,
                val: LinExpr::constant(*v),
            },
            EffExpr::Stride(b, d) => {
                let v = self.stride_var(*b, *d);
                LInt {
                    def: Formula::True,
                    val: LinExpr::var(v),
                }
            }
            EffExpr::Unknown => {
                let v = self.fresh("unk");
                LInt {
                    def: Formula::False,
                    val: LinExpr::var(v),
                }
            }
            EffExpr::Neg(a) => {
                let a = self.lower_int(a);
                LInt {
                    def: a.def,
                    val: a.val.scale(-1),
                }
            }
            EffExpr::Bin(op, a, b) => self.lower_int_bin(*op, a, b),
            EffExpr::Ite(c, t, f) => {
                let c = self.lower_bool(c);
                let t = self.lower_int(t);
                let f = self.lower_int(f);
                let v = self.fresh("ite");
                let vv = LinExpr::var(v);
                self.side.push(Formula::and(vec![
                    Formula::and(vec![c.def.clone(), c.val.clone(), t.def.clone()])
                        .implies(Formula::eq(vv.clone(), t.val.clone())),
                    Formula::and(vec![c.def.clone(), c.val.clone().negate(), f.def.clone()])
                        .implies(Formula::eq(vv.clone(), f.val.clone())),
                ]));
                let def = Formula::and(vec![
                    c.def.clone(),
                    Formula::or(vec![
                        Formula::and(vec![c.val.clone(), t.def]),
                        Formula::and(vec![c.val.negate(), f.def]),
                    ]),
                ]);
                LInt { def, val: vv }
            }
            // boolean-sorted in an int position: treat as unknown (sound)
            EffExpr::Bool(_) | EffExpr::BoolVar(_) | EffExpr::Not(_) => {
                let v = self.fresh("sortmix");
                LInt {
                    def: Formula::False,
                    val: LinExpr::var(v),
                }
            }
        }
    }

    fn lower_int_bin(&mut self, op: BinOp, a: &EffExpr, b: &EffExpr) -> LInt {
        let la = self.lower_int(a);
        let lb = self.lower_int(b);
        let def = Formula::and(vec![la.def.clone(), lb.def.clone()]);
        match op {
            BinOp::Add => LInt {
                def,
                val: la.val.add(&lb.val),
            },
            BinOp::Sub => LInt {
                def,
                val: la.val.sub(&lb.val),
            },
            BinOp::Mul => {
                if let Some(c) = la.val.as_constant() {
                    LInt {
                        def,
                        val: lb.val.scale(c),
                    }
                } else if let Some(c) = lb.val.as_constant() {
                    LInt {
                        def,
                        val: la.val.scale(c),
                    }
                } else {
                    // non-affine: unknown (front-end checks prevent this)
                    let v = self.fresh("nonaffine");
                    LInt {
                        def: Formula::False,
                        val: LinExpr::var(v),
                    }
                }
            }
            BinOp::Div | BinOp::Mod => {
                let Some(c) = lb.val.as_constant().filter(|&c| c > 0) else {
                    let v = self.fresh("nonconst_div");
                    return LInt {
                        def: Formula::False,
                        val: LinExpr::var(v),
                    };
                };
                let q = self.fresh("q");
                let qv = LinExpr::var(q);
                // c·q ≤ t < c·q + c  (Euclidean for positive divisor)
                self.side.push(def.clone().implies(Formula::and(vec![
                    Formula::le(qv.scale(c), la.val.clone()),
                    Formula::lt(la.val.clone(), qv.scale(c).offset(c)),
                ])));
                match op {
                    BinOp::Div => LInt { def, val: qv },
                    _ => LInt {
                        def,
                        val: la.val.sub(&qv.scale(c)),
                    },
                }
            }
            _ => {
                let v = self.fresh("boolop_int");
                LInt {
                    def: Formula::False,
                    val: LinExpr::var(v),
                }
            }
        }
    }

    /// Lowers a boolean-sorted effect expression.
    pub fn lower_bool(&mut self, e: &EffExpr) -> LBool {
        match e {
            EffExpr::Bool(v) => LBool::known(if *v { Formula::True } else { Formula::False }),
            EffExpr::BoolVar(x) => {
                // encoded as an integer constrained to {0, 1}
                let xv = LinExpr::var(*x);
                self.side.push(Formula::and(vec![
                    Formula::ge(xv.clone(), LinExpr::constant(0)),
                    Formula::le(xv.clone(), LinExpr::constant(1)),
                ]));
                LBool::known(Formula::eq(xv, LinExpr::constant(1)))
            }
            EffExpr::Unknown => LBool {
                def: Formula::False,
                val: Formula::True,
            },
            EffExpr::Not(a) => self.lower_bool(a).negate(),
            EffExpr::Bin(BinOp::And, a, b) => {
                let la = self.lower_bool(a);
                let lb = self.lower_bool(b);
                la.and(&lb)
            }
            EffExpr::Bin(BinOp::Or, a, b) => {
                let la = self.lower_bool(a);
                let lb = self.lower_bool(b);
                la.or(&lb)
            }
            EffExpr::Bin(op, a, b)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                // boolean equality between boolean-sorted operands is
                // lowered as iff; otherwise integer comparison
                if matches!(
                    (a.as_ref(), b.as_ref()),
                    (EffExpr::Bool(_) | EffExpr::BoolVar(_) | EffExpr::Not(_), _)
                        | (_, EffExpr::Bool(_) | EffExpr::BoolVar(_) | EffExpr::Not(_))
                ) && *op == BinOp::Eq
                {
                    let la = self.lower_bool(a);
                    let lb = self.lower_bool(b);
                    return LBool {
                        def: Formula::and(vec![la.def, lb.def]),
                        val: la.val.iff(lb.val),
                    };
                }
                let la = self.lower_int(a);
                let lb = self.lower_int(b);
                let def = Formula::and(vec![la.def, lb.def]);
                let val = match op {
                    BinOp::Eq => Formula::eq(la.val, lb.val),
                    BinOp::Lt => Formula::lt(la.val, lb.val),
                    BinOp::Le => Formula::le(la.val, lb.val),
                    BinOp::Gt => Formula::gt(la.val, lb.val),
                    BinOp::Ge => Formula::ge(la.val, lb.val),
                    _ => unreachable!(),
                };
                LBool { def, val }
            }
            EffExpr::Ite(c, t, f) => {
                let c = self.lower_bool(c);
                let t = self.lower_bool(t);
                let f = self.lower_bool(f);
                let def = Formula::and(vec![
                    c.def.clone(),
                    Formula::or(vec![
                        Formula::and(vec![c.val.clone(), t.def.clone()]),
                        Formula::and(vec![c.val.clone().negate(), f.def.clone()]),
                    ]),
                ]);
                let val = Formula::or(vec![
                    Formula::and(vec![c.val.clone(), t.val]),
                    Formula::and(vec![c.val.negate(), f.val]),
                ]);
                LBool { def, val }
            }
            // integer-sorted in bool position: unknown
            _ => LBool {
                def: Formula::False,
                val: Formula::True,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::SharedCheckCtx;
    use exo_smt::solver::Answer;

    #[test]
    fn lift_translates_control_exprs() {
        let mut globals = crate::globals::GlobalReg::default();
        let x = Sym::new("x");
        let e = Expr::var(x).mul(Expr::int(16)).add(Expr::int(3));
        let le = lift(&e, &mut globals);
        let mut ctx = LowerCtx::new();
        let li = ctx.lower_int(&le);
        assert_eq!(li.def, Formula::True);
        assert_eq!(li.val.coeff(x), 16);
        assert_eq!(li.val.constant, 3);
        assert!(ctx.side.is_empty());
    }

    #[test]
    fn division_lowering_is_exact() {
        // (x·16 + 5) / 16 == x under the side constraints
        let x = Sym::new("x");
        let e = EffExpr::Var(x).add(EffExpr::Int(0)).eq(EffExpr::bin(
            BinOp::Div,
            EffExpr::bin(
                BinOp::Add,
                EffExpr::bin(BinOp::Mul, EffExpr::Var(x), EffExpr::Int(16)),
                EffExpr::Int(5),
            ),
            EffExpr::Int(16),
        ));
        let mut ctx = LowerCtx::new();
        let lb = ctx.lower_bool(&e);
        let solver = SharedCheckCtx::process();
        let goal = ctx.assumptions().implies(lb.definitely());
        assert_eq!(solver.check_valid(&goal), Answer::Yes);
    }

    #[test]
    fn unknown_is_never_definite() {
        let mut ctx = LowerCtx::new();
        let e = EffExpr::Unknown.le(EffExpr::Int(100));
        let lb = ctx.lower_bool(&e);
        let solver = SharedCheckCtx::process();
        // D(⊥ ≤ 100) is not valid …
        assert_eq!(solver.check_valid(&lb.definitely()), Answer::No);
        // … but M(⊥ ≤ 100) is
        assert_eq!(solver.check_valid(&lb.maybe()), Answer::Yes);
    }

    #[test]
    fn kleene_false_absorbs_unknown() {
        // false ∧ ⊥ = false (definitely not true)
        let mut ctx = LowerCtx::new();
        let e = EffExpr::Bool(false).and(EffExpr::Unknown);
        let lb = ctx.lower_bool(&e);
        let solver = SharedCheckCtx::process();
        assert_eq!(solver.check_valid(&lb.maybe().negate()), Answer::Yes);
    }

    #[test]
    fn strides_are_canonical() {
        let b = Sym::new("buf");
        let mut ctx = LowerCtx::new();
        let s1 = ctx.lower_int(&EffExpr::Stride(b, 0));
        let s2 = ctx.lower_int(&EffExpr::Stride(b, 0));
        assert_eq!(s1.val, s2.val);
        let s3 = ctx.lower_int(&EffExpr::Stride(b, 1));
        assert_ne!(s1.val, s3.val);
    }

    #[test]
    fn subst_and_free_vars() {
        let x = Sym::new("x");
        let y = Sym::new("y");
        let e = EffExpr::Var(x).add(EffExpr::Var(y));
        let mut fv = std::collections::BTreeSet::new();
        e.free_vars(&mut fv);
        assert!(fv.contains(&x) && fv.contains(&y));
        let mut m = HashMap::new();
        m.insert(x, EffExpr::Int(1));
        let e2 = e.subst(&m);
        let mut fv2 = std::collections::BTreeSet::new();
        e2.free_vars(&mut fv2);
        assert!(!fv2.contains(&x));
    }
}
