//! Static bounds checking and assertion checking (paper §3.1, §4.2).
//!
//! Dependent array types plus the quasi-affine restriction let Exo prove
//! every access in-bounds at scheduling time, giving memory safety with
//! no dynamic checks. Assertion checking verifies that each call site
//! establishes the callee's preconditions.
//!
//! Two entry points: [`check_bounds`] verifies a whole procedure;
//! [`check_bounds_at`] verifies only the subtree a rewrite dirtied,
//! replaying the surrounding context (shapes, binders, guards, config
//! dataflow) without re-proving it.

use std::collections::HashMap;
use std::fmt;

use exo_core::ir::{ArgType, Block, Expr, Proc, Stmt, WAccess};
use exo_core::path::StmtPath;
use exo_core::Sym;
use exo_smt::formula::Formula;
use exo_smt::solver::Answer;

use crate::check::SharedCheckCtx;
use crate::effexpr::{EffExpr, LowerCtx};
use crate::globals::{lift_in_env, val_g_block, GlobalEnv, GlobalReg};

/// A bounds or assertion violation (or a solver give-up, which is
/// reported as a failure — the checks fail safe).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CheckError {}

struct Checker<'a> {
    reg: &'a mut GlobalReg,
    check: &'a SharedCheckCtx,
    /// shape (as effect expressions) per data symbol
    shapes: HashMap<Sym, Vec<EffExpr>>,
    /// path condition: binder bounds, guards, preconditions
    assumptions: Vec<EffExpr>,
    genv: GlobalEnv,
    errors: Vec<CheckError>,
    /// When false, obligations are skipped: the checker only replays
    /// shape registration and dataflow. Used to absorb the context
    /// *around* a dirty subtree without re-proving it.
    verify: bool,
}

impl<'a> Checker<'a> {
    fn assume_formula(&mut self, ctx: &mut LowerCtx) -> Formula {
        let mut parts = Vec::new();
        for a in &self.assumptions {
            parts.push(ctx.lower_bool(a).maybe());
        }
        Formula::and(parts)
    }

    fn require(&mut self, goal: EffExpr, what: impl Fn() -> String) {
        if !self.verify {
            return;
        }
        exo_obs::counter_add("analysis.bounds.obligations", 1);
        exo_obs::attr::counter_add_by_op("analysis.bounds.obligations", 1);
        let mut ctx = LowerCtx::new();
        let hyp = self.assume_formula(&mut ctx);
        let g = ctx.lower_bool(&goal).definitely();
        let query = Formula::and(vec![hyp, ctx.assumptions()]).implies(g);
        match self.check.check_valid(&query) {
            Answer::Yes => {}
            Answer::No => self.errors.push(CheckError { message: what() }),
            Answer::Unknown => self.errors.push(CheckError {
                message: format!("{} (solver gave up; failing safe)", what()),
            }),
        }
    }

    fn lift(&mut self, e: &Expr) -> EffExpr {
        lift_in_env(e, &self.genv, self.reg)
    }

    fn check_access(&mut self, buf: Sym, idx: &[Expr], what: &str) {
        let Some(shape) = self.shapes.get(&buf).cloned() else {
            // windows are checked at definition; accesses through them are
            // within the window's shape which we also track
            return;
        };
        if idx.is_empty() {
            return;
        }
        if idx.len() != shape.len() {
            self.errors.push(CheckError {
                message: format!(
                    "{what} of {buf}: {} indices for rank {}",
                    idx.len(),
                    shape.len()
                ),
            });
            return;
        }
        for (d, (i, n)) in idx.iter().zip(&shape).enumerate() {
            let ie = self.lift(i);
            let goal = EffExpr::Int(0).le(ie.clone()).and(ie.lt(n.clone()));
            self.require(goal, || {
                format!(
                    "{what} of {buf} may be out of bounds in dimension {d}: \
                     index {}",
                    exo_core::printer::expr_to_string(i)
                )
            });
        }
    }

    fn check_block(&mut self, block: &[Stmt]) {
        self.check_stmts(block, false);
    }

    /// Walks `block`; with `retain` the shapes registered by its
    /// `Alloc`/`WindowDef` statements stay in scope afterwards (used when
    /// absorbing the prefix of a block around a dirty subtree).
    fn check_stmts(&mut self, block: &[Stmt], retain: bool) {
        let mut added: Vec<Sym> = Vec::new();
        for s in block {
            match s {
                Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                    self.check_access(*buf, idx, "store");
                    self.check_expr(rhs);
                }
                Stmt::WriteConfig { config, field, rhs } => {
                    self.check_expr(rhs);
                    let v = self.lift(rhs);
                    self.genv.set(*config, *field, v);
                }
                Stmt::Pass => {}
                Stmt::If { cond, body, orelse } => {
                    self.check_expr(cond);
                    let c = self.lift(cond);
                    let saved_genv = self.genv.clone();
                    self.assumptions.push(c.clone());
                    self.check_block(body);
                    self.assumptions.pop();
                    self.genv = saved_genv.clone();
                    self.assumptions.push(EffExpr::Not(Box::new(c)));
                    self.check_block(orelse);
                    self.assumptions.pop();
                    // conservative join
                    self.genv = saved_genv;
                    let after = val_g_block(std::slice::from_ref(s), self.genv.clone(), self.reg);
                    self.genv = after;
                }
                Stmt::For { iter, lo, hi, body } => {
                    self.check_expr(lo);
                    self.check_expr(hi);
                    let lo_e = self.lift(lo);
                    let hi_e = self.lift(hi);
                    let saved_genv = self.genv.clone();
                    self.assumptions
                        .push(crate::conditions::bd(*iter, &lo_e, &hi_e));
                    // inside the body, config state may have been changed
                    // by earlier iterations
                    self.genv = loop_open_env(saved_genv.clone(), body, *iter, self.reg);
                    self.check_block(body);
                    self.assumptions.pop();
                    self.genv = val_g_block(std::slice::from_ref(s), saved_genv, self.reg);
                }
                Stmt::Alloc { name, shape, .. } => {
                    let se: Vec<EffExpr> = shape.iter().map(|e| self.lift(e)).collect();
                    for (d, n) in se.iter().enumerate() {
                        self.require(EffExpr::Int(1).le(n.clone()), || {
                            format!("allocation {name} may have non-positive extent in dim {d}")
                        });
                    }
                    self.shapes.insert(*name, se);
                    added.push(*name);
                }
                Stmt::WindowDef { name, rhs } => {
                    if let Expr::Window { buf, coords } = rhs {
                        let wshape = self.check_window(*buf, coords);
                        self.shapes.insert(*name, wshape);
                        added.push(*name);
                    }
                }
                Stmt::Call { proc, args } => self.check_call(proc, args),
            }
        }
        if !retain {
            for s in added {
                self.shapes.remove(&s);
            }
        }
    }

    fn check_window(&mut self, buf: Sym, coords: &[WAccess]) -> Vec<EffExpr> {
        let Some(shape) = self.shapes.get(&buf).cloned() else {
            return coords
                .iter()
                .filter(|c| c.is_interval())
                .map(|_| EffExpr::Unknown)
                .collect();
        };
        let mut out = Vec::new();
        for (d, (c, n)) in coords.iter().zip(&shape).enumerate() {
            match c {
                WAccess::Point(p) => {
                    let pe = self.lift(p);
                    self.require(EffExpr::Int(0).le(pe.clone()).and(pe.lt(n.clone())), || {
                        format!("window point access of {buf} out of bounds in dim {d}")
                    });
                }
                WAccess::Interval(lo, hi) => {
                    let lo_e = self.lift(lo);
                    let hi_e = self.lift(hi);
                    self.require(
                        EffExpr::Int(0)
                            .le(lo_e.clone())
                            .and(lo_e.clone().le(hi_e.clone()))
                            .and(hi_e.clone().le(n.clone())),
                        || format!("window interval of {buf} out of bounds in dim {d}"),
                    );
                    out.push(EffExpr::bin(exo_core::BinOp::Sub, hi_e, lo_e));
                }
            }
        }
        out
    }

    fn check_call(&mut self, proc: &Proc, args: &[Expr]) {
        // check argument expressions and collect the control substitution
        let mut subst: HashMap<Sym, EffExpr> = HashMap::new();
        for (formal, actual) in proc.args.iter().zip(args) {
            match &formal.ty {
                ArgType::Ctrl(_) => {
                    self.check_expr(actual);
                    subst.insert(formal.name, self.lift(actual));
                }
                ArgType::Scalar { .. } => {}
                ArgType::Tensor { .. } => {
                    if let Expr::Window { buf, coords } = actual {
                        self.check_window(*buf, coords);
                    }
                }
            }
        }
        // assertion checking: the callee's preconditions must hold here
        for pred in &proc.preds {
            let lifted = lift_in_env(pred, &GlobalEnv::identity(), self.reg).subst(&subst);
            // substitute caller-side global values for the callee's view of
            // entry globals
            self.require(lifted, || {
                format!(
                    "call to {} may violate its precondition: {}",
                    proc.name,
                    exo_core::printer::expr_to_string(pred)
                )
            });
        }
        // recursively checking the callee body happens when the callee is
        // itself checked; call-site duty is only the preconditions
    }

    fn check_expr(&mut self, e: &Expr) {
        match e {
            Expr::Read { buf, idx } => {
                self.check_access(*buf, idx, "read");
                idx.iter().for_each(|i| self.check_expr(i));
            }
            Expr::BinOp(_, a, b) => {
                self.check_expr(a);
                self.check_expr(b);
            }
            Expr::Neg(a) => self.check_expr(a),
            Expr::Window { buf, coords } => {
                self.check_window(*buf, coords);
            }
            Expr::BuiltIn { args, .. } => args.iter().for_each(|a| self.check_expr(a)),
            _ => {}
        }
    }
}

fn loop_open_env(entry: GlobalEnv, body: &Block, iter: Sym, reg: &mut GlobalReg) -> GlobalEnv {
    let after = val_g_block(body, entry.clone(), reg);
    let mut out = entry.clone();
    let keys: Vec<(Sym, Sym)> = after.touched().copied().collect();
    for (c, f) in keys {
        let va = entry.value(c, f, reg);
        let vb = after.value(c, f, reg);
        let mut fv = std::collections::BTreeSet::new();
        vb.free_vars(&mut fv);
        if va == vb && !fv.contains(&iter) {
            continue;
        }
        out.set(c, f, EffExpr::Unknown);
    }
    out
}

/// Seeds the checker state every entry point shares: argument shapes,
/// size positivity, and the procedure's preconditions.
fn seed(proc: &Proc, reg: &mut GlobalReg) -> (HashMap<Sym, Vec<EffExpr>>, Vec<EffExpr>) {
    let mut shapes = HashMap::new();
    let mut assumptions = Vec::new();
    for arg in &proc.args {
        match &arg.ty {
            ArgType::Tensor { shape, .. } => {
                let se: Vec<EffExpr> = shape
                    .iter()
                    .map(|e| lift_in_env(e, &GlobalEnv::identity(), reg))
                    .collect();
                shapes.insert(arg.name, se);
            }
            ArgType::Scalar { .. } => {
                shapes.insert(arg.name, vec![]);
            }
            ArgType::Ctrl(exo_core::CtrlType::Size) => {
                assumptions.push(EffExpr::Int(1).le(EffExpr::Var(arg.name)));
            }
            ArgType::Ctrl(_) => {}
        }
    }
    for p in &proc.preds {
        assumptions.push(lift_in_env(p, &GlobalEnv::identity(), reg));
    }
    (shapes, assumptions)
}

/// Statically checks every buffer access, window, allocation extent, and
/// call-site precondition in `proc`.
///
/// # Errors
///
/// Returns all violations found (including solver give-ups, which fail
/// safe).
pub fn check_bounds(
    proc: &Proc,
    reg: &mut GlobalReg,
    check: &SharedCheckCtx,
) -> Result<(), Vec<CheckError>> {
    let (shapes, assumptions) = seed(proc, reg);
    let mut checker = Checker {
        reg,
        check,
        shapes,
        assumptions,
        genv: GlobalEnv::identity(),
        errors: Vec::new(),
        verify: true,
    };
    let mut span = exo_obs::Span::enter("analysis.check_bounds")
        .with_field("proc", exo_obs::Json::Str(proc.name.to_string()));
    checker.check_block(&proc.body);
    span.field("errors", exo_obs::Json::uint(checker.errors.len() as u64));
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(checker.errors)
    }
}

/// Statically checks only the subtree rooted at `scope`, replaying the
/// surrounding context without re-proving it.
///
/// A scheduling rewrite that modified exactly the statement at `scope`
/// cannot have invalidated obligations elsewhere, so the checker walks
/// down the path with verification off — registering allocation and
/// window shapes of preceding siblings, collecting binder bounds and
/// guard conditions, and advancing the configuration dataflow — and turns
/// verification on only for the dirty subtree. An empty or stale path
/// falls back to the whole-procedure [`check_bounds`].
///
/// # Errors
///
/// Returns all violations found *within the scope* (including solver
/// give-ups, which fail safe). Pre-existing violations outside the scope
/// are not re-reported.
pub fn check_bounds_at(
    proc: &Proc,
    scope: &StmtPath,
    reg: &mut GlobalReg,
    check: &SharedCheckCtx,
) -> Result<(), Vec<CheckError>> {
    if scope.is_empty() {
        return check_bounds(proc, reg, check);
    }
    let descent = check_scoped(proc, scope, reg, check);
    match descent {
        Some(errors) if errors.is_empty() => Ok(()),
        Some(errors) => Err(errors),
        // stale path (rewrite moved the scope out from under us): be
        // conservative and recheck everything
        None => check_bounds(proc, reg, check),
    }
}

/// The descent behind [`check_bounds_at`]; `None` means the path does not
/// address a statement in `proc`.
fn check_scoped(
    proc: &Proc,
    scope: &StmtPath,
    reg: &mut GlobalReg,
    check: &SharedCheckCtx,
) -> Option<Vec<CheckError>> {
    let (shapes, assumptions) = seed(proc, reg);
    let mut checker = Checker {
        reg,
        check,
        shapes,
        assumptions,
        genv: GlobalEnv::identity(),
        errors: Vec::new(),
        verify: false,
    };
    let mut span = exo_obs::Span::enter("analysis.check_bounds_at")
        .with_field("proc", exo_obs::Json::Str(proc.name.to_string()))
        .with_field("scope", exo_obs::Json::Str(scope.to_string()));
    exo_obs::counter_add("analysis.bounds.scoped_passes", 1);
    let steps = &scope.0;
    let mut block: &[Stmt] = &proc.body;
    for (depth, step) in steps.iter().enumerate() {
        // absorb preceding siblings: shapes and dataflow, no obligations
        checker.check_stmts(&block[..step.idx.min(block.len())], true);
        let stmt = block.get(step.idx)?;
        if depth + 1 == steps.len() {
            checker.verify = true;
            checker.check_block(std::slice::from_ref(stmt));
            span.field("errors", exo_obs::Json::uint(checker.errors.len() as u64));
            return Some(checker.errors);
        }
        match (stmt, steps[depth + 1].block) {
            (Stmt::For { iter, lo, hi, body }, 0) => {
                let lo_e = checker.lift(lo);
                let hi_e = checker.lift(hi);
                checker
                    .assumptions
                    .push(crate::conditions::bd(*iter, &lo_e, &hi_e));
                checker.genv = loop_open_env(checker.genv.clone(), body, *iter, checker.reg);
                block = body;
            }
            (Stmt::If { cond, body, .. }, 0) => {
                let c = checker.lift(cond);
                checker.assumptions.push(c);
                block = body;
            }
            (Stmt::If { cond, orelse, .. }, 1) => {
                let c = checker.lift(cond);
                checker.assumptions.push(EffExpr::Not(Box::new(c)));
                block = orelse;
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::{read, ProcBuilder};
    use exo_core::types::DataType;

    fn run(p: &Proc) -> Result<(), Vec<CheckError>> {
        let mut reg = GlobalReg::new();
        check_bounds(p, &mut reg, &SharedCheckCtx::process())
    }

    #[test]
    fn in_bounds_loop_accepted() {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        assert!(run(&b.finish()).is_ok());
    }

    #[test]
    fn off_by_one_rejected() {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        b.assign(a, vec![Expr::var(i).add(Expr::int(1))], Expr::float(0.0));
        b.end_for();
        let errs = run(&b.finish()).unwrap_err();
        assert!(errs[0].message.contains("out of bounds"), "{:?}", errs);
    }

    #[test]
    fn guard_makes_access_safe() {
        // for i in 0..n+1: if i < n: A[i] = 0 — safe thanks to the guard
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n).add(Expr::int(1)));
        b.begin_if(Expr::var(i).lt(Expr::var(n)));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_if();
        b.end_for();
        assert!(run(&b.finish()).is_ok());
    }

    #[test]
    fn tiled_access_with_divisibility_pred() {
        // assert n % 16 == 0; for io in 0..n/16: for ii in 0..16:
        //   A[16·io + ii] — in bounds only thanks to the assertion
        let build = |with_pred: bool| {
            let mut b = ProcBuilder::new("p");
            let n = b.size("n");
            if with_pred {
                b.assert_pred(Expr::var(n).rem(Expr::int(16)).eq(Expr::int(0)));
            }
            let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
            let io = b.begin_for("io", Expr::int(0), Expr::var(n).div(Expr::int(16)));
            let ii = b.begin_for("ii", Expr::int(0), Expr::int(16));
            b.assign(
                a,
                vec![Expr::var(io).mul(Expr::int(16)).add(Expr::var(ii))],
                Expr::float(0.0),
            );
            b.end_for().end_for();
            b.finish()
        };
        assert!(run(&build(true)).is_ok());
        // without the divisibility assertion … it is still fine!
        // (16·(n/16) ≤ n holds by flooring); tighten: use n/16 + 1 tiles
        let mut b = ProcBuilder::new("p2");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let io = b.begin_for(
            "io",
            Expr::int(0),
            Expr::var(n).div(Expr::int(16)).add(Expr::int(1)),
        );
        let ii = b.begin_for("ii", Expr::int(0), Expr::int(16));
        b.assign(
            a,
            vec![Expr::var(io).mul(Expr::int(16)).add(Expr::var(ii))],
            Expr::float(0.0),
        );
        b.end_for().end_for();
        assert!(run(&b.finish()).is_err());
    }

    #[test]
    fn window_definition_checked() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        // x = A[4:12] — out of bounds
        let _x = b.window("x", a, vec![WAccess::Interval(Expr::int(4), Expr::int(12))]);
        b.stmt(Stmt::Pass);
        let errs = run(&b.finish()).unwrap_err();
        assert!(errs[0].message.contains("window interval"), "{:?}", errs);
    }

    #[test]
    fn access_through_window_uses_window_shape() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let x = b.window("x", a, vec![WAccess::Interval(Expr::int(2), Expr::int(6))]);
        // x has extent 4: x[3] fine, x[4] not
        b.assign(x, vec![Expr::int(3)], Expr::float(0.0));
        assert!(run(&b.finish()).is_ok());

        let mut b2 = ProcBuilder::new("p2");
        let a2 = b2.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let x2 = b2.window("x", a2, vec![WAccess::Interval(Expr::int(2), Expr::int(6))]);
        b2.assign(x2, vec![Expr::int(4)], Expr::float(0.0));
        assert!(run(&b2.finish()).is_err());
    }

    #[test]
    fn callee_precondition_enforced() {
        // callee asserts m ≤ 16 (the paper's ld_data)
        let mut cb = ProcBuilder::new("ld_data");
        let m = cb.size("m");
        cb.assert_pred(Expr::var(m).le(Expr::int(16)));
        cb.stmt(Stmt::Pass);
        let callee = cb.finish();

        let mut ok = ProcBuilder::new("ok");
        ok.call(&callee, vec![Expr::int(8)]);
        assert!(run(&ok.finish()).is_ok());

        let mut bad = ProcBuilder::new("bad");
        bad.call(&callee, vec![Expr::int(32)]);
        let errs = run(&bad.finish()).unwrap_err();
        assert!(errs[0].message.contains("precondition"), "{:?}", errs);
    }

    #[test]
    fn caller_pred_discharges_callee_pred() {
        let mut cb = ProcBuilder::new("callee");
        let m = cb.size("m");
        cb.assert_pred(Expr::var(m).le(Expr::int(16)));
        cb.stmt(Stmt::Pass);
        let callee = cb.finish();

        let mut b = ProcBuilder::new("caller");
        let n = b.size("n");
        b.assert_pred(Expr::var(n).le(Expr::int(8)));
        b.call(&callee, vec![Expr::var(n)]);
        assert!(run(&b.finish()).is_ok());
    }

    #[test]
    fn read_of_data_expr_checked() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
        b.assign(c, vec![Expr::int(0)], read(a, vec![Expr::int(9)]));
        let errs = run(&b.finish()).unwrap_err();
        assert!(errs[0].message.contains("read"), "{:?}", errs);
    }

    /// Two sibling loops, the second out of bounds: the scoped check sees
    /// only what its path addresses.
    fn two_loop_proc() -> std::sync::Arc<Proc> {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        let j = b.begin_for("j", Expr::int(0), Expr::var(n));
        b.assign(a, vec![Expr::var(j).add(Expr::int(1))], Expr::float(0.0));
        b.end_for();
        b.finish()
    }

    #[test]
    fn scoped_check_sees_only_its_subtree() {
        let p = two_loop_proc();
        let mut reg = GlobalReg::new();
        let check = SharedCheckCtx::process();
        assert!(check_bounds(&p, &mut reg, &check).is_err());
        assert!(check_bounds_at(&p, &StmtPath::top(0), &mut reg, &check).is_ok());
        assert!(check_bounds_at(&p, &StmtPath::top(1), &mut reg, &check).is_err());
    }

    #[test]
    fn scoped_check_uses_enclosing_binders_and_guards() {
        // for i in 0..n+1: if i < n: A[i] = 0 — the store is only safe
        // given both the binder bound and the guard, which the scoped
        // check must replay on its way down.
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n).add(Expr::int(1)));
        b.begin_if(Expr::var(i).lt(Expr::var(n)));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_if();
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let check = SharedCheckCtx::process();
        let store = StmtPath::top(0).child(0, 0).child(0, 0);
        assert!(check_bounds_at(&p, &store, &mut reg, &check).is_ok());
    }

    #[test]
    fn scoped_check_registers_preceding_sibling_shapes() {
        // tmp is allocated by an earlier sibling; the scoped check of the
        // second loop must know tmp's shape to verify (and reject) it.
        let mut b = ProcBuilder::new("p");
        let tmp = b.alloc(
            "tmp",
            DataType::F32,
            vec![Expr::int(4)],
            exo_core::types::MemName::dram(),
        );
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.assign(tmp, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let check = SharedCheckCtx::process();
        let errs = check_bounds_at(&p, &StmtPath::top(1), &mut reg, &check).unwrap_err();
        assert!(errs[0].message.contains("out of bounds"), "{:?}", errs);
    }

    #[test]
    fn stale_scope_falls_back_to_full_check() {
        let p = two_loop_proc();
        let mut reg = GlobalReg::new();
        let check = SharedCheckCtx::process();
        // path points past the end of the body: full (failing) recheck
        assert!(check_bounds_at(&p, &StmtPath::top(7), &mut reg, &check).is_err());
    }
}
