//! Contextual analyses (paper §6): everything a rewrite needs to know
//! about *where* in a procedure it is being applied.
//!
//! For a site (a statement path), we derive: `CtrlPred` — the condition
//! under which the site executes; `PreValG` — the symbolic values of
//! configuration fields on entry to the site; and `PostEff` — a
//! conservative effect of the code executing after the site. The
//! context-extension rule (§6.2) combines these to lift a local
//! equivalence to an equivalence of whole procedures.

use exo_core::ir::{ArgType, Block, Expr, Proc, Stmt};
use exo_core::path::{PathStep, StmtPath};
use exo_core::Sym;
use exo_smt::formula::Formula;

use crate::check::{EffectMemo, SharedCheckCtx};
use crate::effects::{effect_of_block, Effect, ExtractCtx, SymView};
use crate::effexpr::{EffExpr, LowerCtx};
use crate::globals::{lift_in_env, val_g_block, GlobalEnv, GlobalReg};

/// An enclosing loop binder with its (dataflow-lifted) bounds.
#[derive(Clone, PartialEq, Debug)]
pub struct Binder {
    /// Iteration variable.
    pub var: Sym,
    /// Lower bound.
    pub lo: EffExpr,
    /// Upper bound.
    pub hi: EffExpr,
}

/// Everything known about a rewrite site.
#[derive(Debug)]
pub struct SiteCtx {
    /// Enclosing loop binders, outermost first.
    pub binders: Vec<Binder>,
    /// Enclosing guard conditions (negated for else-branches).
    pub guards: Vec<EffExpr>,
    /// `PreValG`: symbolic configuration state on entry to the site.
    pub genv: GlobalEnv,
    /// Procedure preconditions plus `size`-argument positivity, lifted.
    pub preds: Vec<EffExpr>,
}

impl SiteCtx {
    /// `CtrlPred` as one ternary expression (conjunction of binder
    /// bounds and guards).
    pub fn ctrl_pred(&self) -> EffExpr {
        let mut acc = EffExpr::Bool(true);
        for b in &self.binders {
            acc = acc.and(crate::conditions::bd(b.var, &b.lo, &b.hi));
        }
        for g in &self.guards {
            acc = acc.and(g.clone());
        }
        acc
    }

    /// The classical assumption formula for solver queries at this site:
    /// preconditions hold and the site executes (`M CtrlPred` — rewrites
    /// need only be safe when the code actually runs).
    pub fn assumptions(&self, ctx: &mut LowerCtx) -> Formula {
        let mut parts = Vec::new();
        for p in &self.preds {
            parts.push(ctx.lower_bool(p).definitely());
        }
        parts.push(ctx.lower_bool(&self.ctrl_pred()).maybe());
        Formula::and(parts)
    }
}

/// Builds the [`SiteCtx`] for a statement path within a procedure.
///
/// Returns `None` if the path is invalid.
pub fn site_ctx(proc: &Proc, path: &StmtPath, reg: &mut GlobalReg) -> Option<SiteCtx> {
    let mut binders = Vec::new();
    let mut guards = Vec::new();
    let mut genv = GlobalEnv::identity();

    let mut preds: Vec<EffExpr> = Vec::new();
    for arg in &proc.args {
        if matches!(arg.ty, ArgType::Ctrl(exo_core::CtrlType::Size)) {
            preds.push(EffExpr::Int(1).le(EffExpr::Var(arg.name)));
        }
    }
    for p in &proc.preds {
        preds.push(lift_in_env(p, &GlobalEnv::identity(), reg));
    }

    let mut block: &Block = &proc.body;
    let steps = &path.0;
    for (depth, step) in steps.iter().enumerate() {
        let PathStep { idx, .. } = *step;
        // dataflow over preceding siblings
        let preceding = &block[..idx.min(block.len())];
        genv = val_g_block(preceding, genv, reg);
        let stmt = block.get(idx)?;
        if depth + 1 == steps.len() {
            return Some(SiteCtx {
                binders,
                guards,
                genv,
                preds,
            });
        }
        // descend
        match (stmt, steps[depth + 1].block) {
            (Stmt::For { iter, lo, hi, body }, 0) => {
                let lo_e = lift_in_env(lo, &genv, reg);
                let hi_e = lift_in_env(hi, &genv, reg);
                binders.push(Binder {
                    var: *iter,
                    lo: lo_e,
                    hi: hi_e,
                });
                // entering a loop body mid-iteration: fields possibly
                // modified by the body (or iteration-dependent) are ⊥
                genv = loop_entry_env(genv, body, *iter, reg);
                block = body;
            }
            (Stmt::If { cond, body, .. }, 0) => {
                guards.push(lift_in_env(cond, &genv, reg));
                block = body;
            }
            (Stmt::If { cond, orelse, .. }, 1) => {
                guards.push(EffExpr::Not(Box::new(lift_in_env(cond, &genv, reg))));
                block = orelse;
            }
            _ => return None,
        }
    }
    None
}

/// Approximates the dataflow environment at the *start of an iteration*
/// of a loop: the join of the entry environment with "some iterations
/// already ran" (fields the body may change become ⊥).
fn loop_entry_env(entry: GlobalEnv, body: &Block, iter: Sym, reg: &mut GlobalReg) -> GlobalEnv {
    let after = val_g_block(body, entry.clone(), reg);
    let mut out = entry.clone();
    let keys: Vec<(Sym, Sym)> = after.touched().copied().collect();
    for (c, f) in keys {
        let va = entry.value(c, f, reg);
        let vb = after.value(c, f, reg);
        let mut fv = std::collections::BTreeSet::new();
        vb.free_vars(&mut fv);
        if va == vb && !fv.contains(&iter) {
            continue;
        }
        out.set(c, f, EffExpr::Unknown);
    }
    out
}

/// `PostEff`: a conservative effect of everything that executes after
/// the site (later siblings at every level, plus — for enclosing loops —
/// the whole loop again, covering the remaining iterations).
pub fn post_effect(proc: &Proc, path: &StmtPath, reg: &mut GlobalReg) -> Effect {
    let mut scratch = EffectMemo::default();
    post_effect_cached(proc, path, reg, &mut scratch)
}

/// As [`post_effect`], but reusing (and extending) a shared memo of
/// per-statement effect summaries across calls.
pub fn post_effect_cached(
    proc: &Proc,
    path: &StmtPath,
    reg: &mut GlobalReg,
    memo: &mut EffectMemo,
) -> Effect {
    let mut parts: Vec<Effect> = Vec::new();
    collect_post(proc, &proc.body, &path.0, reg, memo, &mut parts);
    Effect::seq_all(parts)
}

fn collect_post(
    proc: &Proc,
    block: &Block,
    steps: &[PathStep],
    reg: &mut GlobalReg,
    memo: &mut EffectMemo,
    out: &mut Vec<Effect>,
) {
    let Some(step) = steps.first() else { return };
    let idx = step.idx;
    // recurse first (innermost trailing statements execute earliest, but
    // order is irrelevant for the conservative union we build here)
    if steps.len() > 1 {
        if let Some(stmt) = block.get(idx) {
            let inner_block = match (stmt, steps[1].block) {
                (Stmt::For { body, .. }, 0) => Some(body),
                (Stmt::If { body, .. }, 0) => Some(body),
                (Stmt::If { orelse, .. }, 1) => Some(orelse),
                _ => None,
            };
            if let Some(b) = inner_block {
                collect_post(proc, b, &steps[1..], reg, memo, out);
            }
            // an enclosing loop may run further iterations containing the
            // site and everything around it: approximate with the whole
            // loop's effect
            if matches!(stmt, Stmt::For { .. }) {
                out.push(effect_of_stmts(proc, std::slice::from_ref(stmt), reg, memo));
            }
        }
    }
    // later siblings in this block
    if idx < block.len() {
        out.push(effect_of_stmts(proc, &block[idx + 1..], reg, memo));
    }
}

fn effect_of_stmts(
    proc: &Proc,
    stmts: &[Stmt],
    reg: &mut GlobalReg,
    memo: &mut EffectMemo,
) -> Effect {
    effect_of_stmts_cached(proc, stmts, &GlobalEnv::identity(), reg, memo)
}

/// Extracts the effect of statements as they appear at a site: views are
/// seeded from every allocation/window in the procedure, and the
/// dataflow environment (`PreValG`) is taken from the site.
pub fn effect_of_stmts_at(
    proc: &Proc,
    stmts: &[Stmt],
    genv: &GlobalEnv,
    reg: &mut GlobalReg,
) -> Effect {
    let mut ctx = ExtractCtx::for_proc(proc, reg);
    seed_views(&proc.body, &mut ctx);
    ctx.genv = genv.clone();
    effect_of_block(stmts, &mut ctx)
}

/// As [`effect_of_stmts_at`], but consulting the per-statement effect
/// memo first.
///
/// Each statement is summarized independently; the memo key fingerprints
/// the statement itself (symbol identities included), the procedure's
/// window definitions and tensor-argument ranks (anything that changes
/// how accesses resolve to root buffers), and the statement's entry
/// dataflow environment. A hit restores both the summary and the exit
/// environment recorded when the summary was first derived, so cached and
/// uncached extraction are observationally identical.
pub fn effect_of_stmts_cached(
    proc: &Proc,
    stmts: &[Stmt],
    genv: &GlobalEnv,
    reg: &mut GlobalReg,
    memo: &mut EffectMemo,
) -> Effect {
    let views_fp = views_fingerprint(proc);
    let mut ctx = ExtractCtx::for_proc(proc, reg);
    seed_views(&proc.body, &mut ctx);
    ctx.genv = genv.clone();
    let mut parts = Vec::new();
    for s in stmts {
        let genv_fp = genv_fingerprint(&ctx.genv, &mut *ctx.reg);
        let key = format!("{s:?}|{views_fp}|{genv_fp}");
        match memo.get(&key) {
            Some((eff, genv_after)) => {
                ctx.genv = genv_after;
                parts.push(eff);
            }
            None => {
                let eff = effect_of_block(std::slice::from_ref(s), &mut ctx);
                memo.insert(key, eff.clone(), ctx.genv.clone());
                parts.push(eff);
            }
        }
    }
    Effect::seq_all(parts)
}

/// Fingerprint of everything *outside* a statement that effect extraction
/// reads through the view map: window definitions anywhere in the body
/// (a rewrite may re-coordinate a window while its readers stay textually
/// identical) and tensor-argument ranks. Identity views from allocations
/// are deliberately excluded — they are derived from the allocation name
/// alone, which the statement fingerprint already pins down.
fn views_fingerprint(proc: &Proc) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for arg in &proc.args {
        if let ArgType::Tensor { shape, .. } = &arg.ty {
            let _ = write!(out, "a{}:{};", arg.name.id(), shape.len());
        }
    }
    fn go(block: &Block, out: &mut String) {
        for s in block {
            match s {
                Stmt::WindowDef { .. } => {
                    let _ = write!(out, "{s:?};");
                }
                Stmt::For { body, .. } => go(body, out),
                Stmt::If { body, orelse, .. } => {
                    go(body, out);
                    go(orelse, out);
                }
                _ => {}
            }
        }
    }
    go(&proc.body, &mut out);
    out
}

/// Deterministic fingerprint of the touched entries of a dataflow
/// environment (sorted by canonical field symbol).
fn genv_fingerprint(genv: &GlobalEnv, reg: &mut GlobalReg) -> String {
    use std::fmt::Write;
    let mut keys: Vec<(Sym, Sym)> = genv.touched().copied().collect();
    keys.sort();
    let mut out = String::new();
    for (c, f) in keys {
        let _ = write!(out, "{}.{}={:?};", c.id(), f.id(), genv.value(c, f, reg));
    }
    out
}

fn seed_views(block: &Block, ctx: &mut ExtractCtx<'_>) {
    for s in block {
        match s {
            Stmt::Alloc { name, shape, .. } => {
                ctx.views
                    .insert(*name, SymView::identity(*name, shape.len()));
            }
            Stmt::WindowDef {
                name,
                rhs: Expr::Window { buf, coords },
            } => {
                let base = ctx
                    .views
                    .get(buf)
                    .cloned()
                    .unwrap_or_else(|| SymView::identity(*buf, coords.len()));
                let v = base.window(coords, ctx);
                ctx.views.insert(*name, v);
            }
            Stmt::For { body, .. } => seed_views(body, ctx),
            Stmt::If { body, orelse, .. } => {
                seed_views(body, ctx);
                seed_views(orelse, ctx);
            }
            _ => {}
        }
    }
}

/// The context-extension check (§6.2): given the set `polluted` of
/// globals a local rewrite fails to preserve, the whole-procedure
/// equivalence holds modulo `polluted` provided the post-context
/// definitely does not read any of them:
/// `D(Rdg(PostEff) ∩ polluted = ∅)`.
pub fn context_extension_ok(
    proc: &Proc,
    path: &StmtPath,
    polluted: &[(Sym, Sym)],
    reg: &mut GlobalReg,
    check: &SharedCheckCtx,
) -> bool {
    if polluted.is_empty() {
        return true;
    }
    let mut ck = check.lock();
    let post = post_effect_cached(proc, path, reg, &mut ck.effects);
    let sets = crate::locset::sets_of(&post);
    let mut ctx = LowerCtx::new();
    let mut parts = Vec::new();
    for &(c, f) in polluted {
        let m = crate::locset::member(&sets.rd_g, &crate::locset::Target::Global(c, f), &mut ctx);
        parts.push(m.maybe().negate());
    }
    let goal = ctx.assumptions().implies(Formula::and(parts));
    ck.check_valid(&goal).is_yes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::ProcBuilder;
    use exo_core::types::DataType;

    #[test]
    fn binders_and_guards_collected() {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        b.begin_if(Expr::var(i).lt(Expr::int(4)));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_if();
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        // path: for(0) → if(0) → assign(0)
        let path = StmtPath::top(0).child(0, 0).child(0, 0);
        let site = site_ctx(&p, &path, &mut reg).expect("valid path");
        assert_eq!(site.binders.len(), 1);
        assert_eq!(site.binders[0].var, i);
        assert_eq!(site.guards.len(), 1);
        // size positivity + no explicit preds
        assert_eq!(site.preds.len(), 1);
    }

    #[test]
    fn pre_valg_sees_earlier_writes() {
        let c = Sym::new("Cfg");
        let f = Sym::new("s");
        let mut b = ProcBuilder::new("p");
        b.write_config(c, f, Expr::int(9));
        b.stmt(Stmt::Pass);
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let site = site_ctx(&p, &StmtPath::top(1), &mut reg).unwrap();
        assert_eq!(site.genv.value(c, f, &mut reg), EffExpr::Int(9));
    }

    #[test]
    fn post_effect_covers_later_siblings_and_loop_reentry() {
        let c = Sym::new("Cfg");
        let f = Sym::new("s");
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.write_config(c, f, Expr::int(1));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        // site = the assign inside the loop
        let path = StmtPath::top(0).child(0, 0);
        let post = post_effect(&p, &path, &mut reg);
        // must include the config write (later sibling) and the loop
        // re-entry approximation
        let txt = format!("{post:?}");
        assert!(txt.contains("GlobalWrite"), "{txt}");
        assert!(txt.contains("Loop"), "{txt}");
    }

    #[test]
    fn context_extension_rejects_polluted_read() {
        let c = Sym::new("Cfg");
        let f = Sym::new("s");
        // site at stmt 0; stmt 1 reads Cfg.s via an if-condition
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(2)]);
        b.stmt(Stmt::Pass);
        b.begin_if(
            Expr::ReadConfig {
                config: c,
                field: f,
            }
            .eq(Expr::int(0)),
        );
        b.assign(a, vec![Expr::int(0)], Expr::float(1.0));
        b.end_if();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let check = SharedCheckCtx::process();
        assert!(!context_extension_ok(
            &p,
            &StmtPath::top(0),
            &[(c, f)],
            &mut reg,
            &check
        ));
        // polluting a *different* field is fine
        let g = Sym::new("other");
        assert!(context_extension_ok(
            &p,
            &StmtPath::top(0),
            &[(c, g)],
            &mut reg,
            &check
        ));
    }

    #[test]
    fn effect_memo_reuses_per_statement_summaries() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        b.stmt(Stmt::Pass);
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let mut memo = EffectMemo::default();
        let e1 = effect_of_stmts_cached(&p, &p.body, &GlobalEnv::identity(), &mut reg, &mut memo);
        let fresh = effect_of_stmts_at(&p, &p.body, &GlobalEnv::identity(), &mut reg);
        assert_eq!(e1, fresh);
        let before = memo.len();
        let e2 = effect_of_stmts_cached(&p, &p.body, &GlobalEnv::identity(), &mut reg, &mut memo);
        assert_eq!(e1, e2);
        assert_eq!(memo.len(), before, "second pass must not add entries");
    }

    #[test]
    fn effect_memo_distinguishes_entry_envs() {
        let c = Sym::new("Cfg");
        let f = Sym::new("s");
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        b.assign(
            a,
            vec![Expr::ReadConfig {
                config: c,
                field: f,
            }],
            Expr::float(0.0),
        );
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let mut memo = EffectMemo::default();
        let mut env1 = GlobalEnv::identity();
        env1.set(c, f, EffExpr::Int(1));
        let mut env2 = GlobalEnv::identity();
        env2.set(c, f, EffExpr::Int(2));
        let e1 = effect_of_stmts_cached(&p, &p.body, &env1, &mut reg, &mut memo);
        let e2 = effect_of_stmts_cached(&p, &p.body, &env2, &mut reg, &mut memo);
        assert_ne!(e1, e2, "different config values must not share an entry");
    }
}
