//! Location sets (paper §5.4–5.5): symbolic abstractions of sets of
//! store locations, with ternary membership and the definitely/maybe
//! collapses.
//!
//! Because effect expressions are three-valued, a location set carries an
//! upper and a lower bound on the real set: points definitely in, points
//! definitely out, and a penumbra. `D`/`M` collapse membership back to
//! classical formulas for the solver.

use std::collections::HashMap;

use exo_core::Sym;
use exo_smt::formula::Formula;
use exo_smt::linear::LinExpr;

use crate::effects::Effect;
use crate::effexpr::{EffExpr, LBool, LowerCtx};

/// A symbolic set of store locations.
#[derive(Clone, PartialEq, Debug)]
pub enum LocSet {
    /// The empty set.
    Empty,
    /// One buffer point `{x, ee*}`.
    BufPoint {
        /// Buffer symbol.
        buf: Sym,
        /// Symbolic coordinates.
        idx: Vec<EffExpr>,
    },
    /// One global (configuration field).
    Global(Sym, Sym),
    /// Finite union.
    Union(Vec<LocSet>),
    /// Union over all integer values of a variable (`⋃ₓ L`); bounds are
    /// expressed by `Filter`s inside the body.
    BigUnion {
        /// Bound variable.
        var: Sym,
        /// Body set.
        body: Box<LocSet>,
    },
    /// Restriction by a ternary condition (`filter(ee, L)`).
    Filter(EffExpr, Box<LocSet>),
    /// Set difference.
    Diff(Box<LocSet>, Box<LocSet>),
    /// Removal of every point on the named buffers (allocation masking,
    /// `L − A(a)`).
    DiffBufs(Box<LocSet>, Vec<Sym>),
}

impl LocSet {
    /// Finite union with unit elimination.
    pub fn union(parts: Vec<LocSet>) -> LocSet {
        let mut out = Vec::new();
        for p in parts {
            match p {
                LocSet::Empty => {}
                LocSet::Union(inner) => out.extend(inner),
                p => out.push(p),
            }
        }
        match out.len() {
            0 => LocSet::Empty,
            1 => out.pop().unwrap_or(LocSet::Empty),
            _ => LocSet::Union(out),
        }
    }

    /// Difference with unit elimination.
    pub fn diff(a: LocSet, b: LocSet) -> LocSet {
        match (&a, &b) {
            (LocSet::Empty, _) => LocSet::Empty,
            (_, LocSet::Empty) => a,
            _ => LocSet::Diff(Box::new(a), Box::new(b)),
        }
    }

    /// Buffer-name masking with unit elimination.
    pub fn diff_bufs(a: LocSet, bufs: Vec<Sym>) -> LocSet {
        if bufs.is_empty() || a == LocSet::Empty {
            a
        } else {
            LocSet::DiffBufs(Box::new(a), bufs)
        }
    }

    /// Filtering with unit elimination.
    pub fn filter(cond: EffExpr, a: LocSet) -> LocSet {
        match a {
            LocSet::Empty => LocSet::Empty,
            a => LocSet::Filter(cond, Box::new(a)),
        }
    }

    /// Collects every buffer mentioned, with the maximum coordinate rank
    /// seen, and every global mentioned.
    pub fn collect_targets(&self, bufs: &mut HashMap<Sym, usize>, globals: &mut Vec<(Sym, Sym)>) {
        match self {
            LocSet::Empty => {}
            LocSet::BufPoint { buf, idx } => {
                let r = bufs.entry(*buf).or_insert(idx.len());
                *r = (*r).max(idx.len());
            }
            LocSet::Global(c, f) => {
                if !globals.contains(&(*c, *f)) {
                    globals.push((*c, *f));
                }
            }
            LocSet::Union(parts) => parts.iter().for_each(|p| p.collect_targets(bufs, globals)),
            LocSet::BigUnion { body, .. } | LocSet::Filter(_, body) => {
                body.collect_targets(bufs, globals)
            }
            LocSet::Diff(a, b) => {
                a.collect_targets(bufs, globals);
                b.collect_targets(bufs, globals);
            }
            LocSet::DiffBufs(a, _) => a.collect_targets(bufs, globals),
        }
    }
}

/// A membership target: one symbolic point.
#[derive(Clone, Debug)]
pub enum Target {
    /// A point on a buffer, with one fresh coordinate variable per
    /// dimension.
    Buf {
        /// Buffer symbol.
        buf: Sym,
        /// Fresh coordinate variables.
        coords: Vec<Sym>,
    },
    /// A global (configuration field).
    Global(Sym, Sym),
}

/// Ternary membership `target ∈ set` (paper §5.4).
pub fn member(set: &LocSet, target: &Target, ctx: &mut LowerCtx) -> LBool {
    match set {
        LocSet::Empty => LBool::known(Formula::False),
        LocSet::BufPoint { buf, idx } => match target {
            Target::Buf { buf: tb, coords } if tb == buf => {
                if coords.len() != idx.len() {
                    // rank mismatch on same buffer: treat as unknown
                    // membership (should not happen for well-typed code)
                    return LBool {
                        def: Formula::False,
                        val: Formula::True,
                    };
                }
                let mut def = Vec::new();
                let mut val = Vec::new();
                for (e, c) in idx.iter().zip(coords) {
                    let li = ctx.lower_int(e);
                    def.push(li.def);
                    val.push(Formula::eq(li.val, LinExpr::var(*c)));
                }
                LBool {
                    def: Formula::and(def),
                    val: Formula::and(val),
                }
            }
            _ => LBool::known(Formula::False),
        },
        LocSet::Global(c, f) => match target {
            Target::Global(tc, tf) if tc == c && tf == f => LBool::known(Formula::True),
            _ => LBool::known(Formula::False),
        },
        LocSet::Union(parts) => {
            let mut acc = LBool::known(Formula::False);
            for p in parts {
                let m = member(p, target, ctx);
                acc = acc.or(&m);
            }
            acc
        }
        LocSet::BigUnion { var, body } => {
            // freshen the binder to avoid capture, then quantify:
            //   val  = ∃x. val(p)
            //   def  = (∃x. D p) ∨ (∀x. D ¬p)
            let fresh = var.copy();
            let mut map = HashMap::new();
            map.insert(*var, EffExpr::Var(fresh));
            let body = subst_set(body, &map);
            let m = member(&body, target, ctx);
            let d_true = m.definitely().exists(fresh);
            let d_false = m.negate().definitely().forall(fresh);
            LBool {
                def: Formula::or(vec![d_true, d_false]),
                val: m.val.exists(fresh),
            }
        }
        LocSet::Filter(cond, body) => {
            let c = ctx.lower_bool(cond);
            let m = member(body, target, ctx);
            c.and(&m)
        }
        LocSet::Diff(a, b) => {
            let ma = member(a, target, ctx);
            let mb = member(b, target, ctx);
            ma.and(&mb.negate())
        }
        LocSet::DiffBufs(a, bufs) => match target {
            Target::Buf { buf, .. } if bufs.contains(buf) => LBool::known(Formula::False),
            _ => member(a, target, ctx),
        },
    }
}

/// Substitutes control variables through a set.
pub fn subst_set(set: &LocSet, map: &HashMap<Sym, EffExpr>) -> LocSet {
    match set {
        LocSet::Empty => LocSet::Empty,
        LocSet::BufPoint { buf, idx } => LocSet::BufPoint {
            buf: *buf,
            idx: idx.iter().map(|e| e.subst(map)).collect(),
        },
        LocSet::Global(c, f) => LocSet::Global(*c, *f),
        LocSet::Union(parts) => LocSet::Union(parts.iter().map(|p| subst_set(p, map)).collect()),
        LocSet::BigUnion { var, body } => {
            let mut inner = map.clone();
            inner.remove(var);
            LocSet::BigUnion {
                var: *var,
                body: Box::new(subst_set(body, &inner)),
            }
        }
        LocSet::Filter(c, body) => LocSet::Filter(c.subst(map), Box::new(subst_set(body, map))),
        LocSet::Diff(a, b) => {
            LocSet::Diff(Box::new(subst_set(a, map)), Box::new(subst_set(b, map)))
        }
        LocSet::DiffBufs(a, bufs) => LocSet::DiffBufs(Box::new(subst_set(a, map)), bufs.clone()),
    }
}

/// The bundle of primitive location sets for one effect (Def. 5.5).
#[derive(Clone, Debug)]
pub struct SetBundle {
    /// Global reads.
    pub rd_g: LocSet,
    /// Global writes.
    pub wr_g: LocSet,
    /// Heap (buffer) reads.
    pub rd_h: LocSet,
    /// Heap writes.
    pub wr_h: LocSet,
    /// Heap reductions.
    pub rp_h: LocSet,
    /// Buffers allocated (visible to subsequent statements).
    pub allocs: Vec<Sym>,
}

impl SetBundle {
    fn empty() -> SetBundle {
        SetBundle {
            rd_g: LocSet::Empty,
            wr_g: LocSet::Empty,
            rd_h: LocSet::Empty,
            wr_h: LocSet::Empty,
            rp_h: LocSet::Empty,
            allocs: Vec::new(),
        }
    }

    /// `Rd a = Rdg a ∪ Rdh a`.
    pub fn rd(&self) -> LocSet {
        LocSet::union(vec![self.rd_g.clone(), self.rd_h.clone()])
    }

    /// `Wr a = Wrg a ∪ Wrh a`.
    pub fn wr(&self) -> LocSet {
        LocSet::union(vec![self.wr_g.clone(), self.wr_h.clone()])
    }

    /// `R+ a = R+h a − Wrh a` (locations purely reduced).
    pub fn rplus(&self) -> LocSet {
        LocSet::diff(self.rp_h.clone(), self.wr_h.clone())
    }

    /// `Mod a = Wr a ∪ R+ a`.
    pub fn modified(&self) -> LocSet {
        LocSet::union(vec![self.wr(), self.rplus()])
    }

    /// `All a = Rd a ∪ Wr a ∪ R+ a`.
    pub fn all(&self) -> LocSet {
        LocSet::union(vec![self.rd(), self.wr(), self.rplus()])
    }
}

/// Computes the primitive sets of an effect, per Def. 5.5 (including the
/// sequencing rules that mask reads of freshly written locations and
/// anything on freshly allocated buffers).
pub fn sets_of(effect: &Effect) -> SetBundle {
    match effect {
        Effect::Empty => SetBundle::empty(),
        Effect::Seq(parts) => {
            let mut acc = SetBundle::empty();
            for p in parts {
                let b = sets_of(p);
                acc = seq_bundles(acc, b);
            }
            acc
        }
        Effect::Guard(c, body) => {
            let b = sets_of(body);
            SetBundle {
                rd_g: LocSet::filter(c.clone(), b.rd_g),
                wr_g: LocSet::filter(c.clone(), b.wr_g),
                rd_h: LocSet::filter(c.clone(), b.rd_h),
                wr_h: LocSet::filter(c.clone(), b.wr_h),
                rp_h: LocSet::filter(c.clone(), b.rp_h),
                allocs: b.allocs,
            }
        }
        Effect::Loop { var, lo, hi, body } => {
            let b = sets_of(body);
            let bound = EffExpr::Bin(
                exo_core::BinOp::And,
                Box::new(lo.clone().le(EffExpr::Var(*var))),
                Box::new(EffExpr::Var(*var).lt(hi.clone())),
            );
            let wrap = |s: LocSet| LocSet::BigUnion {
                var: *var,
                body: Box::new(LocSet::filter(bound.clone(), s)),
            };
            SetBundle {
                rd_g: wrap(b.rd_g),
                wr_g: wrap(b.wr_g),
                rd_h: wrap(b.rd_h),
                wr_h: wrap(b.wr_h),
                rp_h: wrap(b.rp_h),
                allocs: b.allocs,
            }
        }
        Effect::GlobalRead(c, f) => SetBundle {
            rd_g: LocSet::Global(*c, *f),
            ..SetBundle::empty()
        },
        Effect::GlobalWrite(c, f) => SetBundle {
            wr_g: LocSet::Global(*c, *f),
            ..SetBundle::empty()
        },
        Effect::Read(b, idx) => SetBundle {
            rd_h: LocSet::BufPoint {
                buf: *b,
                idx: idx.clone(),
            },
            ..SetBundle::empty()
        },
        Effect::Write(b, idx) => SetBundle {
            wr_h: LocSet::BufPoint {
                buf: *b,
                idx: idx.clone(),
            },
            ..SetBundle::empty()
        },
        Effect::Reduce(b, idx) => SetBundle {
            rp_h: LocSet::BufPoint {
                buf: *b,
                idx: idx.clone(),
            },
            ..SetBundle::empty()
        },
        Effect::Alloc(b) => SetBundle {
            allocs: vec![*b],
            ..SetBundle::empty()
        },
    }
}

fn seq_bundles(a1: SetBundle, a2: SetBundle) -> SetBundle {
    // Def. 5.5 sequencing:
    //   Rdg (a1;a2) = Rdg a1 ∪ (Rdg a2 − Wrg a1 − A a1)
    //   Wrg (a1;a2) = Wrg a1 ∪ (Wrg a2 − A a1)
    //   Rdh (a1;a2) = Rdh a1 ∪ (Rdh a2 − Wrh a1 − A a1)
    //   Wrh (a1;a2) = Wrh a1 ∪ (Wrh a2 − A a1)
    //   R+h (a1;a2) = R+h a1 ∪ (R+h a2 − A a1)
    let mask = |s: LocSet| LocSet::diff_bufs(s, a1.allocs.clone());
    let rd_g = LocSet::union(vec![
        a1.rd_g.clone(),
        mask(LocSet::diff(a2.rd_g, a1.wr_g.clone())),
    ]);
    let wr_g = LocSet::union(vec![a1.wr_g, mask(a2.wr_g)]);
    let rd_h = LocSet::union(vec![
        a1.rd_h.clone(),
        mask(LocSet::diff(a2.rd_h, a1.wr_h.clone())),
    ]);
    let wr_h = LocSet::union(vec![a1.wr_h, mask(a2.wr_h)]);
    let rp_h = LocSet::union(vec![a1.rp_h, mask(a2.rp_h)]);
    let mut allocs = a1.allocs;
    allocs.extend(a2.allocs);
    SetBundle {
        rd_g,
        wr_g,
        rd_h,
        wr_h,
        rp_h,
        allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::SharedCheckCtx;
    use exo_smt::solver::Answer;

    fn solve_valid(ctx: &LowerCtx, goal: Formula) -> Answer {
        let s = SharedCheckCtx::process();
        s.check_valid(&ctx.assumptions().implies(goal))
    }

    #[test]
    fn point_membership() {
        let b = Sym::new("A");
        let set = LocSet::BufPoint {
            buf: b,
            idx: vec![EffExpr::Int(3)],
        };
        let c = Sym::new("c");
        let tgt = Target::Buf {
            buf: b,
            coords: vec![c],
        };
        let mut ctx = LowerCtx::new();
        let m = member(&set, &tgt, &mut ctx);
        // membership holds exactly when c == 3
        let s = SharedCheckCtx::process();
        let is_three = Formula::eq(LinExpr::var(c), LinExpr::constant(3));
        assert_eq!(s.check_valid(&m.definitely().iff(is_three)), Answer::Yes);
    }

    #[test]
    fn different_buffers_never_member() {
        let a = Sym::new("A");
        let b = Sym::new("B");
        let set = LocSet::BufPoint {
            buf: a,
            idx: vec![EffExpr::Int(0)],
        };
        let tgt = Target::Buf {
            buf: b,
            coords: vec![Sym::new("c")],
        };
        let mut ctx = LowerCtx::new();
        let m = member(&set, &tgt, &mut ctx);
        assert_eq!(m.val, Formula::False);
    }

    #[test]
    fn big_union_membership_is_existential() {
        // ⋃_i filter(0 ≤ i < 4, {A, 2·i}) contains exactly even c ∈ [0,8)
        let a = Sym::new("A");
        let i = Sym::new("i");
        let set = LocSet::BigUnion {
            var: i,
            body: Box::new(LocSet::filter(
                EffExpr::Int(0)
                    .le(EffExpr::Var(i))
                    .and(EffExpr::Var(i).lt(EffExpr::Int(4))),
                LocSet::BufPoint {
                    buf: a,
                    idx: vec![EffExpr::bin(
                        exo_core::BinOp::Mul,
                        EffExpr::Int(2),
                        EffExpr::Var(i),
                    )],
                },
            )),
        };
        let c = Sym::new("c");
        let tgt = Target::Buf {
            buf: a,
            coords: vec![c],
        };
        let mut ctx = LowerCtx::new();
        let m = member(&set, &tgt, &mut ctx);
        let s = SharedCheckCtx::process();
        // c = 6 is in
        let at6 = m.definitely().subst(c, &LinExpr::constant(6));
        assert_eq!(s.check_valid(&ctx.assumptions().implies(at6)), Answer::Yes);
        // c = 5 is out, c = 8 is out
        for v in [5, 8] {
            let at = m.maybe().subst(c, &LinExpr::constant(v)).negate();
            assert_eq!(
                s.check_valid(&ctx.assumptions().implies(at)),
                Answer::Yes,
                "c = {v}"
            );
        }
    }

    #[test]
    fn filter_with_unknown_is_maybe() {
        let a = Sym::new("A");
        let set = LocSet::filter(
            EffExpr::Unknown,
            LocSet::BufPoint {
                buf: a,
                idx: vec![EffExpr::Int(0)],
            },
        );
        let c = Sym::new("c");
        let tgt = Target::Buf {
            buf: a,
            coords: vec![c],
        };
        let mut ctx = LowerCtx::new();
        let m = member(&set, &tgt, &mut ctx);
        // at c = 0: not definitely in, but maybe in
        let d = m.definitely().subst(c, &LinExpr::constant(0));
        let mm = m.maybe().subst(c, &LinExpr::constant(0));
        assert_eq!(solve_valid(&ctx, d), Answer::No);
        assert_eq!(solve_valid(&ctx, mm), Answer::Yes);
    }

    #[test]
    fn alloc_masking_hides_fresh_buffers() {
        // effect: alloc t; read t[0]; read A[0]
        let t = Sym::new("t");
        let a = Sym::new("A");
        let eff = Effect::seq_all(vec![
            Effect::Alloc(t),
            Effect::Read(t, vec![EffExpr::Int(0)]),
            Effect::Read(a, vec![EffExpr::Int(0)]),
        ]);
        let sets = sets_of(&eff);
        // t's read is masked (it is a fresh allocation); A's read is not
        let ct = Sym::new("ct");
        let mut ctx = LowerCtx::new();
        let m_t = member(
            &sets.rd(),
            &Target::Buf {
                buf: t,
                coords: vec![ct],
            },
            &mut ctx,
        );
        assert_eq!(solve_valid(&ctx, m_t.maybe().negate()), Answer::Yes);
        let ca = Sym::new("ca");
        let m_a = member(
            &sets.rd(),
            &Target::Buf {
                buf: a,
                coords: vec![ca],
            },
            &mut ctx,
        );
        let at0 = m_a.definitely().subst(ca, &LinExpr::constant(0));
        assert_eq!(solve_valid(&ctx, at0), Answer::Yes);
    }

    #[test]
    fn read_after_write_masked_in_seq() {
        // A[0] = …; x = A[0]  ⇒  the sequence does not *read* A[0] from
        // the initial store
        let a = Sym::new("A");
        let eff = Effect::seq_all(vec![
            Effect::Write(a, vec![EffExpr::Int(0)]),
            Effect::Read(a, vec![EffExpr::Int(0)]),
            Effect::Read(a, vec![EffExpr::Int(1)]),
        ]);
        let sets = sets_of(&eff);
        let c = Sym::new("c");
        let mut ctx = LowerCtx::new();
        let m = member(
            &sets.rd(),
            &Target::Buf {
                buf: a,
                coords: vec![c],
            },
            &mut ctx,
        );
        let at0 = m.maybe().subst(c, &LinExpr::constant(0)).negate();
        assert_eq!(
            solve_valid(&ctx, at0),
            Answer::Yes,
            "read of A[0] is masked"
        );
        let at1 = m.definitely().subst(c, &LinExpr::constant(1));
        assert_eq!(solve_valid(&ctx, at1), Answer::Yes, "read of A[1] remains");
    }

    #[test]
    fn reduce_not_in_write_set() {
        let a = Sym::new("A");
        let eff = Effect::Reduce(a, vec![EffExpr::Int(0)]);
        let sets = sets_of(&eff);
        let c = Sym::new("c");
        let mut ctx = LowerCtx::new();
        let mw = member(
            &sets.wr(),
            &Target::Buf {
                buf: a,
                coords: vec![c],
            },
            &mut ctx,
        );
        assert_eq!(solve_valid(&ctx, mw.maybe().negate()), Answer::Yes);
        let mr = member(
            &sets.rplus(),
            &Target::Buf {
                buf: a,
                coords: vec![c],
            },
            &mut ctx,
        );
        let at0 = mr.definitely().subst(c, &LinExpr::constant(0));
        assert_eq!(solve_valid(&ctx, at0), Answer::Yes);
    }
}
