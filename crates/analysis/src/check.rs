//! The shared checking context: one reusable solver plus a canonical
//! verdict cache.
//!
//! Every scheduling operator is independently checked (paper §3.3), and a
//! long schedule re-derives near-identical safety obligations after every
//! rewrite — identical except that rewrites mint fresh [`exo_core::sym::Sym`]s,
//! so the structurally-keyed cache inside [`exo_smt::Solver`] never sees a
//! repeat. [`CheckCtx`] closes that gap:
//!
//! * all validity/satisfiability queries funnel through one process-wide
//!   solver instead of per-call-site `Solver::new()` throwaways;
//! * each query is first alpha-normalized by [`exo_smt::canonicalize`]
//!   and memoized keyed by the *canonical formula* (full structural
//!   equality, not a hash, so collisions cannot corrupt verdicts);
//! * hit/miss/entry counters are exported through `exo-obs`
//!   (`check.queries`, `check.cache_hits`, `check.cache_misses`,
//!   `check.cache_entries`).
//!
//! The canonical layer can be disabled with `EXO_CHECK_CACHE=0` (or
//! explicitly via [`CheckCtx::with_cache`]); verdicts are identical either
//! way because canonical renaming is semantics-preserving — the escape
//! hatch exists for debugging and for measuring the cache's effect.
//!
//! The context also owns the per-statement effect-summary memo
//! ([`EffectMemo`]) used by the dirty-region analysis in `exo-sched`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use exo_core::budget::ResourceBudget;
use exo_smt::canon::canonicalize;
use exo_smt::formula::Formula;
use exo_smt::solver::{Answer, Solver, SolverStats};

use crate::effects::Effect;
use crate::globals::GlobalEnv;

/// Counters describing checking-context activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckStats {
    /// Queries answered through the context (including cache hits).
    pub queries: usize,
    /// Queries answered from the canonical verdict cache.
    pub hits: usize,
    /// Queries that fell through to the solver.
    pub misses: usize,
    /// Entries currently in the canonical verdict cache.
    pub entries: usize,
    /// Per-statement effect summaries served from the memo.
    pub effect_hits: usize,
    /// Per-statement effect summaries derived fresh.
    pub effect_misses: usize,
}

/// Memo of per-statement effect summaries, keyed by a fingerprint of the
/// statement plus everything extraction depends on (window views, entry
/// dataflow environment). Each entry also records the dataflow
/// environment *after* the statement, so a hit advances extraction state
/// exactly as a fresh derivation would. Owned by [`CheckCtx`]; consulted
/// by `context::effect_of_stmts_cached`.
#[derive(Debug, Default)]
pub struct EffectMemo {
    map: HashMap<String, (Effect, GlobalEnv)>,
    hits: usize,
    misses: usize,
}

impl EffectMemo {
    /// Looks up a summary, counting the hit.
    pub fn get(&mut self, key: &str) -> Option<(Effect, GlobalEnv)> {
        // Chaos injection: pretend the memo missed, forcing the uncached
        // re-derivation path. A miss is always correct (just slower).
        if exo_chaos::should_inject(exo_chaos::FaultSite::AnalysisCacheMiss) {
            self.misses += 1;
            exo_obs::counter_add("analysis.effect_memo.misses", 1);
            exo_obs::attr::counter_add_by_op("analysis.effect_memo.misses", 1);
            return None;
        }
        match self.map.get(key) {
            Some(e) => {
                self.hits += 1;
                exo_obs::counter_add("analysis.effect_memo.hits", 1);
                exo_obs::attr::counter_add_by_op("analysis.effect_memo.hits", 1);
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                exo_obs::counter_add("analysis.effect_memo.misses", 1);
                exo_obs::attr::counter_add_by_op("analysis.effect_memo.misses", 1);
                None
            }
        }
    }

    /// Stores a freshly derived summary and its exit dataflow env.
    pub fn insert(&mut self, key: String, eff: Effect, genv_after: GlobalEnv) {
        self.map.insert(key, (eff, genv_after));
    }

    /// Number of memoized summaries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Reads the `EXO_CHECK_CACHE` escape hatch: anything but `0` (or the
/// empty string) leaves the canonical cache enabled.
fn cache_enabled_from_env() -> bool {
    match std::env::var("EXO_CHECK_CACHE") {
        Ok(v) => v != "0",
        Err(_) => true,
    }
}

/// A checking context: one solver, one canonical verdict cache, one
/// effect-summary memo. Usually accessed through [`SharedCheckCtx`].
#[derive(Debug)]
pub struct CheckCtx {
    solver: Solver,
    cache: HashMap<Formula, Answer>,
    enabled: bool,
    queries: usize,
    hits: usize,
    misses: usize,
    /// Per-statement effect summaries (dirty-region analysis support).
    pub effects: EffectMemo,
    /// Fuel/deadline pool every query draws from; exhaustion answers
    /// `Unknown` (fail-safe rejection) instead of hanging.
    budget: ResourceBudget,
}

impl CheckCtx {
    /// Creates a context honouring the `EXO_CHECK_CACHE` environment
    /// variable.
    pub fn new() -> CheckCtx {
        CheckCtx::with_cache(cache_enabled_from_env())
    }

    /// Creates a context with the canonical cache explicitly on or off.
    pub fn with_cache(enabled: bool) -> CheckCtx {
        CheckCtx {
            solver: Solver::new(),
            cache: HashMap::new(),
            enabled,
            queries: 0,
            hits: 0,
            misses: 0,
            effects: EffectMemo::default(),
            budget: ResourceBudget::unlimited(),
        }
    }

    /// Whether the canonical verdict cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.enabled
    }

    /// Installs the fuel/deadline pool queries draw from (shared with the
    /// owning `SchedState` when scheduling).
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    /// The budget queries draw from.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// Activity counters for this context.
    pub fn stats(&self) -> CheckStats {
        CheckStats {
            queries: self.queries,
            hits: self.hits,
            misses: self.misses,
            entries: self.cache.len(),
            effect_hits: self.effects.hits,
            effect_misses: self.effects.misses,
        }
    }

    /// Counters of the underlying solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Checks satisfiability of `f` (free variables existential).
    ///
    /// With the cache enabled the query is alpha-normalized first and the
    /// verdict memoized keyed by the canonical formula, so any
    /// alpha-variant asked later — including the same obligation
    /// re-derived over fresh syms after a rewrite — is a hit.
    pub fn check_sat(&mut self, f: &Formula) -> Answer {
        self.queries += 1;
        exo_obs::counter_add("check.queries", 1);
        // Attribution: `check.queries.op.*` always sums to `check.queries`
        // (and likewise for the hit/miss counters below).
        exo_obs::attr::counter_add_by_op("check.queries", 1);
        // Budget: one fuel unit per query. Every safety analysis funnels its
        // obligations through here, so exhausting the pool mid-fixpoint
        // degrades the remaining obligations to `Unknown` — the rewrite is
        // rejected, the process never hangs on a pathological query stream.
        if self.budget.charge(1).is_err() {
            exo_obs::counter_add("check.budget_unknown", 1);
            return Answer::Unknown;
        }
        // While a chaos plan is armed, injected verdicts may flow back from
        // the solver; keep them out of the canonical cache entirely so a
        // later clean run over the same (possibly process-shared) context
        // sees pristine verdicts.
        let chaos_armed = exo_chaos::armed();
        let forced_miss =
            chaos_armed && exo_chaos::should_inject(exo_chaos::FaultSite::AnalysisCacheMiss);
        if !self.enabled {
            return self.solver.check_sat(f);
        }
        let key = canonicalize(f);
        if !forced_miss {
            if let Some(&a) = self.cache.get(&key) {
                self.hits += 1;
                exo_obs::counter_add("check.cache_hits", 1);
                exo_obs::attr::counter_add_by_op("check.cache_hits", 1);
                return a;
            }
        }
        // Decide on the canonical form: semantics-preserving, and it makes
        // the solver's own structural cache converge on one representative
        // per alpha-class.
        let a = self.solver.check_sat(&key);
        self.misses += 1;
        exo_obs::counter_add("check.cache_misses", 1);
        exo_obs::attr::counter_add_by_op("check.cache_misses", 1);
        if !chaos_armed {
            exo_obs::counter_add("check.cache_entries", 1);
            self.cache.insert(key, a);
        }
        a
    }

    /// Checks validity of `f` (free variables universal):
    /// `valid(f) ⇔ ¬sat(¬f)`. Shares cache entries with [`Self::check_sat`].
    pub fn check_valid(&mut self, f: &Formula) -> Answer {
        match self.check_sat(&f.clone().negate()) {
            Answer::Yes => Answer::No,
            Answer::No => Answer::Yes,
            Answer::Unknown => Answer::Unknown,
        }
    }

    /// Checks validity of `hyp ⇒ goal`.
    pub fn check_entails(&mut self, hyp: &Formula, goal: &Formula) -> Answer {
        self.check_valid(&hyp.clone().implies(goal.clone()))
    }
}

impl Default for CheckCtx {
    fn default() -> CheckCtx {
        CheckCtx::new()
    }
}

/// A cloneable handle to a [`CheckCtx`] behind a mutex.
///
/// This is what `SchedState` and the analyses carry. Query methods lock
/// internally; code that needs several operations under one lock (e.g.
/// the effect memo) uses [`SharedCheckCtx::lock`]. Lock ordering across
/// the workspace is `SchedState → CheckCtx`.
#[derive(Clone, Debug)]
pub struct SharedCheckCtx(Arc<Mutex<CheckCtx>>);

impl SharedCheckCtx {
    /// A fresh, private context (cache per `EXO_CHECK_CACHE`).
    pub fn fresh() -> SharedCheckCtx {
        SharedCheckCtx(Arc::new(Mutex::new(CheckCtx::new())))
    }

    /// A fresh, private context with the cache explicitly on or off.
    pub fn with_cache(enabled: bool) -> SharedCheckCtx {
        SharedCheckCtx(Arc::new(Mutex::new(CheckCtx::with_cache(enabled))))
    }

    /// The process-wide shared context. All `SchedState::default()`
    /// instances alias this one, so obligations cache across every
    /// schedule built in the process.
    pub fn process() -> SharedCheckCtx {
        static PROCESS: OnceLock<SharedCheckCtx> = OnceLock::new();
        PROCESS.get_or_init(SharedCheckCtx::fresh).clone()
    }

    /// Locks the context. Poisoning is ignored: the cache only ever holds
    /// sound verdicts, so a panic elsewhere cannot corrupt it.
    pub fn lock(&self) -> MutexGuard<'_, CheckCtx> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// See [`CheckCtx::check_sat`].
    pub fn check_sat(&self, f: &Formula) -> Answer {
        self.lock().check_sat(f)
    }

    /// See [`CheckCtx::check_valid`].
    pub fn check_valid(&self, f: &Formula) -> Answer {
        self.lock().check_valid(f)
    }

    /// See [`CheckCtx::check_entails`].
    pub fn check_entails(&self, hyp: &Formula, goal: &Formula) -> Answer {
        self.lock().check_entails(hyp, goal)
    }

    /// See [`CheckCtx::stats`].
    pub fn stats(&self) -> CheckStats {
        self.lock().stats()
    }

    /// See [`CheckCtx::solver_stats`].
    pub fn solver_stats(&self) -> SolverStats {
        self.lock().solver_stats()
    }

    /// See [`CheckCtx::cache_enabled`].
    pub fn cache_enabled(&self) -> bool {
        self.lock().cache_enabled()
    }
}

impl Default for SharedCheckCtx {
    /// The default handle aliases the process-wide context.
    fn default() -> SharedCheckCtx {
        SharedCheckCtx::process()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::sym::Sym;
    use exo_smt::linear::LinExpr;

    fn valid_shape(c: i64) -> Formula {
        // x ≤ x + c is valid for c ≥ 0; fresh syms each call
        let x = Sym::new("x");
        Formula::le(LinExpr::var(x), LinExpr::var(x).offset(c))
    }

    #[test]
    fn alpha_variants_hit_the_cache() {
        let mut ctx = CheckCtx::with_cache(true);
        assert_eq!(ctx.check_valid(&valid_shape(1)), Answer::Yes);
        assert_eq!(ctx.check_valid(&valid_shape(1)), Answer::Yes); // fresh sym, same shape
        let st = ctx.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.entries, 1);
    }

    #[test]
    fn disabled_cache_never_hits_but_agrees() {
        let mut on = CheckCtx::with_cache(true);
        let mut off = CheckCtx::with_cache(false);
        for c in [0, 1, -1, 3, -1, 1] {
            assert_eq!(
                on.check_valid(&valid_shape(c)),
                off.check_valid(&valid_shape(c))
            );
        }
        assert_eq!(off.stats().hits, 0);
        assert!(on.stats().hits > 0);
    }

    #[test]
    fn distinct_constants_get_distinct_entries() {
        let mut ctx = CheckCtx::with_cache(true);
        assert_eq!(ctx.check_valid(&valid_shape(1)), Answer::Yes);
        assert_eq!(ctx.check_valid(&valid_shape(-1)), Answer::No);
        assert_eq!(ctx.stats().entries, 2);
        assert_eq!(ctx.stats().hits, 0);
    }

    #[test]
    fn shared_handles_alias_one_context() {
        let a = SharedCheckCtx::with_cache(true);
        let b = a.clone();
        let before = a.stats().queries;
        let _ = b.check_valid(&valid_shape(2));
        assert_eq!(a.stats().queries, before + 1);
    }

    #[test]
    fn process_context_is_a_singleton() {
        let a = SharedCheckCtx::process();
        let b = SharedCheckCtx::default();
        let before = b.stats().queries;
        let _ = a.check_valid(&valid_shape(4));
        assert!(b.stats().queries > before);
    }
}
