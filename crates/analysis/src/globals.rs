//! Global (configuration) state: canonical naming and the approximating
//! symbolic dataflow analysis `ValG` (paper §5.3).
//!
//! Mutable global control state is what pushes Exo beyond classic static
//! control programs. The dataflow analysis tracks a symbolic value per
//! configuration field, is control-sensitive (branches produce
//! `if-then-else` values), and forces convergence on loops with a simple
//! heuristic: a loop that does not change a field acts as the identity on
//! it; otherwise the field becomes ⊥.

use std::collections::HashMap;
use std::sync::Arc;

use exo_core::budget::ResourceBudget;
use exo_core::ir::{Expr, Proc, Stmt};
use exo_core::Sym;

use crate::effexpr::{lift, EffExpr};

/// Registry assigning one canonical symbol to each configuration field,
/// so that `Config.field` can appear in formulas as an ordinary variable.
///
/// The registry is threaded by `&mut` through every `ValG` pass, so it
/// also carries the [`ResourceBudget`] the dataflow draws from: each
/// symbolic loop pass charges one fuel unit, and exhaustion degrades the
/// affected fields to ⊥ (conservative — a rewrite whose safety depends on
/// them is then rejected, never wrongly accepted).
#[derive(Debug, Default)]
pub struct GlobalReg {
    canon: HashMap<(Sym, Sym), (Sym, bool)>,
    budget: ResourceBudget,
}

impl GlobalReg {
    /// Creates an empty registry.
    pub fn new() -> GlobalReg {
        GlobalReg::default()
    }

    /// Installs the budget the `ValG` fixpoint draws from.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    /// The budget the `ValG` fixpoint draws from.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// Returns the canonical variable for `config.field` (created on
    /// first use) and whether it is boolean-sorted.
    pub fn canon(&mut self, config: Sym, field: Sym) -> (Sym, bool) {
        *self.canon.entry((config, field)).or_insert_with(|| {
            (
                Sym::new(format!("{}_{}", config.name(), field.name())),
                false,
            )
        })
    }

    /// Declares a field as boolean-sorted (defaults to integer).
    pub fn declare_bool(&mut self, config: Sym, field: Sym) {
        let sym = self.canon(config, field).0;
        self.canon.insert((config, field), (sym, true));
    }

    /// Reverse lookup: which configuration field a canonical symbol
    /// stands for, if any.
    pub fn field_of(&self, sym: Sym) -> Option<(Sym, Sym)> {
        self.canon
            .iter()
            .find(|(_, &(s, _))| s == sym)
            .map(|(&(c, f), _)| (c, f))
    }

    /// All `(config, field) → canonical` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&(Sym, Sym), &(Sym, bool))> {
        self.canon.iter()
    }
}

/// An effect environment (paper Def. 5.2) restricted to global fields:
/// the symbolic value of every configuration field at a program point.
/// Fields absent from the map have their initial (entry) value, i.e. the
/// environment behaves as the identity on them.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GlobalEnv {
    vals: HashMap<(Sym, Sym), EffExpr>,
}

impl GlobalEnv {
    /// The identity environment.
    pub fn identity() -> GlobalEnv {
        GlobalEnv::default()
    }

    /// The symbolic value of `config.field` (identity if untouched).
    pub fn value(&self, config: Sym, field: Sym, reg: &mut GlobalReg) -> EffExpr {
        self.vals.get(&(config, field)).cloned().unwrap_or_else(|| {
            let (sym, is_bool) = reg.canon(config, field);
            if is_bool {
                EffExpr::BoolVar(sym)
            } else {
                EffExpr::Var(sym)
            }
        })
    }

    /// Sets the symbolic value of a field.
    pub fn set(&mut self, config: Sym, field: Sym, v: EffExpr) {
        self.vals.insert((config, field), v);
    }

    /// The fields this environment has (possibly) modified.
    pub fn touched(&self) -> impl Iterator<Item = &(Sym, Sym)> {
        self.vals.keys()
    }

    /// Whether the environment is the identity.
    pub fn is_identity(&self) -> bool {
        self.vals.is_empty()
    }

    fn merge(mut self, other: GlobalEnv, cond: &EffExpr, reg: &mut GlobalReg) -> GlobalEnv {
        let mut keys: Vec<(Sym, Sym)> = self.vals.keys().copied().collect();
        for k in other.vals.keys() {
            if !keys.contains(k) {
                keys.push(*k);
            }
        }
        for k in keys {
            let a = self.value(k.0, k.1, reg);
            let b = other.vals.get(&k).cloned().unwrap_or_else(|| {
                let (sym, is_bool) = reg.canon(k.0, k.1);
                if is_bool {
                    EffExpr::BoolVar(sym)
                } else {
                    EffExpr::Var(sym)
                }
            });
            let merged = if a == b {
                a
            } else {
                EffExpr::Ite(Box::new(cond.clone()), Box::new(a), Box::new(b))
            };
            self.vals.insert(k, merged);
        }
        self
    }
}

/// Lifts a control expression, reading configuration fields through the
/// current environment (so the lifted expression refers to *entry*
/// values of globals).
pub fn lift_in_env(e: &Expr, env: &GlobalEnv, reg: &mut GlobalReg) -> EffExpr {
    match e {
        Expr::ReadConfig { config, field } => env.value(*config, *field, reg),
        Expr::BinOp(op, a, b) => {
            EffExpr::bin(*op, lift_in_env(a, env, reg), lift_in_env(b, env, reg))
        }
        Expr::Neg(a) => EffExpr::Neg(Box::new(lift_in_env(a, env, reg))),
        other => lift(other, reg),
    }
}

/// `ValG : Stmt → EffEnv` — computes the symbolic values of all
/// configuration fields after executing `block`, starting from `env`.
pub fn val_g_block(block: &[Stmt], env: GlobalEnv, reg: &mut GlobalReg) -> GlobalEnv {
    let mut env = env;
    for s in block {
        env = val_g_stmt(s, env, reg);
    }
    env
}

fn val_g_stmt(s: &Stmt, env: GlobalEnv, reg: &mut GlobalReg) -> GlobalEnv {
    match s {
        Stmt::WriteConfig { config, field, rhs } => {
            let v = lift_in_env(rhs, &env, reg);
            let mut env = env;
            env.set(*config, *field, v);
            env
        }
        Stmt::If { cond, body, orelse } => {
            let c = lift_in_env(cond, &env, reg);
            let then_env = val_g_block(body, env.clone(), reg);
            let else_env = val_g_block(orelse, env, reg);
            then_env.merge(else_env, &c, reg)
        }
        Stmt::For { iter, body, .. } => {
            // loop heuristic: one symbolic pass over the body starting from
            // the loop-entry environment; any field whose value changes (or
            // depends on the iteration variable) becomes ⊥, others persist.
            exo_obs::counter_add("analysis.valg.loop_passes", 1);
            // Budget: one fuel unit per symbolic loop pass. Exhaustion (and
            // the chaos `analysis-bottom` fault) degrade every field the
            // body touches to ⊥ — strictly less precise than the heuristic
            // below, so downstream checks can only get *more* conservative.
            let give_up = reg.budget.charge(1).is_err()
                || exo_chaos::should_inject(exo_chaos::FaultSite::AnalysisBottom);
            let body_env = val_g_block(body, env.clone(), reg);
            let mut out = env;
            for &(c, f) in body_env.vals.keys().collect::<Vec<_>>() {
                if give_up {
                    exo_obs::counter_add("analysis.valg.bottomed", 1);
                    out.set(c, f, EffExpr::Unknown);
                    continue;
                }
                let before = out.value(c, f, reg);
                let after = body_env
                    .vals
                    .get(&(c, f))
                    .cloned()
                    .unwrap_or(EffExpr::Unknown);
                let mut fv = std::collections::BTreeSet::new();
                after.free_vars(&mut fv);
                // paper heuristic: if an iteration leaves the field's value
                // unchanged the loop is the identity on it; anything else
                // (including a constant write — the loop may run zero
                // times) drives the field to ⊥
                if after == before && !fv.contains(iter) {
                    continue;
                }
                out.set(c, f, EffExpr::Unknown);
            }
            out
        }
        Stmt::Call { proc, args } => val_g_call(proc, args, env, reg),
        _ => env,
    }
}

fn val_g_call(proc: &Arc<Proc>, args: &[Expr], env: GlobalEnv, reg: &mut GlobalReg) -> GlobalEnv {
    // substitute actuals for formals in the callee's global dataflow
    let callee_env = val_g_block(&proc.body, GlobalEnv::identity(), reg);
    if callee_env.is_identity() {
        return env;
    }
    let mut subst: HashMap<Sym, EffExpr> = HashMap::new();
    for (formal, actual) in proc.args.iter().zip(args) {
        if formal.ty.is_ctrl() {
            subst.insert(formal.name, lift_in_env(actual, &env, reg));
        }
    }
    let mut out = env.clone();
    for (&(c, f), v) in &callee_env.vals {
        // the callee's symbolic value may reference the entry values of
        // globals — substitute the caller's current values for those too
        let mut gsub = subst.clone();
        for (&(gc, gf), &(gsym, _)) in reg.canon.clone().iter() {
            gsub.insert(gsym, env.value(gc, gf, reg));
        }
        out.set(c, f, v.subst(&gsub));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::ProcBuilder;
    use exo_core::ir::Expr;

    fn cfg() -> (Sym, Sym) {
        (Sym::new("ConfigLoad"), Sym::new("src_stride"))
    }

    #[test]
    fn straight_line_write_tracked() {
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        b.write_config(c, f, Expr::int(128));
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Int(128));
    }

    #[test]
    fn branch_merges_to_ite() {
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        b.begin_if(Expr::var(n).lt(Expr::int(4)));
        b.write_config(c, f, Expr::int(1));
        b.begin_else();
        b.write_config(c, f, Expr::int(2));
        b.end_if();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        match env.value(c, f, &mut reg) {
            EffExpr::Ite(..) => {}
            other => panic!("expected ite, got {other:?}"),
        }
    }

    #[test]
    fn loop_write_becomes_unknown_zero_trip() {
        // for i: Config.f = 5 — the loop may run zero times, so the value
        // after the loop is ⊥ (paper heuristic: only identity survives)
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        let _i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.write_config(c, f, Expr::int(5));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Unknown);
    }

    #[test]
    fn loop_identity_rewrite_survives() {
        // write 7 before the loop; the loop rewrites the same value —
        // identity per iteration, so 7 survives
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        b.write_config(c, f, Expr::int(7));
        let _i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.write_config(c, f, Expr::int(7));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Int(7));
    }

    #[test]
    fn loop_dependent_write_becomes_unknown() {
        // for i: Config.f = i  — iteration-dependent ⇒ ⊥
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.write_config(c, f, Expr::var(i));
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Unknown);
    }

    #[test]
    fn accumulating_write_becomes_unknown() {
        // for i: Config.f = Config.f + 1 — self-dependent ⇒ ⊥
        let (c, f) = cfg();
        let mut b = ProcBuilder::new("p");
        let _i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.write_config(
            c,
            f,
            Expr::ReadConfig {
                config: c,
                field: f,
            }
            .add(Expr::int(1)),
        );
        b.end_for();
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Unknown);
    }

    #[test]
    fn call_propagates_callee_writes() {
        let (c, f) = cfg();
        let mut ib = ProcBuilder::new("config_ld");
        let s = ib.ctrl("s", exo_core::CtrlType::Stride);
        ib.write_config(c, f, Expr::var(s));
        let callee = ib.finish();

        let mut b = ProcBuilder::new("main");
        b.call(&callee, vec![Expr::int(64)]);
        let p = b.finish();
        let mut reg = GlobalReg::new();
        let env = val_g_block(&p.body, GlobalEnv::identity(), &mut reg);
        assert_eq!(env.value(c, f, &mut reg), EffExpr::Int(64));
    }

    #[test]
    fn untouched_fields_are_identity() {
        let mut reg = GlobalReg::new();
        let env = GlobalEnv::identity();
        let (c, f) = cfg();
        let v = env.value(c, f, &mut reg);
        match v {
            EffExpr::Var(_) => {}
            other => panic!("expected entry variable, got {other:?}"),
        }
        assert!(env.is_identity());
    }
}
