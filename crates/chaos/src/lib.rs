//! # exo-chaos
//!
//! Deterministic fault injection for the exo-rs pipeline.
//!
//! The paper's central safety claim (§5–§6) is that every scheduling rewrite
//! is independently checked and the system *fails safe*: an analysis that
//! cannot prove equivalence answers `Unknown` and the rewrite is rejected
//! rather than miscompiled. This crate exists to *test* that claim under
//! adversarial conditions. A [`FaultPlan`] names a set of injection sites
//! ([`FaultSite`]) with per-site probabilities, driven by a seeded
//! deterministic PRNG, so a chaos run is exactly reproducible from its seed.
//!
//! Library crates register injection points by calling [`should_inject`] at
//! the places where real resource exhaustion or analysis imprecision would
//! surface:
//!
//! * `exo-smt` — [`FaultSite::SmtTooHard`]: the solver pretends quantifier
//!   elimination blew its budget and answers `Unknown` (without caching the
//!   injected verdict).
//! * `exo-analysis` — [`FaultSite::AnalysisBottom`]: the ValG dataflow drops
//!   a config field to ⊥; [`FaultSite::AnalysisCacheMiss`]: the verdict /
//!   effect caches pretend they missed.
//! * `exo-sched` — [`FaultSite::PatternNoMatch`] / [`FaultSite::PatternAmbiguous`]:
//!   pattern resolution fails as if the cursor expression matched nothing, or
//!   matched more than once without an index.
//! * `exo-interp` — [`FaultSite::InterpFuel`]: the interpreter pretends its
//!   fuel budget is exhausted.
//!
//! Every site is *conservative by construction*: an injected fault can only
//! turn an accept into a reject/`Unknown`, never the reverse, so soundness
//! monotonicity (nothing accepted under injection that a clean run rejects)
//! holds for any plan.
//!
//! ## Zero cost when disarmed
//!
//! No plan is armed by default. [`should_inject`] first reads one relaxed
//! `AtomicBool`; when no plan is armed it returns `false` without locking or
//! touching the PRNG, so production builds pay a single predictable branch.
//!
//! ## Environment
//!
//! [`arm_from_env`] arms a plan from `EXO_CHAOS` (site list with optional
//! probabilities, e.g. `EXO_CHAOS="smt:0.5,pattern-no-match"` or
//! `EXO_CHAOS=all`) and `EXO_CHAOS_SEED` (u64 seed, default 0). This is how
//! the chaos bench and ad-hoc debugging arm the harness without code changes.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A named fault-injection site in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `exo-smt`: force `Solver::check_sat` to answer `Unknown` as if
    /// `QeBudget` were exhausted (`TooHard`).
    SmtTooHard,
    /// `exo-analysis`: force the ValG config dataflow to drop a value to ⊥
    /// (`EffExpr::Unknown`).
    AnalysisBottom,
    /// `exo-analysis`: force the canonical verdict cache and effect memo to
    /// miss, exercising the uncached path.
    AnalysisCacheMiss,
    /// `exo-sched`: force pattern resolution to report "no match".
    PatternNoMatch,
    /// `exo-sched`: force pattern resolution to report an ambiguity
    /// (multiple matches, no index given).
    PatternAmbiguous,
    /// `exo-interp`: force the interpreter's fuel budget to report
    /// exhaustion.
    InterpFuel,
}

impl FaultSite {
    /// All known sites, in a stable order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::SmtTooHard,
        FaultSite::AnalysisBottom,
        FaultSite::AnalysisCacheMiss,
        FaultSite::PatternNoMatch,
        FaultSite::PatternAmbiguous,
        FaultSite::InterpFuel,
    ];

    /// Stable lowercase name, used in env parsing, counters, and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SmtTooHard => "smt-too-hard",
            FaultSite::AnalysisBottom => "analysis-bottom",
            FaultSite::AnalysisCacheMiss => "analysis-cache-miss",
            FaultSite::PatternNoMatch => "pattern-no-match",
            FaultSite::PatternAmbiguous => "pattern-ambiguous",
            FaultSite::InterpFuel => "interp-fuel",
        }
    }

    /// Parse a site name as produced by [`FaultSite::name`]. A few short
    /// aliases are accepted for the env-var form.
    pub fn parse(s: &str) -> Option<FaultSite> {
        match s.trim() {
            "smt-too-hard" | "smt" => Some(FaultSite::SmtTooHard),
            "analysis-bottom" | "bottom" => Some(FaultSite::AnalysisBottom),
            "analysis-cache-miss" | "cache-miss" => Some(FaultSite::AnalysisCacheMiss),
            "pattern-no-match" | "no-match" => Some(FaultSite::PatternNoMatch),
            "pattern-ambiguous" | "ambiguous" => Some(FaultSite::PatternAmbiguous),
            "interp-fuel" | "fuel" => Some(FaultSite::InterpFuel),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SmtTooHard => 0,
            FaultSite::AnalysisBottom => 1,
            FaultSite::AnalysisCacheMiss => 2,
            FaultSite::PatternNoMatch => 3,
            FaultSite::PatternAmbiguous => 4,
            FaultSite::InterpFuel => 5,
        }
    }
}

/// splitmix64: tiny, high-quality, seedable. The whole point is determinism —
/// the same seed replays the same fault sequence, so a chaos failure is
/// reproducible from its `(plan, seed)` pair alone.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seeded fault plan: which sites fire, with what probability.
///
/// Probability 1.0 means "every time the site is reached"; fractional
/// probabilities draw from the plan's deterministic PRNG. Sites not listed
/// never fire.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    // Probability per site, indexed by FaultSite::index(); 0.0 = never.
    probs: [f64; 6],
}

impl FaultPlan {
    /// An empty plan with the given seed; add sites with [`FaultPlan::with_site`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            probs: [0.0; 6],
        }
    }

    /// A plan that fires every listed site deterministically (p = 1.0).
    pub fn always(seed: u64, sites: &[FaultSite]) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for &s in sites {
            plan.probs[s.index()] = 1.0;
        }
        plan
    }

    /// Add (or update) a site with a firing probability in [0, 1].
    pub fn with_site(mut self, site: FaultSite, prob: f64) -> FaultPlan {
        self.probs[site.index()] = prob.clamp(0.0, 1.0);
        self
    }

    /// The plan's PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sites with nonzero probability, in stable order.
    pub fn sites(&self) -> Vec<FaultSite> {
        FaultSite::ALL
            .iter()
            .copied()
            .filter(|s| self.probs[s.index()] > 0.0)
            .collect()
    }

    /// Human-readable summary, e.g. `seed=7 smt-too-hard:0.50 interp-fuel:1.00`.
    pub fn describe(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for s in self.sites() {
            out.push_str(&format!(" {}:{:.2}", s.name(), self.probs[s.index()]));
        }
        out
    }
}

struct ArmedPlan {
    plan: FaultPlan,
    rng: SplitMix64,
    injected: [u64; 6],
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<ArmedPlan>> = Mutex::new(None);

fn plan_lock() -> std::sync::MutexGuard<'static, Option<ArmedPlan>> {
    // A panic while holding this lock (e.g. one injected under catch_unwind)
    // must not wedge the harness for the rest of the process.
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arm a fault plan process-wide. Replaces any previously armed plan and
/// resets the PRNG to the plan's seed. Returns a [`ChaosGuard`] that disarms
/// on drop, so a panicking test cannot leak an armed plan into later tests.
#[must_use = "the plan disarms when the guard drops"]
pub fn arm(plan: FaultPlan) -> ChaosGuard {
    let seed = plan.seed;
    *plan_lock() = Some(ArmedPlan {
        rng: SplitMix64::new(seed),
        plan,
        injected: [0; 6],
    });
    ARMED.store(true, Ordering::SeqCst);
    exo_obs::event(
        "chaos.armed",
        vec![("seed".to_string(), exo_obs::Json::uint(seed))],
    );
    ChaosGuard { _priv: () }
}

/// Disarm any armed plan. Idempotent. Prefer letting the [`ChaosGuard`] drop.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *plan_lock() = None;
}

/// RAII guard returned by [`arm`]; disarms the plan when dropped.
pub struct ChaosGuard {
    _priv: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Is any plan armed? One relaxed atomic load — this is the fast path that
/// keeps the harness zero-cost in production.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Should the fault at `site` fire now?
///
/// Returns `false` immediately when no plan is armed. When armed, draws from
/// the plan's deterministic PRNG (sites with probability 1.0 always fire and
/// do not consume a draw, so all-or-nothing plans are schedule-independent).
/// Each firing bumps the `chaos.injected.<site>` counter through `exo-obs`.
#[inline]
pub fn should_inject(site: FaultSite) -> bool {
    if !armed() {
        return false;
    }
    should_inject_slow(site)
}

#[cold]
fn should_inject_slow(site: FaultSite) -> bool {
    let mut guard = plan_lock();
    let armed_plan = match guard.as_mut() {
        Some(p) => p,
        None => return false,
    };
    let p = armed_plan.plan.probs[site.index()];
    let fire = if p >= 1.0 {
        true
    } else if p <= 0.0 {
        false
    } else {
        armed_plan.rng.next_f64() < p
    };
    if fire {
        armed_plan.injected[site.index()] += 1;
        drop(guard);
        exo_obs::counter_add(&format!("chaos.injected.{}", site.name()), 1);
    }
    fire
}

/// Per-site injection counts for the currently armed plan (zeros if none).
/// Indexed in [`FaultSite::ALL`] order; pairs are `(site, count)`.
pub fn injection_counts() -> Vec<(FaultSite, u64)> {
    let guard = plan_lock();
    match guard.as_ref() {
        Some(p) => FaultSite::ALL
            .iter()
            .map(|&s| (s, p.injected[s.index()]))
            .collect(),
        None => FaultSite::ALL.iter().map(|&s| (s, 0)).collect(),
    }
}

/// Arm from `EXO_CHAOS` / `EXO_CHAOS_SEED`, if set.
///
/// `EXO_CHAOS` is a comma-separated list of `site[:prob]` entries (site names
/// as in [`FaultSite::name`], plus the literal `all`); `EXO_CHAOS_SEED` is a
/// u64 (default 0). Returns `None` (and arms nothing) when `EXO_CHAOS` is
/// unset, empty, or unparseable.
pub fn arm_from_env() -> Option<ChaosGuard> {
    let spec = std::env::var("EXO_CHAOS").ok()?;
    let spec = spec.trim();
    if spec.is_empty() {
        return None;
    }
    let seed = std::env::var("EXO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, prob) = match entry.split_once(':') {
            Some((n, p)) => (n, p.trim().parse::<f64>().ok()?),
            None => (entry, 1.0),
        };
        if name.trim() == "all" {
            for &s in &FaultSite::ALL {
                plan = plan.with_site(s, prob);
            }
        } else {
            plan = plan.with_site(FaultSite::parse(name)?, prob);
        }
    }
    Some(arm(plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed plan is process-global, so tests that arm must not run
    // concurrently; serialize them through a local mutex.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_never_fires() {
        let _s = serial();
        disarm();
        assert!(!armed());
        for &site in &FaultSite::ALL {
            assert!(!should_inject(site));
        }
    }

    #[test]
    fn always_plan_fires_every_time() {
        let _s = serial();
        let _g = arm(FaultPlan::always(1, &[FaultSite::SmtTooHard]));
        for _ in 0..10 {
            assert!(should_inject(FaultSite::SmtTooHard));
            assert!(!should_inject(FaultSite::InterpFuel));
        }
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _s = serial();
        {
            let _g = arm(FaultPlan::always(2, &[FaultSite::PatternNoMatch]));
            assert!(armed());
        }
        assert!(!armed());
        assert!(!should_inject(FaultSite::PatternNoMatch));
    }

    #[test]
    fn fractional_probability_is_deterministic() {
        let _s = serial();
        let draw = |seed: u64| -> Vec<bool> {
            let _g = arm(FaultPlan::new(seed).with_site(FaultSite::AnalysisCacheMiss, 0.5));
            (0..64)
                .map(|_| should_inject(FaultSite::AnalysisCacheMiss))
                .collect()
        };
        let a = draw(42);
        let b = draw(42);
        let c = draw(43);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn counts_are_tracked() {
        let _s = serial();
        let _g = arm(FaultPlan::always(3, &[FaultSite::InterpFuel]));
        for _ in 0..5 {
            assert!(should_inject(FaultSite::InterpFuel));
        }
        let counts = injection_counts();
        let fuel = counts
            .iter()
            .find(|(s, _)| *s == FaultSite::InterpFuel)
            .map(|(_, n)| *n);
        assert_eq!(fuel, Some(5));
    }

    #[test]
    fn site_names_round_trip() {
        for &s in &FaultSite::ALL {
            assert_eq!(FaultSite::parse(s.name()), Some(s));
        }
        assert_eq!(FaultSite::parse("nonsense"), None);
    }

    #[test]
    fn describe_lists_sites() {
        let plan = FaultPlan::new(9).with_site(FaultSite::SmtTooHard, 0.25);
        let d = plan.describe();
        assert!(d.contains("seed=9") && d.contains("smt-too-hard:0.25"));
        assert_eq!(plan.sites(), vec![FaultSite::SmtTooHard]);
    }
}
