//! Trace exporters: Chrome `trace_event` JSON and collapsed-stack
//! flamegraph text.
//!
//! Both consume the registry's trace ring buffer ([`TraceSpan`]s).
//!
//! * [`chrome_trace`] emits the object form of the Chrome trace-event
//!   format (`{"traceEvents":[…]}`): one complete (`"ph":"X"`) event
//!   per closed span with microsecond `ts`/`dur`, the span's thread as
//!   `tid`, and the attribution context under `args`. Load the file in
//!   `chrome://tracing` or Perfetto.
//! * [`collapsed_stacks`] emits one `root;child;leaf self_µs` line per
//!   distinct stack, the input format of `flamegraph.pl` /
//!   `inferno-flamegraph`. Stacks are reconstructed from parent links;
//!   self time is the span's duration minus its children's (clamped at
//!   zero — children measured on other clocks can nominally overrun
//!   their parent by a tick).
//!
//! Spans whose parent was evicted from the ring buffer (or is still
//! open at export time) are treated as stack roots; [`chrome_trace`]
//! reports the eviction count in its metadata so consumers can tell a
//! complete trace from a truncated one.

use std::collections::HashMap;
use std::path::Path;

use crate::json::Json;
use crate::registry::{Registry, TraceSpan};

/// Renders spans as a Chrome `trace_event` JSON document.
pub fn chrome_trace(spans: &[TraceSpan], dropped: u64) -> Json {
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            let mut args = Vec::new();
            if let Some((op, target)) = &s.op {
                args.push(("op".to_string(), Json::Str(op.clone())));
                args.push(("target".to_string(), Json::Str(target.clone())));
            }
            args.push(("span_id".to_string(), Json::uint(s.id)));
            if let Some(p) = s.parent {
                args.push(("parent_id".to_string(), Json::uint(p)));
            }
            Json::obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("cat".into(), Json::Str(category(&s.name).into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::uint(s.start_us)),
                ("dur".into(), Json::uint(s.dur_us)),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::uint(s.tid)),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::obj(vec![
                ("exporter".into(), Json::Str("exo-obs".into())),
                ("dropped_spans".into(), Json::uint(dropped)),
            ]),
        ),
    ])
}

/// The leading dotted segment of a span name (`sched.split` → `sched`),
/// used as the Chrome trace category.
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders spans as collapsed flamegraph stacks: one
/// `frame;frame;frame self_µs` line per distinct stack, sorted, with
/// per-line self time aggregated across occurrences.
pub fn collapsed_stacks(spans: &[TraceSpan]) -> String {
    let by_id: HashMap<u64, &TraceSpan> = spans.iter().map(|s| (s.id, s)).collect();
    // self time = duration − Σ(direct children's durations)
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            if by_id.contains_key(&p) {
                *child_us.entry(p).or_insert(0) += s.dur_us;
            }
        }
    }
    let mut folded: std::collections::BTreeMap<String, u64> = Default::default();
    for s in spans {
        let mut frames = vec![s.name.as_str()];
        let mut cursor = s.parent;
        while let Some(id) = cursor {
            match by_id.get(&id) {
                Some(p) => {
                    frames.push(p.name.as_str());
                    cursor = p.parent;
                }
                // evicted or still-open ancestor: the stack starts here
                None => break,
            }
        }
        frames.reverse();
        let self_us = s
            .dur_us
            .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
        *folded.entry(frames.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

impl Registry {
    /// The retained trace as a Chrome `trace_event` JSON document.
    pub fn chrome_trace_json(&self) -> Json {
        chrome_trace(&self.traces(), self.dropped_traces())
    }

    /// Writes [`Registry::chrome_trace_json`] to a file.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json().to_string())
    }

    /// The retained trace as collapsed flamegraph stacks.
    pub fn collapsed_stacks(&self) -> String {
        collapsed_stacks(&self.traces())
    }

    /// Writes [`Registry::collapsed_stacks`] to a file.
    pub fn write_collapsed_stacks(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.collapsed_stacks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            id,
            parent,
            tid: 1,
            name: name.into(),
            op: (id.is_multiple_of(2)).then(|| ("split".to_string(), "for i in _: _".to_string())),
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_the_strict_parser() {
        let spans = vec![
            span(1, None, "sched.split", 0, 100),
            span(2, Some(1), "smt.query", 10, 40),
        ];
        let doc = chrome_trace(&spans, 3);
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(es)) => es,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(events.len(), 2);
        let e = &events[1];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("smt.query"));
        assert_eq!(e.get("cat").and_then(Json::as_str), Some("smt"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("ts").and_then(Json::as_int), Some(10));
        assert_eq!(e.get("dur").and_then(Json::as_int), Some(40));
        let args = e.get("args").unwrap();
        assert_eq!(args.get("op").and_then(Json::as_str), Some("split"));
        assert_eq!(args.get("parent_id").and_then(Json::as_int), Some(1));
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("dropped_spans"))
                .and_then(Json::as_int),
            Some(3)
        );
    }

    #[test]
    fn collapsed_stacks_fold_and_subtract_child_time() {
        let spans = vec![
            span(1, None, "root", 0, 100),
            span(2, Some(1), "mid", 0, 60),
            span(3, Some(2), "leaf", 0, 25),
            span(4, Some(2), "leaf", 30, 25),
            // parent 99 was evicted: becomes a root stack
            span(5, Some(99), "orphan", 0, 7),
        ];
        let text = collapsed_stacks(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "orphan 7",
                "root 40",          // 100 − 60
                "root;mid 10",      // 60 − 25 − 25
                "root;mid;leaf 50", // 25 + 25 aggregated
            ]
        );
    }
}
