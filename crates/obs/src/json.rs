//! Hand-rolled JSON: a value type with compact rendering and a strict
//! parser.
//!
//! The parser exists so tests (and consumers of `BENCH_*.json`) can
//! round-trip what the sinks emit without any external crate; it
//! supports the full emitted subset — objects, arrays, strings with
//! escapes, integers, floats, booleans, null.

use std::fmt;

/// A JSON value. Object keys keep insertion order (emission order is
/// part of the transcript contract).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers (also covers every u64 that fits in i64; larger
    /// counters saturate — cycle counts never get there).
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Builds an `Int`, saturating at `i64::MAX`.
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload (`Int` coerces), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                message: "trailing characters".into(),
            });
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // always keep a decimal point so the value reparses
                    // as a float; huge round floats (≥1e15) expand to
                    // all-digit strings in Rust's Display, so they need
                    // the same treatment or they reparse as integers
                    // (or overflow the strict parser's i64 path)
                    if v.fract() == 0.0 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; emit null like serde_json
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    struct E<'a>(&'a str);
    impl fmt::Display for E<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write_escaped(f, self.0)
        }
    }
    E(s).to_string()
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(pos: usize, message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        pos,
        message: message.into(),
    })
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        err(*pos, format!("expected {:?}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err(*pos, "unexpected end of input"),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return err(*pos, "expected ',' or '}'"),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(*pos, "expected ',' or ']'"),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(*pos, format!("expected `{lit}`"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // The matched bytes are all ASCII, but degrade to a parse error rather
    // than assert it.
    let text = match std::str::from_utf8(&b[start..*pos]) {
        Ok(t) => t,
        Err(_) => return err(start, "bad number".to_string()),
    };
    if is_float {
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => err(start, format!("bad float `{text}`")),
        }
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok(Json::Int(v)),
            Err(_) => err(start, format!("bad integer `{text}`")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        let Some(code) = hex else {
                            return err(*pos, "bad \\u escape");
                        };
                        // surrogate pairs are not emitted by our sinks;
                        // reject rather than mis-decode
                        let Some(c) = char::from_u32(code) else {
                            return err(*pos, "surrogate \\u escape unsupported");
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return err(*pos, "bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| JsonError {
                    pos: *pos,
                    message: "invalid utf-8".into(),
                })?;
                let c = match rest.chars().next() {
                    // `Some(_)` above guarantees at least one byte, but a
                    // parse error beats a panic on a malformed line.
                    Some(c) => c,
                    None => return err(*pos, "unterminated string"),
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_control_and_quote_chars() {
        let nasty = "a\"b\\c\nd\te\r\u{1}f λ → 😀";
        let j = Json::Str(nasty.to_string());
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::obj(vec![
            ("name".into(), Json::Str("sched.split".into())),
            ("n".into(), Json::Int(-42)),
            ("util".into(), Json::Float(0.875)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Json::Float(2.0);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
