//! The global metrics registry: counters, log₂ histograms, and
//! structured events behind one mutex.
//!
//! Instrumentation sites are hot paths (every solver query, every
//! interpreted `@instr` call), so the API is deliberately coarse: one
//! short critical section per record, no allocation when the name
//! already exists, and a process-wide kill switch
//! ([`Registry::set_enabled`]) that reduces every call to one atomic
//! load.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// Default capacity of the trace ring buffer (closed spans retained for
/// export). At ~100 bytes per span this bounds trace memory at a few
/// megabytes; older spans are evicted first and counted in
/// [`Registry::dropped_traces`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One closed span in the causal trace tree (the ring-buffer record the
/// Chrome-trace and flamegraph exporters consume).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dense per-thread trace id (see [`crate::span::current_tid`]).
    pub tid: u64,
    /// Dotted span name, e.g. `sched.split`.
    pub name: String,
    /// Attribution context at entry: `(operator, target)`.
    pub op: Option<(String, String)>,
    /// Start offset from the process trace epoch, µs.
    pub start_us: u64,
    /// Wall-clock duration, µs.
    pub dur_us: u64,
}

/// A fixed-bin log₂ histogram (bin `i` holds values in `[2^(i-1), 2^i)`,
/// bin 0 holds zero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            bins: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bin = (64 - value.leading_zeros()) as usize;
        self.bins[bin.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty bins as `(bin_upper_bound, count)` pairs.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i.min(63) }, c))
            .collect()
    }

    fn to_json(&self, name: &str) -> Json {
        Json::obj(vec![
            ("type".into(), Json::Str("hist".into())),
            ("name".into(), Json::Str(name.into())),
            ("count".into(), Json::uint(self.count)),
            ("sum".into(), Json::uint(self.sum)),
            ("max".into(), Json::uint(self.max)),
            (
                "bins".into(),
                Json::Arr(
                    self.nonzero_bins()
                        .into_iter()
                        .map(|(ub, c)| Json::Arr(vec![Json::uint(ub), Json::uint(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One recorded event (instantaneous, or a closed span when
/// `duration_us` is set).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global sequence number (emission order).
    pub seq: u64,
    /// Dotted event name, e.g. `sched.split` or `smt.query`.
    pub name: String,
    /// Span-nesting depth of the emitting thread at emission time.
    pub depth: usize,
    /// Structured payload.
    pub fields: Vec<(String, Json)>,
    /// Wall-clock duration for span events.
    pub duration_us: Option<u64>,
}

impl Event {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "type".into(),
                Json::Str(
                    if self.duration_us.is_some() {
                        "span"
                    } else {
                        "event"
                    }
                    .into(),
                ),
            ),
            ("seq".into(), Json::uint(self.seq)),
            ("name".into(), Json::Str(self.name.clone())),
            ("depth".into(), Json::uint(self.depth as u64)),
        ];
        if let Some(us) = self.duration_us {
            fields.push(("dur_us".into(), Json::uint(us)));
        }
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }
}

struct Inner {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<Event>,
    seq: u64,
    traces: VecDeque<TraceSpan>,
    trace_capacity: usize,
    dropped_traces: u64,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
            seq: 0,
            traces: VecDeque::new(),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            dropped_traces: 0,
        }
    }
}

/// Thread-safe sink for counters, histograms, and events.
pub struct Registry {
    inner: Mutex<Inner>,
    enabled: AtomicBool,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Mutex::new(Inner::default()),
            enabled: AtomicBool::new(true),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Turns recording on or off (all record calls become no-ops while
    /// disabled; reads still work).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Snapshot of all counters under a dotted prefix (e.g.
    /// `interp.instr` collects the per-instruction execution counts).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .filter(|(k, _)| {
                k.strip_prefix(prefix)
                    .is_some_and(|rest| rest.is_empty() || rest.starts_with('.'))
            })
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Records a value into a histogram.
    pub fn record_hist(&self, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                inner.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Snapshot of a histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().hists.get(name).cloned()
    }

    /// Emits an instantaneous event.
    pub fn event(&self, name: &str, fields: Vec<(String, Json)>) {
        self.record_event(name, fields, None);
    }

    pub(crate) fn record_event(
        &self,
        name: &str,
        fields: Vec<(String, Json)>,
        duration_us: Option<u64>,
    ) {
        if !self.enabled() {
            return;
        }
        let depth = crate::span::current_depth();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(Event {
            seq,
            name: name.to_string(),
            depth,
            fields,
            duration_us,
        });
    }

    /// Snapshot of recorded events in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }

    /// Records one closed span into the bounded trace ring buffer,
    /// evicting the oldest span when full.
    pub fn record_trace(&self, span: TraceSpan) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.trace_capacity == 0 {
            inner.dropped_traces += 1;
            return;
        }
        while inner.traces.len() >= inner.trace_capacity {
            inner.traces.pop_front();
            inner.dropped_traces += 1;
        }
        inner.traces.push_back(span);
    }

    /// Snapshot of retained trace spans, oldest first.
    pub fn traces(&self) -> Vec<TraceSpan> {
        self.lock().traces.iter().cloned().collect()
    }

    /// Resizes the trace ring buffer (evicting oldest spans if shrinking).
    pub fn set_trace_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.trace_capacity = capacity;
        while inner.traces.len() > capacity {
            inner.traces.pop_front();
            inner.dropped_traces += 1;
        }
    }

    /// Number of trace spans evicted (or refused) by the ring buffer so
    /// far — nonzero means exported traces are truncated at the front.
    pub fn dropped_traces(&self) -> u64 {
        self.lock().dropped_traces
    }

    /// Drops all recorded state (events, counters, histograms, traces).
    /// The trace-ring capacity survives.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let capacity = inner.trace_capacity;
        *inner = Inner {
            trace_capacity: capacity,
            ..Inner::default()
        };
    }

    /// Renders a human-readable indented transcript of all events,
    /// followed by counter and histogram summaries.
    pub fn transcript(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for ev in &inner.events {
            out.push_str(&"  ".repeat(ev.depth));
            out.push_str(&ev.name);
            if let Some(us) = ev.duration_us {
                out.push_str(&format!(" [{}]", format_us(us)));
            }
            for (k, v) in &ev.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &inner.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        for (name, h) in &inner.hists {
            out.push_str(&format!(
                "hist {name}: count={} mean={:.1} max={}\n",
                h.count(),
                h.mean(),
                h.max()
            ));
        }
        out
    }

    /// Exports everything as JSON lines: one object per event, then one
    /// per counter, then one per histogram.
    pub fn json_lines(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for ev in &inner.events {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        for (name, &value) in &inner.counters {
            out.push_str(
                &Json::obj(vec![
                    ("type".into(), Json::Str("counter".into())),
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), Json::uint(value)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        for (name, h) in &inner.hists {
            out.push_str(&h.to_json(name).to_string());
            out.push('\n');
        }
        out
    }

    /// Writes [`Registry::json_lines`] to a file.
    pub fn write_json_lines(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.json_lines())
    }
}

/// Formats a microsecond duration for humans (`412µs`, `3.2ms`, `1.7s`).
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_aggregate_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.counter_add("t.hits", 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("t.hits"), 8000);
    }

    #[test]
    fn prefix_queries_do_not_match_partial_segments() {
        let reg = Registry::new();
        reg.counter_add("interp.instr.mvin", 2);
        reg.counter_add("interp.instrumented", 5);
        let got = reg.counters_with_prefix("interp.instr");
        assert_eq!(got, vec![("interp.instr.mvin".to_string(), 2)]);
    }

    #[test]
    fn histogram_bins_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        // zero-bin, [1,2)-bin (2 ones), [2,4)-bin (2 and 3), 1000 in [512,1024)
        assert_eq!(h.nonzero_bins(), vec![(0, 1), (2, 2), (4, 2), (1024, 1)]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        reg.counter_add("x", 1);
        reg.event("e", vec![]);
        reg.record_hist("h", 3);
        assert_eq!(reg.counter("x"), 0);
        assert!(reg.events().is_empty());
        assert!(reg.histogram("h").is_none());
    }

    #[test]
    fn trace_ring_is_bounded_and_counts_drops() {
        let reg = Registry::new();
        reg.set_trace_capacity(3);
        for id in 1..=5u64 {
            reg.record_trace(TraceSpan {
                id,
                parent: None,
                tid: 1,
                name: format!("s{id}"),
                op: None,
                start_us: id,
                dur_us: 1,
            });
        }
        let kept: Vec<u64> = reg.traces().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(reg.dropped_traces(), 2);
        reg.clear();
        assert!(reg.traces().is_empty());
        // capacity survives a clear
        for id in 1..=4u64 {
            reg.record_trace(TraceSpan {
                id,
                parent: None,
                tid: 1,
                name: "s".into(),
                op: None,
                start_us: 0,
                dur_us: 0,
            });
        }
        assert_eq!(reg.traces().len(), 3);
    }

    #[test]
    fn json_lines_are_individually_parseable() {
        let reg = Registry::new();
        reg.counter_add("smt.queries", 17);
        reg.record_hist("smt.formula_size", 33);
        reg.event(
            "sim.run",
            vec![
                ("cycles".into(), Json::Int(1234)),
                ("util".into(), Json::Float(0.73)),
            ],
        );
        let dump = reg.json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
        }
        let ev = Json::parse(lines[0]).unwrap();
        assert_eq!(ev.get("name").and_then(Json::as_str), Some("sim.run"));
        assert_eq!(ev.get("cycles").and_then(Json::as_int), Some(1234));
    }
}
