//! RAII wall-clock spans forming a causal trace tree.
//!
//! `Span::enter("sched.split")` assigns the span a process-unique id,
//! links it to the calling thread's innermost open span (its *parent*),
//! and bumps the thread's depth; when the guard drops, the span is
//! recorded on the global registry twice: as a transcript [`Event`]
//! (as before), and as a [`TraceSpan`] in the bounded trace ring
//! buffer — id, parent id, thread id, start offset, duration, and the
//! attribution context active at entry. The ring buffer is what the
//! Chrome-trace and flamegraph exporters consume (see
//! [`crate::export`]).
//!
//! [`Event`]: crate::registry::Event

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Json;
use crate::registry::{Registry, TraceSpan};

thread_local! {
    /// Ids of the calling thread's open spans, outermost first. The
    /// length is the nesting depth; the last element is the parent of
    /// the next span to open.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small dense per-thread id (Chrome's `tid`); `ThreadId` has no
    /// stable integer form, so we mint our own.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The process trace epoch: all span start offsets are measured from
/// the first call (so traces from one process share one timeline).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The calling thread's current span-nesting depth.
pub fn current_depth() -> usize {
    OPEN.with(|o| o.borrow().len())
}

/// The calling thread's dense trace thread id.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// An open span; records itself (name, fields, duration, trace links)
/// when dropped.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    tid: u64,
    name: String,
    fields: Vec<(String, Json)>,
    /// Attribution context at entry (operator, target), if any.
    op: Option<(String, String)>,
    start_us: u64,
    start: Instant,
}

impl Span {
    /// Opens a span: assigns it a fresh id, parents it under the
    /// thread's innermost open span, and increases the nesting depth.
    pub fn enter(name: impl Into<String>) -> Span {
        let start_us = u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX);
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|o| {
            let mut o = o.borrow_mut();
            let parent = o.last().copied();
            o.push(id);
            parent
        });
        Span {
            id,
            parent,
            tid: current_tid(),
            name: name.into(),
            fields: Vec::new(),
            op: crate::attr::current(),
            start_us,
            start: Instant::now(),
        }
    }

    /// The span's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the enclosing span on this thread, if any.
    pub fn parent_id(&self) -> Option<u64> {
        self.parent
    }

    /// Attaches a structured field, builder-style.
    pub fn with_field(mut self, key: impl Into<String>, value: Json) -> Span {
        self.fields.push((key.into(), value));
        self
    }

    /// Attaches a structured field to an open span.
    pub fn field(&mut self, key: impl Into<String>, value: Json) {
        self.fields.push((key.into(), value));
    }

    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.elapsed_us();
        let registry = Registry::global();
        // record at the depth *inside* the span, then pop
        registry.record_event(&self.name, std::mem::take(&mut self.fields), Some(dur));
        registry.record_trace(TraceSpan {
            id: self.id,
            parent: self.parent,
            tid: self.tid,
            name: std::mem::take(&mut self.name),
            op: self.op.take(),
            start_us: self.start_us,
            dur_us: dur,
        });
        OPEN.with(|o| {
            let mut o = o.borrow_mut();
            // Spans are scope-bound in practice; tolerate out-of-order
            // drops by removing this id wherever it sits.
            if o.last() == Some(&self.id) {
                o.pop();
            } else {
                o.retain(|&x| x != self.id);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        // No `clear()`: the global registry is shared with concurrently
        // running tests; filtering by this test's unique name prefix is
        // isolation enough.
        let reg = Registry::global();
        {
            let _outer = Span::enter("test_span.outer");
            {
                let _inner = Span::enter("test_span.inner").with_field("k", Json::Str("v".into()));
            }
            crate::event("test_span.note", vec![]);
        }
        let events: Vec<_> = reg
            .events()
            .into_iter()
            .filter(|e| e.name.starts_with("test_span."))
            .collect();
        assert_eq!(events.len(), 3, "{events:?}");
        // inner closes first, at depth 2; the note fires at depth 1;
        // outer closes last at depth 1
        assert_eq!(events[0].name, "test_span.inner");
        assert_eq!(events[0].depth, 2);
        assert_eq!(
            events[0].fields,
            vec![("k".to_string(), Json::Str("v".into()))]
        );
        assert_eq!(events[1].name, "test_span.note");
        assert_eq!(events[1].depth, 1);
        assert!(events[1].duration_us.is_none());
        assert_eq!(events[2].name, "test_span.outer");
        assert_eq!(events[2].depth, 1);
        assert!(events[2].duration_us.is_some());
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn trace_records_carry_parent_links_and_attribution() {
        let reg = Registry::global();
        let (outer_id, inner_id);
        {
            let _attr = crate::attr::AttrGuard::enter("span_test_op", "t");
            let outer = Span::enter("trace_span.outer");
            outer_id = outer.id();
            let inner = Span::enter("trace_span.inner");
            inner_id = inner.id();
            assert_eq!(inner.parent_id(), Some(outer_id));
            drop(inner);
            drop(outer);
        }
        let traces = reg.traces();
        let outer = traces.iter().find(|t| t.id == outer_id).unwrap();
        let inner = traces.iter().find(|t| t.id == inner_id).unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(inner.tid, outer.tid);
        assert_eq!(inner.op.as_ref().unwrap().0, "span_test_op");
        assert!(inner.start_us >= outer.start_us);
    }
}
