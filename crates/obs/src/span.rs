//! RAII wall-clock spans with per-thread nesting.
//!
//! `Span::enter("sched.split")` bumps the calling thread's depth; when
//! the guard drops, the span is recorded on the global registry with its
//! duration, and any events emitted while the guard lived carry a deeper
//! indentation in the transcript.

use std::cell::Cell;
use std::time::Instant;

use crate::json::Json;
use crate::registry::Registry;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The calling thread's current span-nesting depth.
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// An open span; records itself (name, fields, duration) when dropped.
#[derive(Debug)]
pub struct Span {
    name: String,
    fields: Vec<(String, Json)>,
    start: Instant,
}

impl Span {
    /// Opens a span and increases the thread's nesting depth.
    pub fn enter(name: impl Into<String>) -> Span {
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            name: name.into(),
            fields: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Attaches a structured field, builder-style.
    pub fn with_field(mut self, key: impl Into<String>, value: Json) -> Span {
        self.fields.push((key.into(), value));
        self
    }

    /// Attaches a structured field to an open span.
    pub fn field(&mut self, key: impl Into<String>, value: Json) {
        self.fields.push((key.into(), value));
    }

    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.elapsed_us();
        // record at the depth *inside* the span, then pop
        Registry::global().record_event(&self.name, std::mem::take(&mut self.fields), Some(dur));
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        let reg = Registry::global();
        reg.clear();
        {
            let _outer = Span::enter("test_span.outer");
            {
                let _inner = Span::enter("test_span.inner").with_field("k", Json::Str("v".into()));
            }
            crate::event("test_span.note", vec![]);
        }
        let events: Vec<_> = reg
            .events()
            .into_iter()
            .filter(|e| e.name.starts_with("test_span."))
            .collect();
        assert_eq!(events.len(), 3, "{events:?}");
        // inner closes first, at depth 2; the note fires at depth 1;
        // outer closes last at depth 1
        assert_eq!(events[0].name, "test_span.inner");
        assert_eq!(events[0].depth, 2);
        assert_eq!(
            events[0].fields,
            vec![("k".to_string(), Json::Str("v".into()))]
        );
        assert_eq!(events[1].name, "test_span.note");
        assert_eq!(events[1].depth, 1);
        assert!(events[1].duration_us.is_none());
        assert_eq!(events[2].name, "test_span.outer");
        assert_eq!(events[2].depth, 1);
        assert!(events[2].duration_us.is_some());
        assert_eq!(current_depth(), 0);
    }
}
