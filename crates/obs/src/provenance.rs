//! Schedule provenance: one record per scheduling rewrite.
//!
//! `exo_sched::Procedure` appends a [`ProvenanceEvent`] for every
//! operator applied to it, building the *schedule transcript* — the
//! ordered story of how a naive kernel became the scheduled one, with
//! each step's safety-check verdict and cost. Rejected rewrites leave
//! the procedure untouched, so they appear only in the global registry,
//! never in a procedure's own transcript.

use std::fmt;

use crate::json::Json;
use crate::registry::format_us;

/// Outcome of a scheduling operator's safety check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The rewrite was applied; its checks (if any) passed.
    Accepted,
    /// The rewrite was refused; the message says why.
    Rejected(String),
}

impl Verdict {
    /// Whether the rewrite went through.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Accepted => f.write_str("ok"),
            Verdict::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

/// One applied (or rejected) scheduling rewrite.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvenanceEvent {
    /// Operator name (`split`, `reorder`, `stage_mem`, …).
    pub op: String,
    /// The operator's target pattern / argument summary.
    pub target: String,
    /// Safety-check outcome.
    pub verdict: Verdict,
    /// Statement count before the rewrite.
    pub pre_stmts: usize,
    /// Statement count after the rewrite (equals `pre_stmts` on
    /// rejection).
    pub post_stmts: usize,
    /// Solver queries issued while the operator ran.
    pub smt_queries: usize,
    /// Wall-clock duration of the operator.
    pub duration_us: u64,
}

impl ProvenanceEvent {
    /// JSON form (one line of a transcript export).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type".into(), Json::Str("rewrite".into())),
            ("op".into(), Json::Str(self.op.clone())),
            ("target".into(), Json::Str(self.target.clone())),
            ("verdict".into(), Json::Str(self.verdict.to_string())),
            ("pre_stmts".into(), Json::uint(self.pre_stmts as u64)),
            ("post_stmts".into(), Json::uint(self.post_stmts as u64)),
            ("smt_queries".into(), Json::uint(self.smt_queries as u64)),
            ("dur_us".into(), Json::uint(self.duration_us)),
        ])
    }
}

/// Renders a human-readable schedule transcript, one numbered line per
/// rewrite (the `proc.transcript_text()` view).
pub fn render_transcript(proc_name: &str, events: &[ProvenanceEvent]) -> String {
    let total_us: u64 = events.iter().map(|e| e.duration_us).sum();
    let total_q: usize = events.iter().map(|e| e.smt_queries).sum();
    let mut out = format!(
        "schedule transcript for `{proc_name}` ({} directive{}, {} smt quer{}, {})\n",
        events.len(),
        if events.len() == 1 { "" } else { "s" },
        total_q,
        if total_q == 1 { "y" } else { "ies" },
        format_us(total_us),
    );
    let width = events.len().to_string().len();
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "  {:>width$}. {}({}) {} [stmts {}→{}, smt {}, {}]\n",
            i + 1,
            e.op,
            e.target,
            e.verdict,
            e.pre_stmts,
            e.post_stmts,
            e.smt_queries,
            format_us(e.duration_us),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &str) -> ProvenanceEvent {
        ProvenanceEvent {
            op: op.into(),
            target: "for i in _: _".into(),
            verdict: Verdict::Accepted,
            pre_stmts: 3,
            post_stmts: 5,
            smt_queries: 2,
            duration_us: 1500,
        }
    }

    #[test]
    fn transcript_renders_each_rewrite_in_order() {
        let text = render_transcript("gemm", &[ev("split"), ev("reorder")]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("`gemm`") && lines[0].contains("2 directives"));
        assert!(lines[0].contains("4 smt queries") && lines[0].contains("3.0ms"));
        assert!(lines[1]
            .trim_start()
            .starts_with("1. split(for i in _: _) ok"));
        assert!(lines[2].trim_start().starts_with("2. reorder("));
        assert!(lines[1].contains("stmts 3→5"));
    }

    #[test]
    fn provenance_json_round_trips() {
        let e = ev("stage_mem");
        let parsed = crate::json::Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("stage_mem"));
        assert_eq!(parsed.get("verdict").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("smt_queries").and_then(Json::as_int), Some(2));
    }
}
