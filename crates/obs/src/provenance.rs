//! Schedule provenance: one record per scheduling rewrite.
//!
//! `exo_sched::Procedure` appends a [`ProvenanceEvent`] for every
//! operator applied to it, building the *schedule transcript* — the
//! ordered story of how a naive kernel became the scheduled one, with
//! each step's safety-check verdict and cost. Rejected rewrites leave
//! the procedure untouched, so they appear only in the global registry,
//! never in a procedure's own transcript.
//!
//! Verdicts use the one shared vocabulary of
//! [`exo_core::diag::Verdict`] — the same `name()` spelling the lint
//! diagnostics JSON uses for severities, so machine consumers of
//! transcript exports and lint exports read one dialect.
//!
//! [`render_transcript`] folds a per-operator cost table under the
//! per-rewrite listing: for each operator, how many rewrites, how many
//! checking-context queries they caused, the cache hit ratio, the wall
//! time, and the net statement delta — the attribution view of "what
//! did my schedule cost".

use crate::json::Json;
use crate::registry::format_us;

pub use exo_core::diag::Verdict;

/// One applied (or rejected) scheduling rewrite.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvenanceEvent {
    /// Operator name (`split`, `reorder`, `stage_mem`, …).
    pub op: String,
    /// The operator's target pattern / argument summary.
    pub target: String,
    /// Safety-check outcome.
    pub verdict: Verdict,
    /// Statement count before the rewrite.
    pub pre_stmts: usize,
    /// Statement count after the rewrite (equals `pre_stmts` on
    /// rejection).
    pub post_stmts: usize,
    /// Checking-context queries issued while the operator ran
    /// (including canonical-cache hits).
    pub smt_queries: usize,
    /// How many of those queries the canonical verdict cache answered.
    pub cache_hits: usize,
    /// Wall-clock duration of the operator.
    pub duration_us: u64,
}

impl ProvenanceEvent {
    /// JSON form (one line of a transcript export). The `verdict` field
    /// carries the shared [`Verdict::name`] vocabulary; the rejection
    /// reason, when present, is a separate `reason` field.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type".into(), Json::Str("rewrite".into())),
            ("op".into(), Json::Str(self.op.clone())),
            ("target".into(), Json::Str(self.target.clone())),
            ("verdict".into(), Json::Str(self.verdict.name().into())),
        ];
        if let Some(reason) = self.verdict.reason() {
            fields.push(("reason".into(), Json::Str(reason.into())));
        }
        fields.extend([
            ("pre_stmts".into(), Json::uint(self.pre_stmts as u64)),
            ("post_stmts".into(), Json::uint(self.post_stmts as u64)),
            ("smt_queries".into(), Json::uint(self.smt_queries as u64)),
            ("cache_hits".into(), Json::uint(self.cache_hits as u64)),
            ("dur_us".into(), Json::uint(self.duration_us)),
        ]);
        Json::obj(fields)
    }
}

/// One row of the per-operator cost table: the aggregate cost of every
/// rewrite sharing an operator name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpCost {
    /// Operator name.
    pub op: String,
    /// Number of rewrites.
    pub count: usize,
    /// Checking-context queries caused (incl. cache hits).
    pub queries: usize,
    /// Queries answered by the canonical verdict cache.
    pub cache_hits: usize,
    /// Total wall time, µs.
    pub wall_us: u64,
    /// Net statement delta (post − pre summed over rewrites).
    pub stmt_delta: i64,
}

impl OpCost {
    /// Cache hit ratio (0 when no queries ran).
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// Aggregates provenance events into the per-operator cost table,
/// sorted by descending query count (the "who caused these queries"
/// ordering), ties broken by name.
pub fn per_op_costs(events: &[ProvenanceEvent]) -> Vec<OpCost> {
    let mut by_op: std::collections::BTreeMap<&str, OpCost> = Default::default();
    for e in events {
        let row = by_op.entry(&e.op).or_insert_with(|| OpCost {
            op: e.op.clone(),
            count: 0,
            queries: 0,
            cache_hits: 0,
            wall_us: 0,
            stmt_delta: 0,
        });
        row.count += 1;
        row.queries += e.smt_queries;
        row.cache_hits += e.cache_hits;
        row.wall_us += e.duration_us;
        row.stmt_delta += e.post_stmts as i64 - e.pre_stmts as i64;
    }
    let mut rows: Vec<OpCost> = by_op.into_values().collect();
    rows.sort_by(|a, b| b.queries.cmp(&a.queries).then(a.op.cmp(&b.op)));
    rows
}

/// Renders a human-readable schedule transcript: one numbered line per
/// rewrite (the `proc.transcript_text()` view), then the per-operator
/// cost table.
pub fn render_transcript(proc_name: &str, events: &[ProvenanceEvent]) -> String {
    let total_us: u64 = events.iter().map(|e| e.duration_us).sum();
    let total_q: usize = events.iter().map(|e| e.smt_queries).sum();
    let mut out = format!(
        "schedule transcript for `{proc_name}` ({} directive{}, {} smt quer{}, {})\n",
        events.len(),
        if events.len() == 1 { "" } else { "s" },
        total_q,
        if total_q == 1 { "y" } else { "ies" },
        format_us(total_us),
    );
    let width = events.len().to_string().len();
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "  {:>width$}. {}({}) {} [stmts {}→{}, smt {}, {}]\n",
            i + 1,
            e.op,
            e.target,
            e.verdict,
            e.pre_stmts,
            e.post_stmts,
            e.smt_queries,
            format_us(e.duration_us),
        ));
    }
    let costs = per_op_costs(events);
    if !costs.is_empty() {
        out.push_str("per-operator cost:\n");
        out.push_str(&format!(
            "  {:<16} {:>3} {:>8} {:>6} {:>5} {:>9} {:>7}\n",
            "op", "n", "queries", "hits", "hit%", "wall", "Δstmts"
        ));
        for c in &costs {
            out.push_str(&format!(
                "  {:<16} {:>3} {:>8} {:>6} {:>4.0}% {:>9} {:>+7}\n",
                c.op,
                c.count,
                c.queries,
                c.cache_hits,
                c.hit_ratio() * 100.0,
                format_us(c.wall_us),
                c.stmt_delta,
            ));
        }
        let hits: usize = costs.iter().map(|c| c.cache_hits).sum();
        out.push_str(&format!(
            "  {:<16} {:>3} {:>8} {:>6} {:>4.0}% {:>9} {:>+7}\n",
            "total",
            events.len(),
            total_q,
            hits,
            if total_q == 0 {
                0.0
            } else {
                hits as f64 / total_q as f64 * 100.0
            },
            format_us(total_us),
            costs.iter().map(|c| c.stmt_delta).sum::<i64>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &str) -> ProvenanceEvent {
        ProvenanceEvent {
            op: op.into(),
            target: "for i in _: _".into(),
            verdict: Verdict::Accepted,
            pre_stmts: 3,
            post_stmts: 5,
            smt_queries: 2,
            cache_hits: 1,
            duration_us: 1500,
        }
    }

    #[test]
    fn transcript_renders_each_rewrite_in_order() {
        let text = render_transcript("gemm", &[ev("split"), ev("reorder")]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("`gemm`") && lines[0].contains("2 directives"));
        assert!(lines[0].contains("4 smt queries") && lines[0].contains("3.0ms"));
        assert!(lines[1]
            .trim_start()
            .starts_with("1. split(for i in _: _) accepted"));
        assert!(lines[2].trim_start().starts_with("2. reorder("));
        assert!(lines[1].contains("stmts 3→5"));
    }

    #[test]
    fn transcript_folds_a_per_operator_cost_table() {
        let text = render_transcript("gemm", &[ev("split"), ev("split"), ev("reorder")]);
        assert!(text.contains("per-operator cost:"), "{text}");
        let split_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("split"))
            .unwrap();
        // 2 rewrites, 4 queries, 2 hits, 50%, +4 statements
        assert!(split_row.contains(" 2 "), "{split_row}");
        assert!(split_row.contains(" 4 "), "{split_row}");
        assert!(split_row.contains("50%"), "{split_row}");
        assert!(split_row.contains("+4"), "{split_row}");
        let total_row = text.lines().last().unwrap();
        assert!(total_row.trim_start().starts_with("total"), "{total_row}");
        assert!(total_row.contains(" 6 "), "{total_row}");
    }

    #[test]
    fn per_op_costs_sort_by_query_count() {
        let mut cheap = ev("cheap");
        cheap.smt_queries = 0;
        cheap.cache_hits = 0;
        let rows = per_op_costs(&[cheap, ev("split"), ev("split")]);
        assert_eq!(rows[0].op, "split");
        assert_eq!(rows[0].queries, 4);
        assert_eq!(rows[1].op, "cheap");
    }

    #[test]
    fn provenance_json_round_trips() {
        let e = ev("stage_mem");
        let parsed = crate::json::Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("stage_mem"));
        assert_eq!(
            parsed.get("verdict").and_then(Json::as_str),
            Some("accepted")
        );
        assert_eq!(parsed.get("reason"), None);
        assert_eq!(parsed.get("smt_queries").and_then(Json::as_int), Some(2));
        assert_eq!(parsed.get("cache_hits").and_then(Json::as_int), Some(1));
    }

    #[test]
    fn rejected_events_carry_the_reason_separately() {
        let mut e = ev("split");
        e.verdict = Verdict::Rejected("no match".into());
        let parsed = crate::json::Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("verdict").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            parsed.get("reason").and_then(Json::as_str),
            Some("no match")
        );
    }
}
