//! The active attribution context: *which scheduling operator is the
//! system currently working for?*
//!
//! PR 1's flat counters answer "how many solver queries ran?"; this
//! module answers "which operator caused them". `exo-sched` pushes an
//! [`AttrGuard`] around every operator it runs, and every downstream
//! cost site — solver queries, canonical-cache hits/misses, effect
//! extraction, lint probes, simulated kernel runs — calls
//! [`counter_add_by_op`] next to its flat counter, splitting the same
//! total across `<name>.op.<operator>` sub-counters. By construction
//! the attributed sub-counters of a name sum to the flat counter, so
//! a cost table over them always reconciles against the global total.
//!
//! The context is a per-thread stack (operators can nest: `fuse`
//! re-checks through `stage_mem`'s machinery); the innermost frame
//! wins. Work performed outside any operator is attributed to
//! [`UNATTRIBUTED`]. Standalone drivers that are not scheduling
//! operators (the lint rule pack, benches) can claim otherwise-idle
//! work with [`AttrGuard::fallback`], which yields an inert guard when
//! an operator is already active.

use std::cell::RefCell;

/// Attribution label for work performed outside any context.
pub const UNATTRIBUTED: &str = "unattributed";

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

#[derive(Clone, Debug)]
struct Frame {
    op: String,
    target: String,
}

/// RAII frame of the attribution stack; pops on drop.
#[derive(Debug)]
pub struct AttrGuard {
    /// `fallback` on a non-empty stack produces an inert guard.
    armed: bool,
}

impl AttrGuard {
    /// Pushes an attribution frame: all attributable work on this
    /// thread is tagged `op` until the guard drops (or a nested guard
    /// shadows it).
    pub fn enter(op: impl Into<String>, target: impl Into<String>) -> AttrGuard {
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                op: op.into(),
                target: target.into(),
            })
        });
        AttrGuard { armed: true }
    }

    /// Pushes a frame only when no context is active — for drivers
    /// (lint passes, benches) that want their own label *unless* a
    /// scheduling operator is the real cause of the work.
    pub fn fallback(op: impl Into<String>, target: impl Into<String>) -> AttrGuard {
        let empty = STACK.with(|s| s.borrow().is_empty());
        if empty {
            AttrGuard::enter(op, target)
        } else {
            AttrGuard { armed: false }
        }
    }
}

impl Drop for AttrGuard {
    fn drop(&mut self) {
        if self.armed {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// The innermost attribution frame, as `(op, target)`.
pub fn current() -> Option<(String, String)> {
    STACK.with(|s| s.borrow().last().map(|f| (f.op.clone(), f.target.clone())))
}

/// The innermost operator name, or [`UNATTRIBUTED`].
pub fn op_label() -> String {
    STACK.with(|s| {
        s.borrow()
            .last()
            .map_or_else(|| UNATTRIBUTED.to_string(), |f| f.op.clone())
    })
}

/// Bumps the attributed sub-counter `<name>.op.<current op>`.
///
/// Call next to the flat `counter_add(name, …)` at the same site with
/// the same delta; the attributed family then always sums to the flat
/// counter.
pub fn counter_add_by_op(name: &str, delta: u64) {
    crate::counter_add(&format!("{name}.op.{}", op_label()), delta);
}

/// Sums the attributed family `<name>.op.*` of a flat counter —
/// `(label, value)` pairs plus the total, for reconciliation against
/// the flat counter itself.
pub fn attributed_counters(registry: &crate::Registry, name: &str) -> (Vec<(String, u64)>, u64) {
    let prefix = format!("{name}.op.");
    let rows: Vec<(String, u64)> = registry
        .counters()
        .into_iter()
        .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|op| (op.to_string(), v)))
        .collect();
    let total = rows.iter().map(|(_, v)| v).sum();
    (rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_nests_and_unwinds() {
        assert_eq!(op_label(), UNATTRIBUTED);
        {
            let _a = AttrGuard::enter("split", "for i in _: _");
            assert_eq!(current(), Some(("split".into(), "for i in _: _".into())));
            {
                let _b = AttrGuard::enter("stage_mem", "A");
                assert_eq!(op_label(), "stage_mem");
            }
            assert_eq!(op_label(), "split");
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn fallback_defers_to_an_active_operator() {
        {
            let _lint = AttrGuard::fallback("lint", "dead-alloc");
            assert_eq!(op_label(), "lint");
        }
        let _op = AttrGuard::enter("reorder", "for io in _: _");
        let _lint = AttrGuard::fallback("lint", "dead-alloc");
        assert_eq!(op_label(), "reorder");
    }

    #[test]
    fn attributed_counters_sum_to_the_flat_total() {
        let reg = crate::Registry::global();
        {
            let _a = AttrGuard::enter("attr_test_split", "x");
            crate::counter_add("attr_test.queries", 3);
            counter_add_by_op("attr_test.queries", 3);
        }
        crate::counter_add("attr_test.queries", 2);
        counter_add_by_op("attr_test.queries", 2);
        let (rows, total) = attributed_counters(reg, "attr_test.queries");
        assert_eq!(total, reg.counter("attr_test.queries"));
        assert!(rows
            .iter()
            .any(|(op, v)| op == "attr_test_split" && *v == 3));
        assert!(rows.iter().any(|(op, v)| op == UNATTRIBUTED && *v == 2));
    }
}
