//! # exo-obs
//!
//! Zero-dependency structured observability for the exo-rs pipeline.
//!
//! The whole premise of exocompilation is that *users* drive
//! optimization, which means users must be able to see what the system
//! did on their behalf: which rewrite fired, what it checked, how many
//! solver queries it cost, what the simulator measured. This crate is
//! the measurement substrate threaded through every other crate:
//!
//! * [`span::Span`] — RAII wall-clock spans with per-thread nesting;
//! * [`registry::Registry`] — a thread-safe global sink for counters,
//!   log₂ histograms, and structured events;
//! * [`json::Json`] — a hand-rolled JSON value (the sandbox has no
//!   crates.io access, so serialization is std-only) with a strict
//!   parser used to validate exported lines;
//! * [`provenance::ProvenanceEvent`] — one applied-or-rejected
//!   scheduling rewrite: operator, target, check verdict, statement
//!   delta, solver-query delta, duration. `exo_sched::Procedure`
//!   accumulates these into its schedule transcript.
//!
//! Sinks: [`registry::Registry::transcript`] renders a human-readable
//! indented log; [`registry::Registry::json_lines`] exports everything
//! as machine-readable JSON lines (one object per line), the format the
//! `BENCH_*.json` trajectory files use.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod provenance;
pub mod registry;
pub mod span;

pub use json::Json;
pub use provenance::{render_transcript, ProvenanceEvent, Verdict};
pub use registry::{Event, Histogram, Registry};
pub use span::Span;

/// Adds `delta` to the named global counter.
pub fn counter_add(name: &str, delta: u64) {
    Registry::global().counter_add(name, delta);
}

/// Reads the named global counter (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    Registry::global().counter(name)
}

/// Records `value` into the named global log₂ histogram.
pub fn record_hist(name: &str, value: u64) {
    Registry::global().record_hist(name, value);
}

/// Emits an instantaneous structured event to the global registry.
pub fn event(name: &str, fields: Vec<(String, Json)>) {
    Registry::global().event(name, fields);
}
