//! # exo-obs
//!
//! Std-only structured observability for the exo-rs pipeline (no
//! external crates; the one workspace dependency is `exo-core`, which
//! owns the shared severity/verdict vocabulary).
//!
//! The whole premise of exocompilation is that *users* drive
//! optimization, which means users must be able to see what the system
//! did on their behalf: which rewrite fired, what it checked, how many
//! solver queries it cost, what the simulator measured — and *which
//! scheduling operator caused each of those costs*. This crate is the
//! measurement substrate threaded through every other crate:
//!
//! * [`span::Span`] — RAII wall-clock spans forming a causal trace
//!   tree: process-unique id, parent link, thread id, recorded into a
//!   bounded ring buffer on the registry;
//! * [`attr`] — the active attribution context (current scheduling
//!   operator + target) and the `<counter>.op.<operator>` attributed
//!   counter families that always sum to their flat counter;
//! * [`registry::Registry`] — a thread-safe global sink for counters,
//!   log₂ histograms, structured events, and trace spans;
//! * [`json::Json`] — a hand-rolled JSON value (the sandbox has no
//!   crates.io access, so serialization is std-only) with a strict
//!   parser used to validate exported lines;
//! * [`provenance::ProvenanceEvent`] — one applied-or-rejected
//!   scheduling rewrite: operator, target, check verdict, statement
//!   delta, query/cache-hit deltas, duration. `exo_sched::Procedure`
//!   accumulates these into its schedule transcript, rendered with a
//!   per-operator cost table.
//!
//! Sinks: [`registry::Registry::transcript`] renders a human-readable
//! indented log; [`registry::Registry::json_lines`] exports everything
//! as machine-readable JSON lines (one object per line), the format the
//! `BENCH_*.json` trajectory files use; [`export`] renders the trace
//! ring as Chrome `trace_event` JSON (`chrome://tracing`/Perfetto) or
//! collapsed flamegraph stacks.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attr;
pub mod export;
pub mod json;
pub mod provenance;
pub mod registry;
pub mod span;

pub use attr::AttrGuard;
pub use json::Json;
pub use provenance::{per_op_costs, render_transcript, OpCost, ProvenanceEvent, Verdict};
pub use registry::{Event, Histogram, Registry, TraceSpan};
pub use span::Span;

/// Adds `delta` to the named global counter.
pub fn counter_add(name: &str, delta: u64) {
    Registry::global().counter_add(name, delta);
}

/// Reads the named global counter (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    Registry::global().counter(name)
}

/// Records `value` into the named global log₂ histogram.
pub fn record_hist(name: &str, value: u64) {
    Registry::global().record_hist(name, value);
}

/// Emits an instantaneous structured event to the global registry.
pub fn event(name: &str, fields: Vec<(String, Json)>) {
    Registry::global().event(name, fields);
}
