//! Round-trip coverage for the hand-rolled `exo_obs::json` module: the
//! printer and strict parser must agree on escapes, nesting, and number
//! forms, and the parser must reject malformed documents rather than
//! guessing — every exporter in the workspace (BENCH files, Chrome
//! traces, perf_diff reports) leans on these two functions.

use exo_obs::Json;

fn roundtrip(v: &Json) -> Json {
    let text = v.to_string();
    Json::parse(&text).unwrap_or_else(|e| panic!("reparse {text:?}: {e}"))
}

#[test]
fn escapes_round_trip() {
    let nasty = "quote:\" backslash:\\ newline:\n tab:\t cr:\r nul:\u{0} unicode:µs→λ";
    let v = Json::obj(vec![
        ("s".into(), Json::Str(nasty.into())),
        // keys need escaping too
        ("needs \"escaping\"\n".into(), Json::Int(1)),
    ]);
    let back = roundtrip(&v);
    assert_eq!(back.get("s").and_then(Json::as_str), Some(nasty));
    assert_eq!(
        back.get("needs \"escaping\"\n").and_then(Json::as_int),
        Some(1)
    );
}

#[test]
fn nested_structures_round_trip() {
    let v = Json::obj(vec![
        (
            "arr".into(),
            Json::Arr(vec![
                Json::Null,
                Json::Bool(true),
                Json::Bool(false),
                Json::Int(-42),
                Json::Float(1.5),
                Json::Arr(vec![Json::obj(vec![(
                    "deep".into(),
                    Json::Str("value".into()),
                )])]),
            ]),
        ),
        ("empty_arr".into(), Json::Arr(vec![])),
        ("empty_obj".into(), Json::obj(vec![])),
    ]);
    assert_eq!(roundtrip(&v), v);
}

#[test]
fn numbers_round_trip_with_type_preserved() {
    // integers stay Int; floats always print with a decimal point so
    // they reparse as Float
    assert_eq!(roundtrip(&Json::Int(i64::MAX)), Json::Int(i64::MAX));
    assert_eq!(roundtrip(&Json::Int(i64::MIN)), Json::Int(i64::MIN));
    assert_eq!(roundtrip(&Json::Float(3.0)), Json::Float(3.0));
    assert_eq!(roundtrip(&Json::Float(-0.125)), Json::Float(-0.125));
    assert_eq!(roundtrip(&Json::Float(1e300)), Json::Float(1e300));
}

#[test]
fn non_finite_floats_degrade_to_null() {
    // JSON has no NaN/Inf; the printer emits null (like serde_json)
    assert_eq!(roundtrip(&Json::Float(f64::NAN)), Json::Null);
    assert_eq!(roundtrip(&Json::Float(f64::INFINITY)), Json::Null);
}

#[test]
fn parser_rejects_malformed_documents() {
    let bad = [
        "",
        "{",
        "}",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{'a': 1}",
        "\"unterminated",
        "tru",
        "1 2",          // trailing characters
        "{\"a\":1} {}", // two documents
        "[1, 2,,3]",
        "\"bad escape \\q\"",
        "nan",
    ];
    for text in bad {
        assert!(
            Json::parse(text).is_err(),
            "parser accepted malformed input {text:?}"
        );
    }
}

#[test]
fn parser_accepts_whitespace_variants() {
    let v = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : null } ").expect("parses");
    assert_eq!(
        v.get("a"),
        Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
    );
    assert_eq!(v.get("b"), Some(&Json::Null));
}
