//! Concurrent trace-tree integration test: spans opened on different
//! threads must form per-thread parent chains (no cross-thread
//! adoption), carry distinct thread ids, and record the attribution
//! context active at `enter` time. This is the property the Chrome and
//! flamegraph exporters rely on — a parent link crossing threads would
//! render nonsense stacks.

use std::thread;

use exo_obs::{AttrGuard, Registry, Span, TraceSpan};

const THREADS: usize = 8;

fn span_named<'a>(traces: &'a [TraceSpan], name: &str) -> &'a TraceSpan {
    let hits: Vec<&TraceSpan> = traces.iter().filter(|t| t.name == name).collect();
    assert_eq!(hits.len(), 1, "expected exactly one span named {name}");
    hits[0]
}

#[test]
fn concurrent_span_nesting_keeps_parent_links_within_threads() {
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            thread::spawn(move || {
                let _attr = AttrGuard::enter("tt_op", format!("worker-{i}"));
                let outer = Span::enter(format!("tt.outer.{i}"));
                {
                    let mid = Span::enter(format!("tt.mid.{i}"));
                    {
                        let _leaf = Span::enter(format!("tt.leaf.{i}"));
                        exo_obs::attr::counter_add_by_op("tt.work", 1);
                    }
                    drop(mid);
                }
                drop(outer);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let traces = Registry::global().traces();
    let mut tids = std::collections::BTreeSet::new();
    for i in 0..THREADS {
        let outer = span_named(&traces, &format!("tt.outer.{i}"));
        let mid = span_named(&traces, &format!("tt.mid.{i}"));
        let leaf = span_named(&traces, &format!("tt.leaf.{i}"));

        // parent chain: leaf → mid → outer → (root), entirely intra-thread
        assert_eq!(
            leaf.parent,
            Some(mid.id),
            "leaf {i} adopted a foreign parent"
        );
        assert_eq!(
            mid.parent,
            Some(outer.id),
            "mid {i} adopted a foreign parent"
        );
        assert_eq!(outer.parent, None, "outer {i} should be a root");
        assert_eq!(leaf.tid, mid.tid);
        assert_eq!(mid.tid, outer.tid);
        tids.insert(outer.tid);

        // spans carry the attribution context of their thread
        let (op, target) = leaf.op.clone().expect("leaf has attribution");
        assert_eq!(op, "tt_op");
        assert_eq!(target, format!("worker-{i}"));

        // ids are process-unique and children close before parents
        assert!(leaf.id != mid.id && mid.id != outer.id && leaf.id != outer.id);
        assert!(
            leaf.dur_us <= outer.dur_us + 1_000,
            "leaf {i} outlived its root by more than clock slack"
        );
    }
    assert_eq!(tids.len(), THREADS, "each worker should get its own tid");

    // the attributed counter family sums to the flat total even when
    // bumped from many threads at once
    let reg = Registry::global();
    let (by_op, total) = exo_obs::attr::attributed_counters(reg, "tt.work");
    assert_eq!(total, THREADS as u64);
    assert!(by_op.iter().all(|(op, _)| op == "tt_op"), "{by_op:?}");
}
