//! # exo-front
//!
//! The textual front-end for exo-rs: a lexer and recursive-descent
//! parser for the paper's surface syntax (`@proc` / `@instr`, `seq`
//! loops, dependent tensor types, windows, `@`-memory annotations,
//! configuration reads/writes). The original Exo is embedded in Python;
//! exo-rs offers both a Rust builder API (`exo_core::build`) and this
//! text syntax, which round-trips with `exo_core::printer` and keeps the
//! examples legible.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod lex;
pub mod parse;

pub use parse::{parse_library, parse_proc, ParseEnv, ParseError};
