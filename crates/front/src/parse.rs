//! Recursive-descent parser for the Exo surface syntax (paper §2):
//!
//! ```text
//! @proc                          (or @instr("C template"))
//! def gemm(n: size, A: f32[n, n] @ DRAM, w: [f32][n] @ SPAD):
//!     assert n <= 16
//!     res : f32[16] @ DRAM
//!     y = A[0:n, 2]
//!     for i in seq(0, n):
//!         if i < 4:
//!             res[i] = A[i, i] * 2.0
//!         Config.stride = stride(A, 0)
//!     foo(n, A[0:4, 0:4])
//! ```
//!
//! Procedures defined earlier in the same source (or supplied through
//! [`ParseEnv`]) are callable by name.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use exo_core::ir::{ArgType, BinOp, Expr, FnArg, InstrTemplate, Proc, Stmt, WAccess};
use exo_core::types::{CtrlType, DataType, MemName};
use exo_core::{Block, Sym};

use crate::lex::{lex, LexError, Tok};

/// A parse error with a line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// External names available to parsed code: procedures callable by name,
/// and configuration structs with their fields.
#[derive(Clone, Default, Debug)]
pub struct ParseEnv {
    /// Callable procedures by spelling.
    pub procs: HashMap<String, Arc<Proc>>,
    /// Configuration structs: name → (struct sym, field spelling → sym).
    pub configs: HashMap<String, (Sym, HashMap<String, Sym>)>,
}

impl ParseEnv {
    /// An empty environment.
    pub fn new() -> ParseEnv {
        ParseEnv::default()
    }

    /// Registers a callable procedure.
    pub fn add_proc(&mut self, p: Arc<Proc>) -> &mut Self {
        self.procs.insert(p.name.name(), p);
        self
    }

    /// Registers a configuration struct.
    pub fn add_config(&mut self, decl: &exo_core::ConfigDecl) -> &mut Self {
        let fields = decl
            .fields
            .iter()
            .map(|f| (f.name.name(), f.name))
            .collect();
        self.configs.insert(decl.name.name(), (decl.name, fields));
        self
    }
}

/// Parses a source file containing one or more procedures; later
/// procedures may call earlier ones.
///
/// # Errors
///
/// Returns the first syntax error.
pub fn parse_library(src: &str, env: &ParseEnv) -> Result<Vec<Arc<Proc>>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        env: env.clone(),
        scopes: Vec::new(),
    };
    let mut out = Vec::new();
    while !p.at(&Tok::Eof) {
        let proc = p.parse_proc()?;
        p.env.procs.insert(proc.name.name(), Arc::clone(&proc));
        out.push(proc);
    }
    Ok(out)
}

/// Parses a single procedure.
///
/// # Errors
///
/// Returns the first syntax error.
pub fn parse_proc(src: &str, env: &ParseEnv) -> Result<Arc<Proc>, ParseError> {
    let procs = parse_library(src, env)?;
    procs.into_iter().next().ok_or_else(|| ParseError {
        line: 1,
        message: "no procedure found".into(),
    })
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    env: ParseEnv,
    /// lexical scopes: spelling → (symbol, is-data)
    scopes: Vec<HashMap<String, (Sym, bool)>>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.at(&Tok::Punct(p)) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected {kw:?}, found {other}")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn eat_newlines(&mut self) {
        while self.at(&Tok::Newline) {
            self.bump();
        }
    }

    fn lookup(&self, name: &str) -> Option<Sym> {
        self.lookup_full(name).map(|(s, _)| s)
    }

    fn lookup_full(&self, name: &str) -> Option<(Sym, bool)> {
        for scope in self.scopes.iter().rev() {
            if let Some(&entry) = scope.get(name) {
                return Some(entry);
            }
        }
        None
    }

    fn bind(&mut self, name: &str) -> Sym {
        self.bind_kind(name, false)
    }

    fn bind_data(&mut self, name: &str) -> Sym {
        self.bind_kind(name, true)
    }

    fn bind_kind(&mut self, name: &str, is_data: bool) -> Sym {
        let s = Sym::new(name);
        // The parser keeps at least the proc-level scope open while
        // binding; if a bug ever drains the stack, reopen one rather
        // than abort mid-parse.
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), (s, is_data));
        }
        s
    }

    // ------------------------------------------------------------------

    fn parse_proc(&mut self) -> Result<Arc<Proc>, ParseError> {
        self.eat_newlines();
        // @proc or @instr("…")
        self.expect_punct("@")?;
        let deco = self.ident()?;
        let instr = match deco.as_str() {
            "proc" => None,
            "instr" => {
                self.expect_punct("(")?;
                let template = match self.bump() {
                    Tok::Str(s) => s,
                    other => return self.err(format!("expected template string, found {other}")),
                };
                self.expect_punct(")")?;
                Some(InstrTemplate {
                    c_instr: template,
                    c_global: None,
                })
            }
            other => return self.err(format!("expected @proc or @instr, found @{other}")),
        };
        self.eat_newlines();
        self.expect_ident("def")?;
        let name = self.ident()?;
        self.scopes.push(HashMap::new());
        self.expect_punct("(")?;
        let mut args = Vec::new();
        while !self.at(&Tok::Punct(")")) {
            args.push(self.parse_arg()?);
            if self.at(&Tok::Punct(",")) {
                self.bump();
            }
        }
        self.bump(); // ')'
        self.expect_punct(":")?;
        self.eat_newlines();
        if !self.at(&Tok::Indent) {
            return self.err("expected an indented body");
        }
        self.bump();
        // asserts first
        let mut preds = Vec::new();
        loop {
            self.eat_newlines();
            if let Tok::Ident(s) = self.peek() {
                if s == "assert" {
                    self.bump();
                    preds.push(self.parse_expr()?);
                    continue;
                }
            }
            break;
        }
        let body = self.parse_block()?;
        self.scopes.pop();
        Ok(Arc::new(Proc {
            name: Sym::new(name),
            args,
            preds,
            body,
            instr,
        }))
    }

    fn parse_arg(&mut self) -> Result<FnArg, ParseError> {
        let name = self.ident()?;
        self.expect_punct(":")?;
        // [f32][shape] window, f32[shape] tensor, f32 scalar, or ctrl type
        let (ty, window) = if self.at(&Tok::Punct("[")) {
            self.bump();
            let t = self.ident()?;
            self.expect_punct("]")?;
            (t, true)
        } else {
            (self.ident()?, false)
        };
        if let Some(ct) = ctrl_type(&ty) {
            if window {
                return self.err("control types cannot be windows");
            }
            let sym = self.bind(&name);
            return Ok(FnArg {
                name: sym,
                ty: ArgType::Ctrl(ct),
            });
        }
        let dt = data_type(&ty).ok_or_else(|| ParseError {
            line: self.line(),
            message: format!("unknown type {ty}"),
        })?;
        let shape = if self.at(&Tok::Punct("[")) {
            self.bump();
            let mut dims = Vec::new();
            while !self.at(&Tok::Punct("]")) {
                dims.push(self.parse_expr()?);
                if self.at(&Tok::Punct(",")) {
                    self.bump();
                }
            }
            self.bump();
            dims
        } else {
            Vec::new()
        };
        let mem = if self.at(&Tok::Punct("@")) {
            self.bump();
            let mname = self.ident()?;
            MemName(self.mem_sym(&mname))
        } else {
            MemName::dram()
        };
        let sym = self.bind_data(&name);
        if shape.is_empty() && !window {
            Ok(FnArg {
                name: sym,
                ty: ArgType::Scalar { ty: dt, mem },
            })
        } else {
            Ok(FnArg {
                name: sym,
                ty: ArgType::Tensor {
                    ty: dt,
                    shape,
                    window,
                    mem,
                },
            })
        }
    }

    fn mem_sym(&self, name: &str) -> Sym {
        if name == "DRAM" {
            MemName::dram().0
        } else {
            // memory names are matched by spelling at code generation
            Sym::new(name)
        }
    }

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let mut out = Vec::new();
        loop {
            self.eat_newlines();
            if self.at(&Tok::Dedent) || self.at(&Tok::Eof) {
                if self.at(&Tok::Dedent) {
                    self.bump();
                }
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let Tok::Ident(head) = self.peek().clone() else {
            return self.err(format!("expected a statement, found {}", self.peek()));
        };
        match head.as_str() {
            "pass" => {
                self.bump();
                Ok(Stmt::Pass)
            }
            "for" => self.parse_for(),
            "if" => self.parse_if(),
            _ => self.parse_simple_stmt(),
        }
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // for
        let var = self.ident()?;
        self.expect_ident("in")?;
        self.expect_ident("seq")?;
        self.expect_punct("(")?;
        let lo = self.parse_expr()?;
        self.expect_punct(",")?;
        let hi = self.parse_expr()?;
        self.expect_punct(")")?;
        self.expect_punct(":")?;
        self.eat_newlines();
        if !self.at(&Tok::Indent) {
            return self.err("expected an indented loop body");
        }
        self.bump();
        self.scopes.push(HashMap::new());
        let iter = self.bind(&var);
        let body = self.parse_block()?;
        self.scopes.pop();
        Ok(Stmt::For { iter, lo, hi, body })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // if
        let cond = self.parse_expr()?;
        self.expect_punct(":")?;
        self.eat_newlines();
        if !self.at(&Tok::Indent) {
            return self.err("expected an indented branch");
        }
        self.bump();
        self.scopes.push(HashMap::new());
        let body = self.parse_block()?;
        self.scopes.pop();
        self.eat_newlines();
        let orelse = if matches!(self.peek(), Tok::Ident(s) if s == "else") {
            self.bump();
            self.expect_punct(":")?;
            self.eat_newlines();
            if !self.at(&Tok::Indent) {
                return self.err("expected an indented else branch");
            }
            self.bump();
            self.scopes.push(HashMap::new());
            let b = self.parse_block()?;
            self.scopes.pop();
            b
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, body, orelse })
    }

    /// assign / reduce / alloc / window def / config write / call
    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        match self.peek().clone() {
            // call: name(args)
            Tok::Punct("(") => {
                self.bump();
                let proc = self
                    .env
                    .procs
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| ParseError {
                        line: self.line(),
                        message: format!("call to unknown procedure {name}"),
                    })?;
                let mut args = Vec::new();
                while !self.at(&Tok::Punct(")")) {
                    args.push(self.parse_expr()?);
                    if self.at(&Tok::Punct(",")) {
                        self.bump();
                    }
                }
                self.bump();
                Ok(Stmt::Call { proc, args })
            }
            // config write: Name.field = e
            Tok::Punct(".") => {
                self.bump();
                let field = self.ident()?;
                self.expect_punct("=")?;
                let rhs = self.parse_expr()?;
                let (config, fsym) = self.config_field(&name, &field)?;
                Ok(Stmt::WriteConfig {
                    config,
                    field: fsym,
                    rhs,
                })
            }
            // alloc: name : ty[shape] @ MEM
            Tok::Punct(":") => {
                self.bump();
                let ty_name = self.ident()?;
                let dt = data_type(&ty_name).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("unknown data type {ty_name}"),
                })?;
                let shape = if self.at(&Tok::Punct("[")) {
                    self.bump();
                    let mut dims = Vec::new();
                    while !self.at(&Tok::Punct("]")) {
                        dims.push(self.parse_expr()?);
                        if self.at(&Tok::Punct(",")) {
                            self.bump();
                        }
                    }
                    self.bump();
                    dims
                } else {
                    Vec::new()
                };
                let mem = if self.at(&Tok::Punct("@")) {
                    self.bump();
                    let m = self.ident()?;
                    MemName(self.mem_sym(&m))
                } else {
                    MemName::dram()
                };
                let sym = self.bind_data(&name);
                Ok(Stmt::Alloc {
                    name: sym,
                    ty: dt,
                    shape,
                    mem,
                })
            }
            // indexed store: name[idx] = / +=
            Tok::Punct("[") => {
                self.bump();
                let buf = self.lookup(&name).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("unknown buffer {name}"),
                })?;
                let mut coords: Vec<WAccess> = Vec::new();
                while !self.at(&Tok::Punct("]")) {
                    coords.push(self.parse_waccess()?);
                    if self.at(&Tok::Punct(",")) {
                        self.bump();
                    }
                }
                self.bump();
                let reduce = match self.bump() {
                    Tok::Punct("=") => false,
                    Tok::Punct("+=") => true,
                    other => return self.err(format!("expected = or +=, found {other}")),
                };
                let rhs = self.parse_expr()?;
                if coords.iter().all(|c| !c.is_interval()) {
                    let line = self.line();
                    let idx: Vec<Expr> = coords
                        .into_iter()
                        .map(|c| match c {
                            WAccess::Point(e) => Ok(e),
                            WAccess::Interval(..) => Err(ParseError {
                                line,
                                message: "interval access not allowed on the left-hand \
                                          side of an assignment"
                                    .into(),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    if reduce {
                        Ok(Stmt::Reduce { buf, idx, rhs })
                    } else {
                        Ok(Stmt::Assign { buf, idx, rhs })
                    }
                } else {
                    self.err("cannot store to a window expression")
                }
            }
            // scalar assign or window definition: name = e
            Tok::Punct("=") => {
                self.bump();
                let rhs = self.parse_expr()?;
                match &rhs {
                    Expr::Window { .. } => {
                        let sym = self.bind_data(&name);
                        Ok(Stmt::WindowDef { name: sym, rhs })
                    }
                    _ => {
                        let buf = self.lookup(&name).ok_or_else(|| ParseError {
                            line: self.line(),
                            message: format!("unknown scalar {name}"),
                        })?;
                        Ok(Stmt::Assign {
                            buf,
                            idx: vec![],
                            rhs,
                        })
                    }
                }
            }
            Tok::Punct("+=") => {
                self.bump();
                let rhs = self.parse_expr()?;
                let buf = self.lookup(&name).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("unknown scalar {name}"),
                })?;
                Ok(Stmt::Reduce {
                    buf,
                    idx: vec![],
                    rhs,
                })
            }
            other => self.err(format!("unexpected {other} after {name}")),
        }
    }

    fn config_field(&mut self, config: &str, field: &str) -> Result<(Sym, Sym), ParseError> {
        if let Some((csym, fields)) = self.env.configs.get(config) {
            let fsym = fields.get(field).copied().ok_or_else(|| ParseError {
                line: self.line(),
                message: format!("configuration {config} has no field {field}"),
            })?;
            return Ok((*csym, fsym));
        }
        // unseen configurations are declared implicitly (they only matter
        // to codegen if materialized)
        let csym = Sym::new(config);
        let fsym = Sym::new(field);
        self.env.configs.insert(
            config.to_string(),
            (csym, [(field.to_string(), fsym)].into()),
        );
        Ok((csym, fsym))
    }

    // ---- expressions -------------------------------------------------

    fn parse_waccess(&mut self) -> Result<WAccess, ParseError> {
        let lo = self.parse_expr()?;
        if self.at(&Tok::Punct(":")) {
            self.bump();
            let hi = self.parse_expr()?;
            Ok(WAccess::Interval(lo, hi))
        } else {
            Ok(WAccess::Point(lo))
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Tok::Ident(s) if s == "or") {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while matches!(self.peek(), Tok::Ident(s) if s == "and") {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct(">") => Some(BinOp::Gt),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.parse_add()?;
                Ok(Expr::bin(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.at(&Tok::Punct("-")) {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::int(v)),
            Tok::Float(v) => Ok(Expr::float(v)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => self.parse_ident_expr(name),
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    fn parse_ident_expr(&mut self, name: String) -> Result<Expr, ParseError> {
        match name.as_str() {
            "true" => return Ok(Expr::bool(true)),
            "false" => return Ok(Expr::bool(false)),
            "stride" => {
                self.expect_punct("(")?;
                let buf_name = self.ident()?;
                let buf = self.lookup(&buf_name).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("stride of unknown buffer {buf_name}"),
                })?;
                self.expect_punct(",")?;
                let dim = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as usize,
                    other => return self.err(format!("expected dimension, found {other}")),
                };
                self.expect_punct(")")?;
                return Ok(Expr::Stride { buf, dim });
            }
            _ => {}
        }
        // builtin call: sin(x) …
        if self.at(&Tok::Punct("(")) {
            self.bump();
            let mut args = Vec::new();
            while !self.at(&Tok::Punct(")")) {
                args.push(self.parse_expr()?);
                if self.at(&Tok::Punct(",")) {
                    self.bump();
                }
            }
            self.bump();
            return Ok(Expr::BuiltIn {
                func: Sym::new(name),
                args,
            });
        }
        // config read: Name.field
        if self.at(&Tok::Punct(".")) {
            self.bump();
            let field = self.ident()?;
            let (config, fsym) = self.config_field(&name, &field)?;
            return Ok(Expr::ReadConfig {
                config,
                field: fsym,
            });
        }
        // indexed read or window
        if self.at(&Tok::Punct("[")) {
            self.bump();
            let buf = self.lookup(&name).ok_or_else(|| ParseError {
                line: self.line(),
                message: format!("unknown buffer {name}"),
            })?;
            let mut coords = Vec::new();
            while !self.at(&Tok::Punct("]")) {
                coords.push(self.parse_waccess()?);
                if self.at(&Tok::Punct(",")) {
                    self.bump();
                }
            }
            self.bump();
            if coords.iter().any(|c| c.is_interval()) {
                return Ok(Expr::Window { buf, coords });
            }
            let line = self.line();
            let idx = coords
                .into_iter()
                .map(|c| match c {
                    WAccess::Point(e) => Ok(e),
                    WAccess::Interval(..) => Err(ParseError {
                        line,
                        message: "mixed point/interval access: windows must be \
                                  returned as Expr::Window"
                            .into(),
                    }),
                })
                .collect::<Result<Vec<_>, ParseError>>()?;
            return Ok(Expr::Read { buf, idx });
        }
        // bare name: a control variable, a data scalar, or a whole
        // buffer (the latter two become Read with empty indices)
        let (sym, is_data) = self.lookup_full(&name).ok_or_else(|| ParseError {
            line: self.line(),
            message: format!("unknown name {name}"),
        })?;
        if is_data {
            Ok(Expr::Read {
                buf: sym,
                idx: vec![],
            })
        } else {
            Ok(Expr::Var(sym))
        }
    }
}

fn ctrl_type(name: &str) -> Option<CtrlType> {
    match name {
        "size" => Some(CtrlType::Size),
        "index" => Some(CtrlType::Index),
        "int" => Some(CtrlType::Int),
        "bool" => Some(CtrlType::Bool),
        "stride" => Some(CtrlType::Stride),
        _ => None,
    }
}

fn data_type(name: &str) -> Option<DataType> {
    match name {
        "R" => Some(DataType::R),
        "f16" => Some(DataType::F16),
        "f32" => Some(DataType::F32),
        "f64" => Some(DataType::F64),
        "i8" => Some(DataType::I8),
        "i32" => Some(DataType::I32),
        "u8" => Some(DataType::U8),
        "u16" => Some(DataType::U16),
        _ => None,
    }
}
