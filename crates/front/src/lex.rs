//! Lexer for the Exo surface syntax: Python-flavored, with significant
//! indentation turned into `Indent`/`Dedent` tokens.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (used by `@instr("…")`).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// Increase of indentation.
    Indent,
    /// Decrease of indentation.
    Dedent,
    /// End of line (only between statements).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Indent => write!(f, "<indent>"),
            Tok::Dedent => write!(f, "<dedent>"),
            Tok::Newline => write!(f, "<newline>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexer error with a line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<=", ">=", "==", "!=", "+=", "->", "(", ")", "[", "]", ":", ",", "@", ".", "+", "-", "*", "/",
    "%", "<", ">", "=",
];

/// Tokenizes a source string.
///
/// # Errors
///
/// Fails on unterminated strings, bad numbers, inconsistent dedents, or
/// unknown characters.
pub fn lex(src: &str) -> Result<Vec<(Tok, usize)>, LexError> {
    let mut toks: Vec<(Tok, usize)> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let no_comment = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        if no_comment.trim().is_empty() {
            continue;
        }
        let indent = no_comment.len() - no_comment.trim_start().len();
        let current = indents.last().copied().unwrap_or(0);
        match indent.cmp(&current) {
            std::cmp::Ordering::Greater => {
                indents.push(indent);
                toks.push((Tok::Indent, line_no));
            }
            std::cmp::Ordering::Less => {
                while indents.last().copied().unwrap_or(0) > indent {
                    indents.pop();
                    toks.push((Tok::Dedent, line_no));
                }
                if indents.last().copied().unwrap_or(0) != indent {
                    return Err(LexError {
                        line: line_no,
                        message: "inconsistent indentation".into(),
                    });
                }
            }
            std::cmp::Ordering::Equal => {}
        }
        lex_line(no_comment.trim_start(), line_no, &mut toks)?;
        toks.push((Tok::Newline, line_no));
    }
    let last = src.lines().count();
    while indents.len() > 1 {
        indents.pop();
        toks.push((Tok::Dedent, last));
    }
    toks.push((Tok::Eof, last));
    Ok(toks)
}

fn lex_line(mut s: &str, line: usize, out: &mut Vec<(Tok, usize)>) -> Result<(), LexError> {
    'outer: while !s.is_empty() {
        let Some(c) = s.chars().next() else { break };
        if c.is_whitespace() {
            s = &s[c.len_utf8()..];
            continue;
        }
        if c == '"' {
            // string literal with simple escapes
            let mut val = String::new();
            let mut chars = s[1..].char_indices();
            loop {
                match chars.next() {
                    Some((i, '"')) => {
                        out.push((Tok::Str(val), line));
                        s = &s[1 + i + 1..];
                        continue 'outer;
                    }
                    Some((_, '\\')) => match chars.next() {
                        Some((_, 'n')) => val.push('\n'),
                        Some((_, 't')) => val.push('\t'),
                        Some((_, c)) => val.push(c),
                        None => {
                            return Err(LexError {
                                line,
                                message: "unterminated escape".into(),
                            })
                        }
                    },
                    Some((_, c)) => val.push(c),
                    None => {
                        return Err(LexError {
                            line,
                            message: "unterminated string".into(),
                        })
                    }
                }
            }
        }
        if c.is_ascii_digit() {
            let end = s
                .find(|ch: char| !(ch.is_ascii_digit() || ch == '.'))
                .unwrap_or(s.len());
            let text = &s[..end];
            if text.contains('.') {
                let v: f64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("bad float literal {text:?}"),
                })?;
                out.push((Tok::Float(v), line));
            } else {
                let v: i64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("bad integer literal {text:?}"),
                })?;
                out.push((Tok::Int(v), line));
            }
            s = &s[end..];
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let end = s
                .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .unwrap_or(s.len());
            out.push((Tok::Ident(s[..end].to_string()), line));
            s = &s[end..];
            continue;
        }
        for p in PUNCTS {
            if let Some(rest) = s.strip_prefix(p) {
                out.push((Tok::Punct(p), line));
                s = rest;
                continue 'outer;
            }
        }
        return Err(LexError {
            line,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_header() {
        let toks = lex("def gemm(n: size):\n    pass\n").unwrap();
        let kinds: Vec<String> = toks.iter().map(|(t, _)| t.to_string()).collect();
        assert_eq!(
            kinds,
            vec![
                "def",
                "gemm",
                "(",
                "n",
                ":",
                "size",
                ")",
                ":",
                "<newline>",
                "<indent>",
                "pass",
                "<newline>",
                "<dedent>",
                "<eof>"
            ]
        );
    }

    #[test]
    fn indentation_tracking() {
        let src = "a\n    b\n        c\n    d\ne\n";
        let toks = lex(src).unwrap();
        let indents = toks.iter().filter(|(t, _)| *t == Tok::Indent).count();
        let dedents = toks.iter().filter(|(t, _)| *t == Tok::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let toks = lex("a  # comment\n\n   \nb\n").unwrap();
        let idents: Vec<&str> = toks
            .iter()
            .filter_map(|(t, _)| match t {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("x = 42 + 2.5\ns = \"hi\\n\"\n").unwrap();
        assert!(toks.iter().any(|(t, _)| *t == Tok::Int(42)));
        assert!(toks.iter().any(|(t, _)| *t == Tok::Float(2.5)));
        assert!(toks.iter().any(|(t, _)| *t == Tok::Str("hi\n".into())));
    }

    #[test]
    fn two_char_puncts_win() {
        let toks = lex("a <= b += c\n").unwrap();
        assert!(toks.iter().any(|(t, _)| *t == Tok::Punct("<=")));
        assert!(toks.iter().any(|(t, _)| *t == Tok::Punct("+=")));
    }

    #[test]
    fn inconsistent_dedent_rejected() {
        assert!(lex("a\n    b\n  c\n").is_err());
    }
}
