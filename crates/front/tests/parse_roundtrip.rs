//! Parser tests: the paper's §2 examples in surface syntax, parsed,
//! checked, executed, and round-tripped through the pretty-printer.

use exo_core::check::check_proc;
use exo_core::types::DataType;
use exo_front::{parse_library, parse_proc, ParseEnv};
use exo_interp::{ArgVal, Machine};

#[test]
fn parses_the_paper_gemm() {
    let src = r#"
@proc
def gemm(A: f32[128, 128] @ DRAM, B: f32[128, 128] @ DRAM, C: f32[128, 128] @ DRAM):
    for i in seq(0, 128):
        for j in seq(0, 128):
            for k in seq(0, 128):
                C[i, j] += A[i, k] * B[k, j]
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    check_proc(&p).unwrap();
    assert_eq!(p.args.len(), 3);
    assert_eq!(p.name.name(), "gemm");
    let printed = exo_core::printer::proc_to_string(&p);
    assert!(
        printed.contains("C[i, j] += A[i, k] * B[k, j]"),
        "{printed}"
    );
}

#[test]
fn parsed_gemm_executes() {
    let src = r#"
@proc
def gemm(n: size, A: f32[n, n], B: f32[n, n], C: f32[n, n]):
    for i in seq(0, n):
        for j in seq(0, n):
            for k in seq(0, n):
                C[i, j] += A[i, k] * B[k, j]
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    check_proc(&p).unwrap();
    let n = 4;
    let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let b: Vec<f64> = (0..16).map(|i| ((i * 3) % 5) as f64).collect();
    let mut m = Machine::new();
    let ida = m.alloc_extern("A", DataType::F32, &[n, n], &a);
    let idb = m.alloc_extern("B", DataType::F32, &[n, n], &b);
    let idc = m.alloc_extern("C", DataType::F32, &[n, n], &[0.0; 16]);
    m.run(
        &p,
        &[
            ArgVal::Int(4),
            ArgVal::Tensor(ida),
            ArgVal::Tensor(idb),
            ArgVal::Tensor(idc),
        ],
    )
    .unwrap();
    let c = m.buffer_values(idc).unwrap();
    for i in 0..n {
        for j in 0..n {
            let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
            assert_eq!(c[i * n + j], want);
        }
    }
}

#[test]
fn parses_instr_and_calls_it() {
    // the §2.3 ld_data shape: an @instr with a window signature and
    // preconditions, then an application calling it
    let src = r#"
@instr("mvin( {src}.data, {dst}.data );")
def ld_data(n: size, m: size, src: [f32][n, m] @ DRAM, dst: [f32][n, m] @ SCRATCHPAD):
    assert m <= 16
    for i in seq(0, n):
        for j in seq(0, m):
            dst[i, j] = src[i, j]

@proc
def app(A: f32[8, 8] @ DRAM, spad: f32[8, 8] @ SCRATCHPAD):
    ld_data(8, 8, A[0:8, 0:8], spad[0:8, 0:8])
"#;
    let procs = parse_library(src, &ParseEnv::new()).unwrap();
    assert_eq!(procs.len(), 2);
    assert!(procs[0].is_instr());
    check_proc(&procs[0]).unwrap();
    check_proc(&procs[1]).unwrap();

    // the call executes the semantic body and records the trace
    let mut m = Machine::new();
    let a = m.alloc_extern("A", DataType::F32, &[8, 8], &vec![2.5; 64]);
    let sp = m.alloc_extern("spad", DataType::F32, &[8, 8], &vec![0.0; 64]);
    m.run(&procs[1], &[ArgVal::Tensor(a), ArgVal::Tensor(sp)])
        .unwrap();
    assert_eq!(m.buffer_values(sp).unwrap(), vec![2.5; 64]);
    assert_eq!(m.trace().len(), 1);
    assert_eq!(m.trace()[0].instr, "ld_data");
}

#[test]
fn parses_configuration_state() {
    let src = r#"
@proc
def ld(n: size, src: [f32][n, 16] @ DRAM, dst: [f32][n, 16] @ SPAD):
    ConfigLoad.src_stride = stride(src, 0)
    for i in seq(0, n):
        for j in seq(0, 16):
            dst[i, j] = src[i, j]
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    check_proc(&p).unwrap();
    let printed = exo_core::printer::proc_to_string(&p);
    assert!(
        printed.contains("ConfigLoad.src_stride = stride(src, 0)"),
        "{printed}"
    );
}

#[test]
fn parses_windows_allocs_and_conditionals() {
    let src = r#"
@proc
def p(n: size, x: f32[n, n]):
    assert n >= 4
    t : f32[4] @ DRAM
    row = x[2, 0:n]
    for i in seq(0, 4):
        if i < 2:
            t[i] = row[i] * 2.0
        else:
            t[i] = 0.0 - row[i]
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    check_proc(&p).unwrap();
    let printed = exo_core::printer::proc_to_string(&p);
    assert!(printed.contains("row = x[2, 0:n]"), "{printed}");
    assert!(printed.contains("else:"), "{printed}");
}

#[test]
fn scalars_and_builtins() {
    let src = r#"
@proc
def p(x: f32, y: f32):
    y = relu(x) + max(x, 2.0)
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    check_proc(&p).unwrap();
    let mut m = Machine::new();
    let x = m.alloc_extern("x", DataType::F32, &[], &[-3.0]);
    let y = m.alloc_extern("y", DataType::F32, &[], &[0.0]);
    m.run(&p, &[ArgVal::Tensor(x), ArgVal::Tensor(y)]).unwrap();
    assert_eq!(m.buffer_values(y).unwrap(), vec![2.0]); // relu(-3) + max(-3, 2)
}

#[test]
fn error_reporting_has_lines() {
    let src = "@proc\ndef p():\n    x !! y\n";
    let e = parse_proc(src, &ParseEnv::new()).unwrap_err();
    assert_eq!(e.line, 3, "{e}");

    let e2 = parse_proc("@proc\ndef p(:\n    pass\n", &ParseEnv::new()).unwrap_err();
    assert_eq!(e2.line, 2, "{e2}");
}

#[test]
fn parsed_procs_can_be_scheduled() {
    // the full pipeline: text → IR → scheduling → instruction mapping
    let src = r#"
@proc
def scale(n: size, x: f32[n]):
    for i in seq(0, n):
        x[i] = x[i] * 2.0
"#;
    let p = parse_proc(src, &ParseEnv::new()).unwrap();
    let sched = exo_sched::Procedure::new(p);
    let tiled = sched.split_guard("for i in _: _", 4, "io", "ii").unwrap();
    assert!(tiled.show().contains("for io"), "{}", tiled.show());
}
