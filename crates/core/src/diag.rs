//! Structured diagnostics: machine-readable findings over the IR.
//!
//! Every static-analysis verdict that a user should *act on* — a lint
//! finding, a rejected parallelization, an ambiguous pattern — flows
//! through one [`Diagnostic`] shape: a rule identifier, a severity, the
//! procedure it concerns, an optional [`StmtPath`] span into the AST,
//! a human-readable message, and free-form notes (witnesses, candidate
//! lists). Keeping the type here in `exo-core` (which has no
//! dependencies) lets every layer of the pipeline produce and consume
//! diagnostics without new edges in the crate graph; `exo-lint` adds
//! the JSON export on top via `exo-obs`.

use std::fmt;

use crate::path::StmtPath;

/// How bad a finding is.
///
/// The ordering is semantic (`Info < Warning < Error`), so the worst
/// severity of a batch is simply `iter().max()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational: a fact worth surfacing, nothing to fix.
    Info,
    /// Suspicious but not provably wrong (lint default).
    Warning,
    /// Provably wrong or unsafe; CI gates on these.
    Error,
}

impl Severity {
    /// Lower-case name, as used in rendered output and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of a checked rewrite or probe.
///
/// This is the one verdict vocabulary shared by schedule provenance
/// (`exo-obs`), the scheduling operators, and the lint diagnostics
/// export: rendered output and JSON both use [`Verdict::name`]
/// (`accepted` / `rejected`), exactly as severities use
/// [`Severity::name`] — so machine consumers never have to reconcile
/// two spellings of the same outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The rewrite was applied; its checks (if any) passed.
    Accepted,
    /// The rewrite was refused; the payload says why.
    Rejected(String),
}

impl Verdict {
    /// Whether the rewrite went through.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }

    /// Lower-case name, as used in rendered output and JSON (the
    /// rejection reason is carried separately).
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Accepted => "accepted",
            Verdict::Rejected(_) => "rejected",
        }
    }

    /// The rejection reason, when there is one.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Accepted => None,
            Verdict::Rejected(why) => Some(why),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Accepted => f.write_str("accepted"),
            Verdict::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

/// One structured finding.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable rule identifier (e.g. `dead-alloc`).
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Name of the procedure the finding concerns.
    pub proc_name: String,
    /// Statement the finding anchors to, when one exists.
    pub path: Option<StmtPath>,
    /// Human-readable description.
    pub message: String,
    /// Supplementary notes (witness pairs, candidate paths, hints).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no span and no notes.
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        proc_name: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.into(),
            severity,
            proc_name: proc_name.into(),
            path: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Anchors the diagnostic to a statement path.
    pub fn with_path(mut self, path: StmtPath) -> Diagnostic {
        self.path = Some(path);
        self
    }

    /// Appends a supplementary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Whether this finding should fail a CI gate.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.rule, self.proc_name)?;
        if let Some(p) = &self.path {
            write!(f, " at {p}")?;
        }
        write!(f, ": {}", self.message)?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// Renders a list of statement paths as one comma-separated span list
/// (`[0], [1/2/0.1], …`) — shared by lint notes and the pattern
/// ambiguity error, so every "which statement?" message reads the same.
pub fn render_paths(paths: &[StmtPath]) -> String {
    let parts: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::StmtPath;

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn verdict_names_and_reasons() {
        assert_eq!(Verdict::Accepted.name(), "accepted");
        assert!(Verdict::Accepted.is_accepted());
        assert_eq!(Verdict::Accepted.reason(), None);
        let r = Verdict::Rejected("out of bounds".into());
        assert_eq!(r.name(), "rejected");
        assert_eq!(r.reason(), Some("out of bounds"));
        assert_eq!(r.to_string(), "rejected: out of bounds");
    }

    #[test]
    fn display_includes_span_and_notes() {
        let d = Diagnostic::new("dead-alloc", Severity::Warning, "gemm", "never read")
            .with_path(StmtPath::top(1).child(0, 2))
            .with_note("allocated here");
        let s = d.to_string();
        assert!(s.contains("warning[dead-alloc] gemm at [1/2]"), "{s}");
        assert!(s.contains("note: allocated here"), "{s}");
    }

    #[test]
    fn render_paths_joins_spans() {
        let ps = vec![StmtPath::top(0), StmtPath::top(1).child(1, 0)];
        assert_eq!(render_paths(&ps), "[0], [1/1.0]");
    }
}
