//! Traversals, substitution, renaming, and alpha-equivalence over the IR.

use std::collections::{HashMap, HashSet};

use crate::ir::{Block, Expr, FnArg, Proc, Stmt, WAccess};
use crate::sym::Sym;

/// Calls `f` on every sub-expression of `e`, including `e`, in pre-order.
pub fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::BinOp(_, a, b) => {
            visit_expr(a, f);
            visit_expr(b, f);
        }
        Expr::Neg(a) => visit_expr(a, f),
        Expr::Read { idx, .. } => idx.iter().for_each(|i| visit_expr(i, f)),
        Expr::Window { coords, .. } => {
            for c in coords {
                match c {
                    WAccess::Point(p) => visit_expr(p, f),
                    WAccess::Interval(lo, hi) => {
                        visit_expr(lo, f);
                        visit_expr(hi, f);
                    }
                }
            }
        }
        Expr::BuiltIn { args, .. } => args.iter().for_each(|a| visit_expr(a, f)),
        Expr::Var(_) | Expr::Lit(_) | Expr::Stride { .. } | Expr::ReadConfig { .. } => {}
    }
}

/// Calls `f` on every expression appearing directly in `s` (not those in
/// nested statements).
pub fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Assign { idx, rhs, .. } | Stmt::Reduce { idx, rhs, .. } => {
            idx.iter().for_each(|e| visit_expr(e, f));
            visit_expr(rhs, f);
        }
        Stmt::WriteConfig { rhs, .. } => visit_expr(rhs, f),
        Stmt::If { cond, .. } => visit_expr(cond, f),
        Stmt::For { lo, hi, .. } => {
            visit_expr(lo, f);
            visit_expr(hi, f);
        }
        Stmt::Alloc { shape, .. } => shape.iter().for_each(|e| visit_expr(e, f)),
        Stmt::WindowDef { rhs, .. } => visit_expr(rhs, f),
        Stmt::Call { args, .. } => args.iter().for_each(|e| visit_expr(e, f)),
        Stmt::Pass => {}
    }
}

/// Calls `f` on every statement in `b`, recursively, in pre-order.
pub fn visit_stmts(b: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in b {
        f(s);
        match s {
            Stmt::For { body, .. } => visit_stmts(body, f),
            Stmt::If { body, orelse, .. } => {
                visit_stmts(body, f);
                visit_stmts(orelse, f);
            }
            _ => {}
        }
    }
}

/// Rewrites every expression in `e` bottom-up with `f`.
pub fn map_expr(e: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::BinOp(op, a, b) => {
            Expr::BinOp(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        Expr::Neg(a) => Expr::Neg(Box::new(map_expr(a, f))),
        Expr::Read { buf, idx } => Expr::Read {
            buf: *buf,
            idx: idx.iter().map(|i| map_expr(i, f)).collect(),
        },
        Expr::Window { buf, coords } => Expr::Window {
            buf: *buf,
            coords: coords
                .iter()
                .map(|c| match c {
                    WAccess::Point(p) => WAccess::Point(map_expr(p, f)),
                    WAccess::Interval(lo, hi) => {
                        WAccess::Interval(map_expr(lo, f), map_expr(hi, f))
                    }
                })
                .collect(),
        },
        Expr::BuiltIn { func, args } => Expr::BuiltIn {
            func: *func,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
        Expr::Var(_) | Expr::Lit(_) | Expr::Stride { .. } | Expr::ReadConfig { .. } => e.clone(),
    };
    f(rebuilt)
}

/// Rewrites every expression appearing in `b` (recursively through nested
/// statements) bottom-up with `f`. Statement structure is preserved.
pub fn map_block_exprs(b: &[Stmt], f: &mut impl FnMut(Expr) -> Expr) -> Block {
    b.iter().map(|s| map_stmt_exprs(s, f)).collect()
}

/// Rewrites every expression in one statement (and its nested statements).
pub fn map_stmt_exprs(s: &Stmt, f: &mut impl FnMut(Expr) -> Expr) -> Stmt {
    match s {
        Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
            buf: *buf,
            idx: idx.iter().map(|e| map_expr(e, f)).collect(),
            rhs: map_expr(rhs, f),
        },
        Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
            buf: *buf,
            idx: idx.iter().map(|e| map_expr(e, f)).collect(),
            rhs: map_expr(rhs, f),
        },
        Stmt::WriteConfig { config, field, rhs } => Stmt::WriteConfig {
            config: *config,
            field: *field,
            rhs: map_expr(rhs, f),
        },
        Stmt::Pass => Stmt::Pass,
        Stmt::If { cond, body, orelse } => Stmt::If {
            cond: map_expr(cond, f),
            body: map_block_exprs(body, f),
            orelse: map_block_exprs(orelse, f),
        },
        Stmt::For { iter, lo, hi, body } => Stmt::For {
            iter: *iter,
            lo: map_expr(lo, f),
            hi: map_expr(hi, f),
            body: map_block_exprs(body, f),
        },
        Stmt::Alloc {
            name,
            ty,
            shape,
            mem,
        } => Stmt::Alloc {
            name: *name,
            ty: *ty,
            shape: shape.iter().map(|e| map_expr(e, f)).collect(),
            mem: *mem,
        },
        Stmt::WindowDef { name, rhs } => Stmt::WindowDef {
            name: *name,
            rhs: map_expr(rhs, f),
        },
        Stmt::Call { proc, args } => Stmt::Call {
            proc: proc.clone(),
            args: args.iter().map(|e| map_expr(e, f)).collect(),
        },
    }
}

/// Substitutes control variables: every `Expr::Var(x)` with `x` in `map`
/// is replaced by the mapped expression.
pub fn subst_expr(e: &Expr, map: &HashMap<Sym, Expr>) -> Expr {
    map_expr(e, &mut |e| match &e {
        Expr::Var(x) => map.get(x).cloned().unwrap_or(e),
        _ => e,
    })
}

/// Substitutes control variables throughout a block.
pub fn subst_block(b: &[Stmt], map: &HashMap<Sym, Expr>) -> Block {
    map_block_exprs(b, &mut |e| match &e {
        Expr::Var(x) => map.get(x).cloned().unwrap_or(e),
        _ => e,
    })
}

/// Renames buffer/window *names* (the `buf` of reads, windows, strides,
/// assigns, reduces, window definitions and the data-variable occurrences
/// in call arguments) according to `map`. Control variables are renamed
/// too when present in `map` — this is a wholesale identifier renaming.
pub fn rename_syms_block(b: &[Stmt], map: &HashMap<Sym, Sym>) -> Block {
    let get = |s: &Sym| map.get(s).copied().unwrap_or(*s);
    b.iter()
        .map(|s| {
            let s = map_stmt_exprs(s, &mut |e| match e {
                Expr::Var(x) => Expr::Var(get(&x)),
                Expr::Read { buf, idx } => Expr::Read {
                    buf: get(&buf),
                    idx,
                },
                Expr::Window { buf, coords } => Expr::Window {
                    buf: get(&buf),
                    coords,
                },
                Expr::Stride { buf, dim } => Expr::Stride {
                    buf: get(&buf),
                    dim,
                },
                other => other,
            });
            rename_stmt_tops(&s, &get)
        })
        .collect()
}

fn rename_stmt_tops(s: &Stmt, get: &impl Fn(&Sym) -> Sym) -> Stmt {
    match s {
        Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
            buf: get(buf),
            idx: idx.clone(),
            rhs: rhs.clone(),
        },
        Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
            buf: get(buf),
            idx: idx.clone(),
            rhs: rhs.clone(),
        },
        Stmt::For { iter, lo, hi, body } => Stmt::For {
            iter: get(iter),
            lo: lo.clone(),
            hi: hi.clone(),
            body: body.iter().map(|s| rename_stmt_tops(s, get)).collect(),
        },
        Stmt::If { cond, body, orelse } => Stmt::If {
            cond: cond.clone(),
            body: body.iter().map(|s| rename_stmt_tops(s, get)).collect(),
            orelse: orelse.iter().map(|s| rename_stmt_tops(s, get)).collect(),
        },
        Stmt::Alloc {
            name,
            ty,
            shape,
            mem,
        } => Stmt::Alloc {
            name: get(name),
            ty: *ty,
            shape: shape.clone(),
            mem: *mem,
        },
        Stmt::WindowDef { name, rhs } => Stmt::WindowDef {
            name: get(name),
            rhs: rhs.clone(),
        },
        other => other.clone(),
    }
}

/// The free identifiers of a block: symbols read or written that are not
/// bound within the block (by `for`, `alloc`, or window definition).
pub fn free_syms_block(b: &[Stmt]) -> HashSet<Sym> {
    let mut free = HashSet::new();
    let mut bound = HashSet::new();
    free_block(b, &mut bound, &mut free);
    free
}

fn free_block(b: &[Stmt], bound: &mut HashSet<Sym>, free: &mut HashSet<Sym>) {
    // bindings in a block scope over the *rest of the block*, so walk in
    // order, accumulating bindings; restore on exit.
    let mut added: Vec<Sym> = Vec::new();
    for s in b {
        match s {
            Stmt::Alloc { name, shape, .. } => {
                shape.iter().for_each(|e| free_expr(e, bound, free));
                bound.insert(*name);
                added.push(*name);
            }
            Stmt::WindowDef { name, rhs } => {
                free_expr(rhs, bound, free);
                bound.insert(*name);
                added.push(*name);
            }
            Stmt::For { iter, lo, hi, body } => {
                free_expr(lo, bound, free);
                free_expr(hi, bound, free);
                let fresh = bound.insert(*iter);
                free_block(body, bound, free);
                if fresh {
                    bound.remove(iter);
                }
            }
            Stmt::If { cond, body, orelse } => {
                free_expr(cond, bound, free);
                free_block(body, bound, free);
                free_block(orelse, bound, free);
            }
            Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                if !bound.contains(buf) {
                    free.insert(*buf);
                }
                idx.iter().for_each(|e| free_expr(e, bound, free));
                free_expr(rhs, bound, free);
            }
            Stmt::WriteConfig { rhs, .. } => free_expr(rhs, bound, free),
            Stmt::Call { args, .. } => args.iter().for_each(|e| free_expr(e, bound, free)),
            Stmt::Pass => {}
        }
    }
    for s in added {
        bound.remove(&s);
    }
}

fn free_expr(e: &Expr, bound: &HashSet<Sym>, free: &mut HashSet<Sym>) {
    visit_expr(e, &mut |e| match e {
        Expr::Var(x) if !bound.contains(x) => {
            free.insert(*x);
        }
        Expr::Read { buf, .. } | Expr::Window { buf, .. } | Expr::Stride { buf, .. }
            if !bound.contains(buf) =>
        {
            free.insert(*buf);
        }
        _ => {}
    });
}

/// Returns a copy of `b` in which every *bound* identifier (loop
/// variables, allocations, window definitions) has been replaced by a
/// fresh symbol with the same spelling. Free identifiers are untouched.
pub fn refresh_bound(b: &[Stmt]) -> Block {
    fn go(b: &[Stmt], map: &mut HashMap<Sym, Sym>) -> Block {
        let mut out = Vec::with_capacity(b.len());
        let mut local: Vec<(Sym, Option<Sym>)> = Vec::new();
        for s in b {
            let s2 = match s {
                Stmt::Alloc {
                    name,
                    ty,
                    shape,
                    mem,
                } => {
                    let shape = shape.iter().map(|e| apply(e, map)).collect();
                    let fresh = name.copy();
                    local.push((*name, map.insert(*name, fresh)));
                    Stmt::Alloc {
                        name: fresh,
                        ty: *ty,
                        shape,
                        mem: *mem,
                    }
                }
                Stmt::WindowDef { name, rhs } => {
                    let rhs = apply(rhs, map);
                    let fresh = name.copy();
                    local.push((*name, map.insert(*name, fresh)));
                    Stmt::WindowDef { name: fresh, rhs }
                }
                Stmt::For { iter, lo, hi, body } => {
                    let lo = apply(lo, map);
                    let hi = apply(hi, map);
                    let fresh = iter.copy();
                    let old = map.insert(*iter, fresh);
                    let body = go(body, map);
                    match old {
                        Some(o) => {
                            map.insert(*iter, o);
                        }
                        None => {
                            map.remove(iter);
                        }
                    }
                    Stmt::For {
                        iter: fresh,
                        lo,
                        hi,
                        body,
                    }
                }
                Stmt::If { cond, body, orelse } => Stmt::If {
                    cond: apply(cond, map),
                    body: go(body, map),
                    orelse: go(orelse, map),
                },
                Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
                    buf: map.get(buf).copied().unwrap_or(*buf),
                    idx: idx.iter().map(|e| apply(e, map)).collect(),
                    rhs: apply(rhs, map),
                },
                Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
                    buf: map.get(buf).copied().unwrap_or(*buf),
                    idx: idx.iter().map(|e| apply(e, map)).collect(),
                    rhs: apply(rhs, map),
                },
                Stmt::WriteConfig { config, field, rhs } => Stmt::WriteConfig {
                    config: *config,
                    field: *field,
                    rhs: apply(rhs, map),
                },
                Stmt::Call { proc, args } => Stmt::Call {
                    proc: proc.clone(),
                    args: args.iter().map(|e| apply(e, map)).collect(),
                },
                Stmt::Pass => Stmt::Pass,
            };
            out.push(s2);
        }
        for (orig, prev) in local.into_iter().rev() {
            match prev {
                Some(p) => {
                    map.insert(orig, p);
                }
                None => {
                    map.remove(&orig);
                }
            }
        }
        out
    }
    fn apply(e: &Expr, map: &HashMap<Sym, Sym>) -> Expr {
        map_expr(&e.clone(), &mut |e| match e {
            Expr::Var(x) => Expr::Var(map.get(&x).copied().unwrap_or(x)),
            Expr::Read { buf, idx } => Expr::Read {
                buf: map.get(&buf).copied().unwrap_or(buf),
                idx,
            },
            Expr::Window { buf, coords } => Expr::Window {
                buf: map.get(&buf).copied().unwrap_or(buf),
                coords,
            },
            Expr::Stride { buf, dim } => Expr::Stride {
                buf: map.get(&buf).copied().unwrap_or(buf),
                dim,
            },
            other => other,
        })
    }
    go(b, &mut HashMap::new())
}

/// Structural equality of two expressions up to the variable
/// correspondence `map` (left sym → right sym).
pub fn alpha_eq_expr(a: &Expr, b: &Expr, map: &HashMap<Sym, Sym>) -> bool {
    let eq_sym = |x: &Sym, y: &Sym| map.get(x).copied().unwrap_or(*x) == *y;
    match (a, b) {
        (Expr::Var(x), Expr::Var(y)) => eq_sym(x, y),
        (Expr::Lit(x), Expr::Lit(y)) => x == y,
        (Expr::BinOp(o1, a1, b1), Expr::BinOp(o2, a2, b2)) => {
            o1 == o2 && alpha_eq_expr(a1, a2, map) && alpha_eq_expr(b1, b2, map)
        }
        (Expr::Neg(a1), Expr::Neg(a2)) => alpha_eq_expr(a1, a2, map),
        (Expr::Read { buf: b1, idx: i1 }, Expr::Read { buf: b2, idx: i2 }) => {
            eq_sym(b1, b2)
                && i1.len() == i2.len()
                && i1.iter().zip(i2).all(|(x, y)| alpha_eq_expr(x, y, map))
        }
        (
            Expr::Window {
                buf: b1,
                coords: c1,
            },
            Expr::Window {
                buf: b2,
                coords: c2,
            },
        ) => {
            eq_sym(b1, b2)
                && c1.len() == c2.len()
                && c1.iter().zip(c2).all(|(x, y)| match (x, y) {
                    (WAccess::Point(p1), WAccess::Point(p2)) => alpha_eq_expr(p1, p2, map),
                    (WAccess::Interval(l1, h1), WAccess::Interval(l2, h2)) => {
                        alpha_eq_expr(l1, l2, map) && alpha_eq_expr(h1, h2, map)
                    }
                    _ => false,
                })
        }
        (Expr::Stride { buf: b1, dim: d1 }, Expr::Stride { buf: b2, dim: d2 }) => {
            eq_sym(b1, b2) && d1 == d2
        }
        (
            Expr::ReadConfig {
                config: c1,
                field: f1,
            },
            Expr::ReadConfig {
                config: c2,
                field: f2,
            },
        ) => {
            // configuration state is global and named: compare by spelling
            c1.name() == c2.name() && f1.name() == f2.name()
        }
        (Expr::BuiltIn { func: f1, args: a1 }, Expr::BuiltIn { func: f2, args: a2 }) => {
            f1.name() == f2.name()
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| alpha_eq_expr(x, y, map))
        }
        _ => false,
    }
}

/// Structural equality of two blocks up to renaming of bound variables.
pub fn alpha_eq_block(a: &[Stmt], b: &[Stmt]) -> bool {
    fn eq_block(a: &[Stmt], b: &[Stmt], map: &mut HashMap<Sym, Sym>) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut shadow: Vec<(Sym, Option<Sym>)> = Vec::new();
        let ok = a
            .iter()
            .zip(b)
            .all(|(x, y)| eq_stmt(x, y, map, &mut shadow));
        for (orig, prev) in shadow.into_iter().rev() {
            match prev {
                Some(p) => {
                    map.insert(orig, p);
                }
                None => {
                    map.remove(&orig);
                }
            }
        }
        ok
    }
    fn eq_stmt(
        a: &Stmt,
        b: &Stmt,
        map: &mut HashMap<Sym, Sym>,
        shadow: &mut Vec<(Sym, Option<Sym>)>,
    ) -> bool {
        let eq_sym =
            |x: &Sym, y: &Sym, map: &HashMap<Sym, Sym>| map.get(x).copied().unwrap_or(*x) == *y;
        match (a, b) {
            (Stmt::Pass, Stmt::Pass) => true,
            (
                Stmt::Assign {
                    buf: b1,
                    idx: i1,
                    rhs: r1,
                },
                Stmt::Assign {
                    buf: b2,
                    idx: i2,
                    rhs: r2,
                },
            )
            | (
                Stmt::Reduce {
                    buf: b1,
                    idx: i1,
                    rhs: r1,
                },
                Stmt::Reduce {
                    buf: b2,
                    idx: i2,
                    rhs: r2,
                },
            ) => {
                // require same variant
                matches!(
                    (a, b),
                    (Stmt::Assign { .. }, Stmt::Assign { .. })
                        | (Stmt::Reduce { .. }, Stmt::Reduce { .. })
                ) && eq_sym(b1, b2, map)
                    && i1.len() == i2.len()
                    && i1.iter().zip(i2).all(|(x, y)| alpha_eq_expr(x, y, map))
                    && alpha_eq_expr(r1, r2, map)
            }
            (
                Stmt::WriteConfig {
                    config: c1,
                    field: f1,
                    rhs: r1,
                },
                Stmt::WriteConfig {
                    config: c2,
                    field: f2,
                    rhs: r2,
                },
            ) => c1.name() == c2.name() && f1.name() == f2.name() && alpha_eq_expr(r1, r2, map),
            (
                Stmt::If {
                    cond: c1,
                    body: t1,
                    orelse: e1,
                },
                Stmt::If {
                    cond: c2,
                    body: t2,
                    orelse: e2,
                },
            ) => alpha_eq_expr(c1, c2, map) && eq_block(t1, t2, map) && eq_block(e1, e2, map),
            (
                Stmt::For {
                    iter: v1,
                    lo: l1,
                    hi: h1,
                    body: bd1,
                },
                Stmt::For {
                    iter: v2,
                    lo: l2,
                    hi: h2,
                    body: bd2,
                },
            ) => {
                if !(alpha_eq_expr(l1, l2, map) && alpha_eq_expr(h1, h2, map)) {
                    return false;
                }
                let prev = map.insert(*v1, *v2);
                let ok = eq_block(bd1, bd2, map);
                match prev {
                    Some(p) => {
                        map.insert(*v1, p);
                    }
                    None => {
                        map.remove(v1);
                    }
                }
                ok
            }
            (
                Stmt::Alloc {
                    name: n1,
                    ty: t1,
                    shape: s1,
                    mem: m1,
                },
                Stmt::Alloc {
                    name: n2,
                    ty: t2,
                    shape: s2,
                    mem: m2,
                },
            ) => {
                let ok = t1 == t2
                    && m1 == m2
                    && s1.len() == s2.len()
                    && s1.iter().zip(s2).all(|(x, y)| alpha_eq_expr(x, y, map));
                if ok {
                    shadow.push((*n1, map.insert(*n1, *n2)));
                }
                ok
            }
            (Stmt::WindowDef { name: n1, rhs: r1 }, Stmt::WindowDef { name: n2, rhs: r2 }) => {
                let ok = alpha_eq_expr(r1, r2, map);
                if ok {
                    shadow.push((*n1, map.insert(*n1, *n2)));
                }
                ok
            }
            (Stmt::Call { proc: p1, args: a1 }, Stmt::Call { proc: p2, args: a2 }) => {
                p1.name == p2.name
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| alpha_eq_expr(x, y, map))
            }
            _ => false,
        }
    }
    eq_block(a, b, &mut HashMap::new())
}

/// Alpha-equivalence of whole procedures: same signature shape, bodies
/// equal up to renaming of parameters and bound variables.
pub fn alpha_eq_proc(a: &Proc, b: &Proc) -> bool {
    if a.args.len() != b.args.len() || a.preds.len() != b.preds.len() {
        return false;
    }
    let mut map = HashMap::new();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !arg_ty_compatible(x, y, &map) {
            return false;
        }
        map.insert(x.name, y.name);
    }
    let preds_ok = a
        .preds
        .iter()
        .zip(&b.preds)
        .all(|(p, q)| alpha_eq_expr(p, q, &map));
    // body comparison threads the parameter correspondence via renaming
    let renamed: Block = {
        let rename: HashMap<Sym, Sym> = map.clone();
        rename_syms_block(&a.body, &rename)
    };
    preds_ok && alpha_eq_block(&renamed, &b.body)
}

fn arg_ty_compatible(a: &FnArg, b: &FnArg, map: &HashMap<Sym, Sym>) -> bool {
    use crate::ir::ArgType as A;
    match (&a.ty, &b.ty) {
        (A::Ctrl(x), A::Ctrl(y)) => x == y,
        (A::Scalar { ty: t1, mem: m1 }, A::Scalar { ty: t2, mem: m2 }) => t1 == t2 && m1 == m2,
        (
            A::Tensor {
                ty: t1,
                shape: s1,
                window: w1,
                mem: m1,
            },
            A::Tensor {
                ty: t2,
                shape: s2,
                window: w2,
                mem: m2,
            },
        ) => {
            t1 == t2
                && w1 == w2
                && m1 == m2
                && s1.len() == s2.len()
                && s1.iter().zip(s2).all(|(x, y)| alpha_eq_expr(x, y, map))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr};

    #[test]
    fn free_syms_sees_reads_and_writes() {
        let a = Sym::new("a");
        let i = Sym::new("i");
        let n = Sym::new("n");
        let body = vec![Stmt::For {
            iter: i,
            lo: Expr::int(0),
            hi: Expr::var(n),
            body: vec![Stmt::Assign {
                buf: a,
                idx: vec![Expr::var(i)],
                rhs: Expr::float(0.0),
            }],
        }];
        let free = free_syms_block(&body);
        assert!(free.contains(&a));
        assert!(free.contains(&n));
        assert!(!free.contains(&i));
    }

    #[test]
    fn alloc_binds_rest_of_block() {
        let t = Sym::new("t");
        let body = vec![
            Stmt::Alloc {
                name: t,
                ty: crate::types::DataType::F32,
                shape: vec![],
                mem: crate::types::MemName::dram(),
            },
            Stmt::Assign {
                buf: t,
                idx: vec![],
                rhs: Expr::float(1.0),
            },
        ];
        assert!(!free_syms_block(&body).contains(&t));
    }

    #[test]
    fn subst_replaces_vars() {
        let x = Sym::new("x");
        let e = Expr::var(x).add(Expr::int(1));
        let mut m = HashMap::new();
        m.insert(x, Expr::int(41));
        let e2 = subst_expr(&e, &m);
        assert_eq!(e2, Expr::bin(BinOp::Add, Expr::int(41), Expr::int(1)));
    }

    #[test]
    fn refresh_changes_bound_not_free() {
        let a = Sym::new("a");
        let i = Sym::new("i");
        let body = vec![Stmt::For {
            iter: i,
            lo: Expr::int(0),
            hi: Expr::int(8),
            body: vec![Stmt::Assign {
                buf: a,
                idx: vec![Expr::var(i)],
                rhs: Expr::float(0.0),
            }],
        }];
        let fresh = refresh_bound(&body);
        match &fresh[0] {
            Stmt::For { iter, body, .. } => {
                assert_ne!(*iter, i);
                match &body[0] {
                    Stmt::Assign { buf, idx, .. } => {
                        assert_eq!(*buf, a);
                        assert_eq!(idx[0], Expr::var(*iter));
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
        assert!(alpha_eq_block(&body, &fresh));
    }

    #[test]
    fn alpha_eq_detects_difference() {
        let a = Sym::new("a");
        let i = Sym::new("i");
        let mk = |rhs: Expr| {
            vec![Stmt::For {
                iter: i,
                lo: Expr::int(0),
                hi: Expr::int(8),
                body: vec![Stmt::Assign {
                    buf: a,
                    idx: vec![Expr::var(i)],
                    rhs,
                }],
            }]
        };
        assert!(alpha_eq_block(&mk(Expr::float(0.0)), &mk(Expr::float(0.0))));
        assert!(!alpha_eq_block(
            &mk(Expr::float(0.0)),
            &mk(Expr::float(1.0))
        ));
    }
}
