//! [`ResourceBudget`]: shared fuel + wall-clock limits for every loop in the
//! pipeline that bad input could make unbounded.
//!
//! A budget is a cheap `Arc`-backed handle: cloning shares the *same* pool,
//! so a `SchedState`, the effect-analysis fixpoint it drives, the
//! interpreter's step loop, and a simulator's cycle loop can all draw from
//! one allowance. Exhaustion is sticky and always *degrades conservatively*:
//! analyses answer `Unknown` (rejecting the rewrite), the interpreter and
//! simulators stop with a typed [`BudgetError`] — never a hang, and never an
//! unsound accept.
//!
//! The default budget is [`ResourceBudget::unlimited`], which never charges
//! anything and keeps the hot paths at one atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{ErrorKind, ExoError};

/// Which resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Abstract step/fuel units (interpreter steps, fixpoint passes,
    /// simulated instructions).
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
}

/// Typed exhaustion error; converts into [`ExoError`] with
/// [`ErrorKind::Budget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// Which limit tripped.
    pub resource: Resource,
    /// The configured limit (fuel units, or deadline in milliseconds).
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.resource {
            Resource::Fuel => write!(f, "fuel budget exhausted (limit {})", self.limit),
            Resource::Deadline => write!(f, "deadline exceeded (limit {} ms)", self.limit),
        }
    }
}

impl std::error::Error for BudgetError {}

impl From<BudgetError> for ExoError {
    fn from(e: BudgetError) -> ExoError {
        ExoError::new(ErrorKind::Budget, e.to_string()).with_source(e)
    }
}

#[derive(Debug)]
struct Inner {
    // u64::MAX = unlimited; counts down.
    fuel_remaining: AtomicU64,
    fuel_limit: u64,
    deadline: Option<Instant>,
    deadline_ms: u64,
    exhausted: AtomicBool,
}

/// A shared fuel + wall-clock budget. Clone to share the same pool.
#[derive(Debug, Clone)]
pub struct ResourceBudget {
    inner: Arc<Inner>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::unlimited()
    }
}

impl ResourceBudget {
    /// A budget that never runs out (the default everywhere).
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget {
            inner: Arc::new(Inner {
                fuel_remaining: AtomicU64::new(u64::MAX),
                fuel_limit: u64::MAX,
                deadline: None,
                deadline_ms: 0,
                exhausted: AtomicBool::new(false),
            }),
        }
    }

    /// A budget of `fuel` abstract units and no deadline.
    pub fn with_fuel(fuel: u64) -> ResourceBudget {
        ResourceBudget {
            inner: Arc::new(Inner {
                fuel_remaining: AtomicU64::new(fuel),
                fuel_limit: fuel,
                deadline: None,
                deadline_ms: 0,
                exhausted: AtomicBool::new(false),
            }),
        }
    }

    /// A budget with a wall-clock deadline `dur` from now and unlimited fuel.
    pub fn with_deadline(dur: Duration) -> ResourceBudget {
        ResourceBudget {
            inner: Arc::new(Inner {
                fuel_remaining: AtomicU64::new(u64::MAX),
                fuel_limit: u64::MAX,
                deadline: Some(Instant::now() + dur),
                deadline_ms: dur.as_millis().min(u64::MAX as u128) as u64,
                exhausted: AtomicBool::new(false),
            }),
        }
    }

    /// A budget with both a fuel pool and a wall-clock deadline from now.
    pub fn with_fuel_and_deadline(fuel: u64, dur: Duration) -> ResourceBudget {
        ResourceBudget {
            inner: Arc::new(Inner {
                fuel_remaining: AtomicU64::new(fuel),
                fuel_limit: fuel,
                deadline: Some(Instant::now() + dur),
                deadline_ms: dur.as_millis().min(u64::MAX as u128) as u64,
                exhausted: AtomicBool::new(false),
            }),
        }
    }

    /// Is this the unlimited budget (no fuel limit, no deadline)?
    pub fn is_unlimited(&self) -> bool {
        self.inner.fuel_limit == u64::MAX && self.inner.deadline.is_none()
    }

    /// Draw `n` fuel units and check the deadline. `Err` once exhausted
    /// (sticky: every later call also errs).
    pub fn charge(&self, n: u64) -> Result<(), BudgetError> {
        let inner = &*self.inner;
        if inner.exhausted.load(Ordering::Relaxed) {
            return Err(self.error());
        }
        if inner.fuel_limit != u64::MAX {
            let prev = inner
                .fuel_remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    Some(cur.saturating_sub(n))
                })
                .unwrap_or(0);
            if prev < n {
                inner.exhausted.store(true, Ordering::Relaxed);
                return Err(BudgetError {
                    resource: Resource::Fuel,
                    limit: inner.fuel_limit,
                });
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.exhausted.store(true, Ordering::Relaxed);
                return Err(BudgetError {
                    resource: Resource::Deadline,
                    limit: inner.deadline_ms,
                });
            }
        }
        Ok(())
    }

    /// Has this budget tripped (fuel or deadline)? Does not charge.
    pub fn exhausted(&self) -> bool {
        if self.inner.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.exhausted.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Fuel left (`u64::MAX` when unlimited).
    pub fn fuel_remaining(&self) -> u64 {
        self.inner.fuel_remaining.load(Ordering::Relaxed)
    }

    /// The [`BudgetError`] describing this budget's exhaustion state
    /// (fuel takes precedence when both limits exist).
    pub fn error(&self) -> BudgetError {
        if self.inner.fuel_limit != u64::MAX && self.fuel_remaining() == 0 {
            BudgetError {
                resource: Resource::Fuel,
                limit: self.inner.fuel_limit,
            }
        } else {
            BudgetError {
                resource: Resource::Deadline,
                limit: self.inner.deadline_ms,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = ResourceBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            assert!(b.charge(1).is_ok());
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn fuel_exhaustion_is_sticky() {
        let b = ResourceBudget::with_fuel(3);
        assert!(b.charge(1).is_ok());
        assert!(b.charge(2).is_ok());
        let err = b.charge(1).expect_err("fuel gone");
        assert_eq!(err.resource, Resource::Fuel);
        assert_eq!(err.limit, 3);
        assert!(b.exhausted());
        assert!(b.charge(1).is_err(), "exhaustion must be sticky");
    }

    #[test]
    fn clones_share_the_pool() {
        let a = ResourceBudget::with_fuel(4);
        let b = a.clone();
        assert!(a.charge(2).is_ok());
        assert!(b.charge(2).is_ok());
        assert!(a.charge(1).is_err());
        assert!(b.exhausted());
    }

    #[test]
    fn past_deadline_trips() {
        let b = ResourceBudget::with_deadline(Duration::from_millis(0));
        let err = b.charge(1).expect_err("deadline already passed");
        assert_eq!(err.resource, Resource::Deadline);
    }

    #[test]
    fn budget_error_converts_to_exo_error() {
        let b = ResourceBudget::with_fuel(0);
        let err = b.charge(1).expect_err("no fuel");
        let exo: crate::error::ExoError = err.into();
        assert_eq!(exo.kind(), crate::error::ErrorKind::Budget);
        assert!(std::error::Error::source(&exo).is_some());
    }
}
