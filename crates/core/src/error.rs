//! The [`ExoError`] umbrella: one typed error surface for the whole
//! compile→schedule→codegen pipeline.
//!
//! Each pipeline stage keeps its own concrete error type (`LexError`,
//! `ParseError`, `PatternError`, `SchedError`, `InterpError`, …) so intra-
//! crate matching stays precise; [`ExoError`] is the boundary type a host
//! process sees, classifying every failure by [`ErrorKind`] and chaining the
//! stage error through [`std::error::Error::source`]. Nothing in the library
//! surface should cross a crate boundary as a panic — residual internal
//! panics are caught at the `Procedure` operator dispatch and surfaced as
//! [`ErrorKind::Internal`].

use std::error::Error;
use std::fmt;

/// Coarse classification of a pipeline failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Tokenization failure in the front-end lexer.
    Lex,
    /// Grammar/indentation failure in the front-end parser.
    Parse,
    /// A scheduling pattern matched nothing, or matched ambiguously.
    Pattern,
    /// A safety/equivalence check rejected (or could not verify) a rewrite.
    Check,
    /// A fuel or wall-clock [`ResourceBudget`](crate::budget::ResourceBudget)
    /// was exhausted; the operation degraded conservatively instead of
    /// hanging.
    Budget,
    /// An internal invariant failed — including panics caught at the
    /// operator-dispatch boundary. Always a bug in exo-rs, never user error.
    Internal,
}

impl ErrorKind {
    /// Stable lowercase name (used in counters and reports).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Lex => "lex",
            ErrorKind::Parse => "parse",
            ErrorKind::Pattern => "pattern",
            ErrorKind::Check => "check",
            ErrorKind::Budget => "budget",
            ErrorKind::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The umbrella error for the exo-rs library surface.
#[derive(Debug)]
pub struct ExoError {
    kind: ErrorKind,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl ExoError {
    /// A new error of `kind` with a human-readable message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ExoError {
        ExoError {
            kind,
            message: message.into(),
            source: None,
        }
    }

    /// Attach the stage-level error this one wraps (exposed via `source()`).
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> ExoError {
        self.source = Some(Box::new(source));
        self
    }

    /// Shorthand constructors, one per [`ErrorKind`].
    pub fn lex(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Lex, message)
    }
    pub fn parse(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Parse, message)
    }
    pub fn pattern(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Pattern, message)
    }
    pub fn check(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Check, message)
    }
    pub fn budget(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Budget, message)
    }
    pub fn internal(message: impl Into<String>) -> ExoError {
        ExoError::new(ErrorKind::Internal, message)
    }

    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

// `Display` prints `kind: message`; the full chain is reachable through
// `source()` (e.g. with `anyhow`-style chain printers).
impl fmt::Display for ExoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl Error for ExoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source
            .as_ref()
            .map(|s| s.as_ref() as &(dyn Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Stage(&'static str);
    impl fmt::Display for Stage {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "stage: {}", self.0)
        }
    }
    impl Error for Stage {}

    #[test]
    fn display_includes_kind() {
        let e = ExoError::pattern("no statement matches `for k in _: _`");
        assert_eq!(
            e.to_string(),
            "pattern: no statement matches `for k in _: _`"
        );
        assert_eq!(e.kind(), ErrorKind::Pattern);
    }

    #[test]
    fn source_chain_is_preserved() {
        let e = ExoError::check("rewrite rejected").with_source(Stage("qe budget exhausted"));
        let src = e.source().expect("source attached");
        assert_eq!(src.to_string(), "stage: qe budget exhausted");
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            ErrorKind::Lex,
            ErrorKind::Parse,
            ErrorKind::Pattern,
            ErrorKind::Check,
            ErrorKind::Budget,
            ErrorKind::Internal,
        ];
        let names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["lex", "parse", "pattern", "check", "budget", "internal"]
        );
    }
}
