//! The Exo core IR (paper Fig. 3), extended with windows, strides, memory
//! annotations and configuration state as described in §2–3.
//!
//! Statements denote store-transforming functions; expressions denote
//! values. Data values flow only through buffers ([`Expr::Read`],
//! [`Stmt::Assign`], [`Stmt::Reduce`]); control values flow through
//! variables ([`Expr::Var`]) and configuration fields.

use std::fmt;
use std::sync::Arc;

use crate::sym::Sym;
use crate::types::{CtrlType, DataType, MemName};

/// A literal constant.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Lit {
    /// Integer literal (control).
    Int(i64),
    /// Boolean literal (control).
    Bool(bool),
    /// Floating-point literal (data).
    Float(f64),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Bool(v) => write!(f, "{v}"),
            Lit::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Binary operators. Arithmetic on control values must be quasi-affine:
/// `*` requires one constant operand, `/` and `%` a constant divisor
/// (enforced by the front-end checks, not by construction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer (floor) division for control values, `/` for data.
    Div,
    /// Euclidean remainder (control only).
    Mod,
    /// Logical and (control only).
    And,
    /// Logical or (control only).
    Or,
    /// Equality comparison.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Source spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Eq => "==",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// One coordinate of a window expression: either a point access (which
/// removes the dimension) or an interval `lo:hi` (which keeps it).
#[derive(Clone, PartialEq, Debug)]
pub enum WAccess {
    /// `x[e, …]` — select a single index along this dimension.
    Point(Expr),
    /// `x[lo:hi, …]` — select the half-open range along this dimension.
    Interval(Expr, Expr),
}

impl WAccess {
    /// Whether this coordinate keeps its dimension in the window.
    pub fn is_interval(&self) -> bool {
        matches!(self, WAccess::Interval(..))
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Read of a control variable.
    Var(Sym),
    /// Literal constant.
    Lit(Lit),
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Read of a data buffer (or scalar: empty index list) at a point.
    Read {
        /// The buffer (or window) being read.
        buf: Sym,
        /// Index per retained dimension.
        idx: Vec<Expr>,
    },
    /// Window (slice) of a buffer: `win(buf, coords)`. Creating a window
    /// does not copy data.
    Window {
        /// The underlying buffer or window.
        buf: Sym,
        /// One coordinate per dimension of `buf`.
        coords: Vec<WAccess>,
    },
    /// `stride(buf, dim)` — the distance in elements between consecutive
    /// entries of `buf` along dimension `dim`.
    Stride {
        /// Buffer whose layout is queried.
        buf: Sym,
        /// Dimension index.
        dim: usize,
    },
    /// Read of a configuration field `Config.field` (global control state).
    ReadConfig {
        /// The configuration struct.
        config: Sym,
        /// The field within it.
        field: Sym,
    },
    /// Call to a built-in total math function on data values.
    BuiltIn {
        /// Function name (`sin`, `relu`, `max`, …).
        func: Sym,
        /// Data arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Lit::Int(v))
    }

    /// Float literal shorthand.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Lit::Float(v))
    }

    /// Boolean literal shorthand.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Lit::Bool(v))
    }

    /// Variable read shorthand.
    pub fn var(s: Sym) -> Expr {
        Expr::Var(s)
    }

    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::BinOp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Returns `Some(v)` if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Lit(Lit::Int(v)) => Some(*v),
            _ => None,
        }
    }
}

macro_rules! expr_binops {
    ($($method:ident => $op:ident),* $(,)?) => {
        impl Expr {
            $(
                #[doc = concat!("Builds `self ", stringify!($op), " rhs`.")]
                #[allow(clippy::should_implement_trait)]
                pub fn $method(self, rhs: Expr) -> Expr {
                    Expr::bin(BinOp::$op, self, rhs)
                }
            )*
        }
    };
}
expr_binops! {
    add => Add, sub => Sub, mul => Mul, div => Div, rem => Mod,
    and => And, or => Or, eq => Eq, lt => Lt, le => Le, gt => Gt, ge => Ge,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `buf[idx] = rhs` — overwrite a buffer location.
    Assign {
        /// Target buffer (or window, or scalar with empty `idx`).
        buf: Sym,
        /// Index per retained dimension.
        idx: Vec<Expr>,
        /// Data value to store.
        rhs: Expr,
    },
    /// `buf[idx] += rhs` — reduce into a buffer location. Reduction is
    /// commutative and associative from the analysis's point of view.
    Reduce {
        /// Target buffer.
        buf: Sym,
        /// Index per retained dimension.
        idx: Vec<Expr>,
        /// Data value to accumulate.
        rhs: Expr,
    },
    /// `Config.field = rhs` — write global configuration state.
    WriteConfig {
        /// The configuration struct.
        config: Sym,
        /// The field within it.
        field: Sym,
        /// Control value to store.
        rhs: Expr,
    },
    /// No-op.
    Pass,
    /// `if cond: body else: orelse`.
    If {
        /// Branch condition (control).
        cond: Expr,
        /// Taken when `cond` holds.
        body: Block,
        /// Taken otherwise (may be empty).
        orelse: Block,
    },
    /// `for iter in seq(lo, hi): body` — sequential loop over `[lo, hi)`.
    For {
        /// Iteration variable (scoped to `body`).
        iter: Sym,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Block,
    },
    /// `name : ty[shape] @ mem` — allocate a buffer, scoped to the rest of
    /// the enclosing block.
    Alloc {
        /// Buffer name.
        name: Sym,
        /// Element precision.
        ty: DataType,
        /// Extent per dimension (empty for a scalar).
        shape: Vec<Expr>,
        /// Memory the buffer resides in.
        mem: MemName,
    },
    /// `name = win(base, coords)` — bind a window into `base`.
    WindowDef {
        /// Window name.
        name: Sym,
        /// Window expression (must be [`Expr::Window`]).
        rhs: Expr,
    },
    /// Call to a sub-procedure.
    Call {
        /// The callee (possibly an `@instr`).
        proc: Arc<Proc>,
        /// One argument per formal parameter.
        args: Vec<Expr>,
    },
}

impl Stmt {
    /// The sub-blocks of this statement, in order (`If` has two, `For`
    /// one, leaves none).
    pub fn blocks(&self) -> Vec<&Block> {
        match self {
            Stmt::If { body, orelse, .. } => vec![body, orelse],
            Stmt::For { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Whether this statement is a leaf (has no sub-blocks).
    pub fn is_leaf(&self) -> bool {
        !matches!(self, Stmt::If { .. } | Stmt::For { .. })
    }
}

/// A formal parameter of a procedure.
#[derive(Clone, PartialEq, Debug)]
pub struct FnArg {
    /// Parameter name.
    pub name: Sym,
    /// Parameter type.
    pub ty: ArgType,
}

/// The type of a formal parameter.
#[derive(Clone, PartialEq, Debug)]
pub enum ArgType {
    /// A control value.
    Ctrl(CtrlType),
    /// A data scalar passed by reference.
    Scalar {
        /// Element precision.
        ty: DataType,
        /// Memory annotation.
        mem: MemName,
    },
    /// A tensor (or window over one).
    Tensor {
        /// Element precision.
        ty: DataType,
        /// Extent per dimension; may depend on size parameters.
        shape: Vec<Expr>,
        /// `true` if the argument is a window (`[R][n,m]` syntax in the
        /// paper): strides are passed at runtime.
        window: bool,
        /// Memory annotation.
        mem: MemName,
    },
}

impl ArgType {
    /// The data precision, if this is a data argument.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            ArgType::Ctrl(_) => None,
            ArgType::Scalar { ty, .. } | ArgType::Tensor { ty, .. } => Some(*ty),
        }
    }

    /// The memory annotation, if this is a data argument.
    pub fn mem(&self) -> Option<MemName> {
        match self {
            ArgType::Ctrl(_) => None,
            ArgType::Scalar { mem, .. } | ArgType::Tensor { mem, .. } => Some(*mem),
        }
    }

    /// Whether the argument is a control value.
    pub fn is_ctrl(&self) -> bool {
        matches!(self, ArgType::Ctrl(_))
    }
}

/// The `@instr` annotation: a C template standing in for the procedure
/// body at code-generation time (paper §3.2.2).
///
/// Template holes are written `{name}` (argument interpolation),
/// `{name_data}` (pointer to the data of a tensor argument) and
/// `{name_int}` (integer value). The annotated Exo body is the semantic
/// specification used by scheduling and analysis.
#[derive(Clone, PartialEq, Debug)]
pub struct InstrTemplate {
    /// The C code emitted for each call, with `{arg}` holes.
    pub c_instr: String,
    /// Optional global C code (e.g. `#include`s) emitted once.
    pub c_global: Option<String>,
}

/// A procedure: the unit of compilation, scheduling, and replacement.
#[derive(Clone, PartialEq, Debug)]
pub struct Proc {
    /// Procedure name.
    pub name: Sym,
    /// Formal parameters.
    pub args: Vec<FnArg>,
    /// Static assertions (pre-conditions on control arguments).
    pub preds: Vec<Expr>,
    /// Procedure body.
    pub body: Block,
    /// `Some` if this procedure is an `@instr`.
    pub instr: Option<InstrTemplate>,
}

impl Proc {
    /// Whether this procedure is a hardware instruction.
    pub fn is_instr(&self) -> bool {
        self.instr.is_some()
    }

    /// Looks up a formal parameter by name.
    pub fn arg(&self, name: Sym) -> Option<&FnArg> {
        self.args.iter().find(|a| a.name == name)
    }

    /// Looks up a formal parameter by spelling (first match).
    pub fn arg_named(&self, name: &str) -> Option<&FnArg> {
        self.args.iter().find(|a| a.name.name() == name)
    }
}

/// A field of a configuration struct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigField {
    /// Field name.
    pub name: Sym,
    /// Field type (control values only).
    pub ty: CtrlType,
}

/// A configuration struct declaration (paper §3.2.3): a named collection
/// of global, mutable control variables modeling accelerator state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigDecl {
    /// Struct name.
    pub name: Sym,
    /// Fields.
    pub fields: Vec<ConfigField>,
    /// If `false`, no C struct is generated and direct access from C is
    /// impossible (the state only exists for analysis).
    pub materialize: bool,
}

impl ConfigDecl {
    /// Creates a materialized configuration struct.
    pub fn new(name: impl Into<String>, fields: Vec<(&str, CtrlType)>) -> ConfigDecl {
        ConfigDecl {
            name: Sym::new(name),
            fields: fields
                .into_iter()
                .map(|(n, ty)| ConfigField {
                    name: Sym::new(n),
                    ty,
                })
                .collect(),
            materialize: true,
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: Sym) -> Option<&ConfigField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a field by spelling.
    pub fn field_named(&self, name: &str) -> Option<&ConfigField> {
        self.fields.iter().find(|f| f.name.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let i = Sym::new("i");
        let e = Expr::var(i).mul(Expr::int(16)).add(Expr::int(3));
        match &e {
            Expr::BinOp(BinOp::Add, lhs, rhs) => {
                assert!(matches!(**lhs, Expr::BinOp(BinOp::Mul, ..)));
                assert_eq!(rhs.as_int(), Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert_eq!(BinOp::Mod.symbol(), "%");
    }

    #[test]
    fn stmt_blocks() {
        let s = Stmt::If {
            cond: Expr::bool(true),
            body: vec![Stmt::Pass],
            orelse: vec![],
        };
        assert_eq!(s.blocks().len(), 2);
        assert!(!s.is_leaf());
        assert!(Stmt::Pass.is_leaf());
    }

    #[test]
    fn config_lookup() {
        let c = ConfigDecl::new("ConfigLoad", vec![("src_stride", CtrlType::Stride)]);
        assert!(c.field_named("src_stride").is_some());
        assert!(c.field_named("dst_stride").is_none());
        assert!(c.materialize);
    }

    #[test]
    fn lit_display() {
        assert_eq!(Lit::Int(42).to_string(), "42");
        assert_eq!(Lit::Float(2.0).to_string(), "2.0");
        assert_eq!(Lit::Bool(true).to_string(), "true");
    }

    #[test]
    fn waccess_kinds() {
        assert!(WAccess::Interval(Expr::int(0), Expr::int(4)).is_interval());
        assert!(!WAccess::Point(Expr::int(0)).is_interval());
    }
}
