//! Front-end well-formedness checks (paper §3.1, §4.2): scoping, the
//! control/data separation, and the quasi-affine restriction on control
//! arithmetic.
//!
//! Bounds checking and assertion checking require the effect analysis and
//! SMT solver and live in `exo-analysis`; the checks here are purely
//! structural.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{ArgType, BinOp, Block, Expr, Proc, Stmt, WAccess};
use crate::sym::Sym;
use crate::types::CtrlType;

/// An error found by [`check_proc`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(message: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        message: message.into(),
    })
}

/// What kind of thing a symbol denotes in scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Binding {
    Ctrl(CtrlType),
    /// Data buffer / window / scalar with a number of retained dimensions.
    Data {
        dims: usize,
    },
}

/// Checks a procedure for scoping, control/data separation, and
/// quasi-affine control arithmetic.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_proc(p: &Proc) -> Result<(), TypeError> {
    let mut env: HashMap<Sym, Binding> = HashMap::new();
    for arg in &p.args {
        let b = match &arg.ty {
            ArgType::Ctrl(ct) => Binding::Ctrl(*ct),
            ArgType::Scalar { .. } => Binding::Data { dims: 0 },
            ArgType::Tensor { shape, .. } => Binding::Data { dims: shape.len() },
        };
        // dependent shapes may only mention earlier control args
        if let ArgType::Tensor { shape, .. } = &arg.ty {
            for e in shape {
                check_ctrl(e, &env)?;
            }
        }
        env.insert(arg.name, b);
    }
    for pred in &p.preds {
        check_ctrl(pred, &env)?;
    }
    check_block(&p.body, &mut env)
}

fn check_block(b: &Block, env: &mut HashMap<Sym, Binding>) -> Result<(), TypeError> {
    let mut added: Vec<(Sym, Option<Binding>)> = Vec::new();
    let result = (|| {
        for s in b {
            match s {
                Stmt::Pass => {}
                Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                    check_data_target(*buf, idx, env)?;
                    for e in idx {
                        check_ctrl(e, env)?;
                    }
                    check_data_expr(rhs, env)?;
                }
                Stmt::WriteConfig { rhs, .. } => check_ctrl(rhs, env)?,
                Stmt::If { cond, body, orelse } => {
                    check_ctrl(cond, env)?;
                    check_block(body, env)?;
                    check_block(orelse, env)?;
                }
                Stmt::For { iter, lo, hi, body } => {
                    check_ctrl(lo, env)?;
                    check_ctrl(hi, env)?;
                    let prev = env.insert(*iter, Binding::Ctrl(CtrlType::Index));
                    let r = check_block(body, env);
                    match prev {
                        Some(p) => {
                            env.insert(*iter, p);
                        }
                        None => {
                            env.remove(iter);
                        }
                    }
                    r?;
                }
                Stmt::Alloc { name, shape, .. } => {
                    for e in shape {
                        check_ctrl(e, env)?;
                    }
                    added.push((
                        *name,
                        env.insert(*name, Binding::Data { dims: shape.len() }),
                    ));
                }
                Stmt::WindowDef { name, rhs } => {
                    let dims = match rhs {
                        Expr::Window { buf, coords } => {
                            check_window(*buf, coords, env)?;
                            coords.iter().filter(|c| c.is_interval()).count()
                        }
                        _ => return err("window definition right-hand side must be a window"),
                    };
                    added.push((*name, env.insert(*name, Binding::Data { dims })));
                }
                Stmt::Call { proc, args } => {
                    if args.len() != proc.args.len() {
                        return err(format!(
                            "call to {} expects {} arguments, got {}",
                            proc.name,
                            proc.args.len(),
                            args.len()
                        ));
                    }
                    for (actual, formal) in args.iter().zip(&proc.args) {
                        match &formal.ty {
                            ArgType::Ctrl(_) => check_ctrl(actual, env)?,
                            ArgType::Scalar { .. } => check_data_arg(actual, 0, env)?,
                            ArgType::Tensor { shape, .. } => {
                                check_data_arg(actual, shape.len(), env)?
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    })();
    for (s, prev) in added.into_iter().rev() {
        match prev {
            Some(p) => {
                env.insert(s, p);
            }
            None => {
                env.remove(&s);
            }
        }
    }
    result
}

fn check_data_target(buf: Sym, idx: &[Expr], env: &HashMap<Sym, Binding>) -> Result<(), TypeError> {
    match env.get(&buf) {
        Some(Binding::Data { dims }) if *dims == idx.len() => Ok(()),
        Some(Binding::Data { dims }) => err(format!(
            "buffer {buf} has {dims} dimensions but is accessed with {} indices",
            idx.len()
        )),
        Some(Binding::Ctrl(_)) => err(format!("cannot assign to control variable {buf}")),
        None => err(format!("unknown buffer {buf}")),
    }
}

fn check_window(
    buf: Sym,
    coords: &[WAccess],
    env: &HashMap<Sym, Binding>,
) -> Result<(), TypeError> {
    match env.get(&buf) {
        Some(Binding::Data { dims }) if *dims == coords.len() => {
            for c in coords {
                match c {
                    WAccess::Point(p) => check_ctrl(p, env)?,
                    WAccess::Interval(lo, hi) => {
                        check_ctrl(lo, env)?;
                        check_ctrl(hi, env)?;
                    }
                }
            }
            Ok(())
        }
        Some(Binding::Data { dims }) => err(format!(
            "window over {buf}: expected {dims} coordinates, got {}",
            coords.len()
        )),
        _ => err(format!("window over unknown or non-data symbol {buf}")),
    }
}

fn check_data_arg(e: &Expr, dims: usize, env: &HashMap<Sym, Binding>) -> Result<(), TypeError> {
    match e {
        Expr::Read { buf, idx } if idx.is_empty() => match env.get(buf) {
            // passing a whole buffer: dimensions must match the formal
            Some(Binding::Data { dims: d }) if *d == dims => Ok(()),
            Some(Binding::Data { dims: d }) => err(format!(
                "argument {buf} has {d} dimensions, expected {dims}"
            )),
            _ => err(format!("unknown data argument {buf}")),
        },
        Expr::Window { buf, coords } => {
            check_window(*buf, coords, env)?;
            let kept = coords.iter().filter(|c| c.is_interval()).count();
            if kept == dims {
                Ok(())
            } else {
                err(format!(
                    "window argument keeps {kept} dimensions, expected {dims}"
                ))
            }
        }
        // scalar data expressions may be passed to scalar formals
        _ if dims == 0 => check_data_expr(e, env),
        _ => err("tensor argument must be a buffer name or window expression"),
    }
}

fn check_ctrl(e: &Expr, env: &HashMap<Sym, Binding>) -> Result<(), TypeError> {
    match e {
        Expr::Var(x) => match env.get(x) {
            Some(Binding::Ctrl(_)) => Ok(()),
            Some(Binding::Data { .. }) => err(format!(
                "data variable {x} used where a control value is required"
            )),
            None => err(format!("unknown variable {x}")),
        },
        Expr::Lit(crate::ir::Lit::Float(_)) => {
            err("float literal used where a control value is required")
        }
        Expr::Lit(_) => Ok(()),
        Expr::BinOp(op, a, b) => {
            check_ctrl(a, env)?;
            check_ctrl(b, env)?;
            // quasi-affine restriction
            match op {
                BinOp::Mul => {
                    if a.as_int().is_none() && b.as_int().is_none() {
                        err("control multiplication requires one constant operand")
                    } else {
                        Ok(())
                    }
                }
                BinOp::Div | BinOp::Mod => {
                    if b.as_int().is_none() {
                        err("control division/modulo requires a constant divisor")
                    } else if b.as_int() == Some(0) {
                        err("division by zero in control expression")
                    } else {
                        Ok(())
                    }
                }
                _ => Ok(()),
            }
        }
        Expr::Neg(a) => check_ctrl(a, env),
        Expr::Stride { buf, .. } => match env.get(buf) {
            Some(Binding::Data { .. }) => Ok(()),
            _ => err(format!("stride() of unknown or non-data symbol {buf}")),
        },
        Expr::ReadConfig { .. } => Ok(()),
        Expr::Read { .. } | Expr::Window { .. } | Expr::BuiltIn { .. } => {
            err("data expression used where a control value is required")
        }
    }
}

fn check_data_expr(e: &Expr, env: &HashMap<Sym, Binding>) -> Result<(), TypeError> {
    match e {
        Expr::Read { buf, idx } => {
            check_data_target(*buf, idx, env)?;
            for i in idx {
                check_ctrl(i, env)?;
            }
            Ok(())
        }
        Expr::Lit(crate::ir::Lit::Float(_)) | Expr::Lit(crate::ir::Lit::Int(_)) => Ok(()),
        Expr::Lit(crate::ir::Lit::Bool(_)) => err("bool literal is not a data value"),
        Expr::BinOp(op, a, b) => {
            if op.is_predicate() || matches!(op, BinOp::Mod) {
                return err(format!("operator {op} is not defined on data values"));
            }
            check_data_expr(a, env)?;
            check_data_expr(b, env)
        }
        Expr::Neg(a) => check_data_expr(a, env),
        Expr::BuiltIn { args, .. } => {
            for a in args {
                check_data_expr(a, env)?;
            }
            Ok(())
        }
        Expr::Var(x) => err(format!(
            "control variable {x} used where a data value is required \
             (control values may not flow into data)"
        )),
        Expr::Window { .. } => err("window expression used as a data value"),
        Expr::Stride { .. } | Expr::ReadConfig { .. } => {
            err("control expression used where a data value is required")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{read, ProcBuilder};
    use crate::types::DataType;

    #[test]
    fn accepts_simple_gemm() {
        let mut b = ProcBuilder::new("gemm");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n), Expr::var(n)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::var(n), Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        let j = b.begin_for("j", Expr::int(0), Expr::var(n));
        b.reduce(
            c,
            vec![Expr::var(i), Expr::var(j)],
            read(a, vec![Expr::var(i), Expr::var(j)]),
        );
        b.end_for();
        b.end_for();
        assert!(check_proc(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_nonaffine_multiplication() {
        let mut b = ProcBuilder::new("p");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        // A[i * n] — i * n is not quasi-affine
        b.assign(a, vec![Expr::var(i).mul(Expr::var(n))], Expr::float(0.0));
        b.end_for();
        let e = check_proc(&b.finish()).unwrap_err();
        assert!(e.message.contains("constant operand"), "{e}");
    }

    #[test]
    fn rejects_data_in_control_position() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let x = b.scalar("x", DataType::F32);
        // for i in seq(0, A[0]) — data in a loop bound
        let _ = x;
        let i = b.begin_for("i", Expr::int(0), read(a, vec![Expr::int(0)]));
        let _ = i;
        b.stmt(Stmt::Pass);
        b.end_for();
        assert!(check_proc(&b.finish()).is_err());
    }

    #[test]
    fn rejects_wrong_arity_access() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4), Expr::int(4)]);
        b.assign(a, vec![Expr::int(0)], Expr::float(0.0));
        let e = check_proc(&b.finish()).unwrap_err();
        assert!(e.message.contains("dimensions"), "{e}");
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let ghost = Sym::new("ghost");
        b.assign(a, vec![Expr::var(ghost)], Expr::float(0.0));
        assert!(check_proc(&b.finish()).is_err());
    }

    #[test]
    fn rejects_division_by_zero() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(4));
        b.assign(a, vec![Expr::var(i).div(Expr::int(0))], Expr::float(0.0));
        b.end_for();
        assert!(check_proc(&b.finish()).is_err());
    }

    #[test]
    fn loop_variable_scoping() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(4));
        b.stmt(Stmt::Pass);
        b.end_for();
        // i is out of scope here
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        assert!(check_proc(&b.finish()).is_err());
    }

    #[test]
    fn call_arity_checked() {
        let mut callee = ProcBuilder::new("callee");
        let _ = callee.size("n");
        callee.stmt(Stmt::Pass);
        let callee = callee.finish();

        let mut b = ProcBuilder::new("caller");
        b.call(&callee, vec![]);
        let e = check_proc(&b.finish()).unwrap_err();
        assert!(e.message.contains("expects 1 arguments"), "{e}");
    }
}
