//! # exo-core
//!
//! The core intermediate representation of **exo-rs**, a Rust
//! reproduction of the Exo language from *Exocompilation for Productive
//! Programming of Hardware Accelerators* (PLDI 2022).
//!
//! Exo is an imperative language in the static-control-program mold:
//! `for` loops and `if` guards over quasi-affine control expressions,
//! dependently-sized tensors with windowing, explicit `+=` reduction, and
//! mutable global *configuration state* modeling accelerator registers.
//! This crate defines:
//!
//! * [`sym`] — interned, globally unique symbols;
//! * [`types`] — data precisions, control types, memory names;
//! * [`ir`] — expressions, statements, procedures, `@instr` templates and
//!   `@config` declarations (paper Fig. 3 plus the §2/§3 extensions);
//! * [`build`] — a builder API playing the role of the Python embedding;
//! * [`check`] — front-end structural checks (scoping, control/data
//!   separation, quasi-affinity);
//! * [`path`] — stable statement addresses used by scheduling rewrites;
//! * [`visit`] — traversal, substitution, renaming, alpha-equivalence;
//! * [`printer`] — pretty-printing in the paper's surface syntax;
//! * [`error`] — the [`ExoError`] umbrella every stage error chains into;
//! * [`budget`] — shared fuel/wall-clock [`ResourceBudget`] limits.
//!
//! Scheduling rewrites live in `exo-sched`, safety analyses in
//! `exo-analysis`, code generation in `exo-codegen`.
//!
//! # Examples
//!
//! ```
//! use exo_core::build::{read, ProcBuilder};
//! use exo_core::ir::Expr;
//! use exo_core::types::DataType;
//!
//! // The 128×128×128 GEMM from paper §2.1.
//! let mut b = ProcBuilder::new("gemm");
//! let a = b.tensor("A", DataType::F32, vec![Expr::int(128), Expr::int(128)]);
//! let bb = b.tensor("B", DataType::F32, vec![Expr::int(128), Expr::int(128)]);
//! let c = b.tensor("C", DataType::F32, vec![Expr::int(128), Expr::int(128)]);
//! let i = b.begin_for("i", Expr::int(0), Expr::int(128));
//! let j = b.begin_for("j", Expr::int(0), Expr::int(128));
//! let k = b.begin_for("k", Expr::int(0), Expr::int(128));
//! b.reduce(
//!     c,
//!     vec![Expr::var(i), Expr::var(j)],
//!     read(a, vec![Expr::var(i), Expr::var(k)])
//!         .mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
//! );
//! b.end_for().end_for().end_for();
//! let gemm = b.finish();
//! exo_core::check::check_proc(&gemm)?;
//! # Ok::<(), exo_core::check::TypeError>(())
//! ```

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod build;
pub mod check;
pub mod diag;
pub mod error;
pub mod ir;
pub mod path;
pub mod printer;
pub mod sym;
pub mod types;
pub mod visit;

pub use budget::{BudgetError, Resource, ResourceBudget};
pub use diag::{Diagnostic, Severity, Verdict};
pub use error::{ErrorKind, ExoError};
pub use ir::{
    ArgType, BinOp, Block, ConfigDecl, ConfigField, Expr, FnArg, InstrTemplate, Lit, Proc, Stmt,
    WAccess,
};
pub use sym::Sym;
pub use types::{CtrlType, DataType, MemName};
