//! Interned symbols.
//!
//! Every variable, buffer, procedure, and configuration field in the IR is
//! named by a [`Sym`]: a globally unique identifier paired with a
//! human-readable name. Two syms with the same spelling are *different*
//! variables unless they are the same sym — this is what makes substitution
//! and alpha-renaming safe during scheduling rewrites.

use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// A globally unique, interned symbol.
///
/// Symbols are cheap to copy and compare. The spelling is retrieved with
/// [`Sym::name`]; uniqueness is by identity, not spelling.
///
/// # Examples
///
/// ```
/// use exo_core::sym::Sym;
/// let a = Sym::new("i");
/// let b = Sym::new("i");
/// assert_ne!(a, b);           // distinct identities
/// assert_eq!(a.name(), "i");  // same spelling
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct SymTable {
    names: Vec<String>,
}

fn table() -> &'static Mutex<SymTable> {
    static TABLE: OnceLock<Mutex<SymTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(SymTable { names: Vec::new() }))
}

impl Sym {
    /// Creates a fresh symbol with the given spelling.
    pub fn new(name: impl Into<String>) -> Sym {
        // The table is append-only, so a panic mid-push cannot leave it
        // inconsistent; recover the guard instead of propagating poison.
        let mut t = table().lock().unwrap_or_else(PoisonError::into_inner);
        let id = t.names.len() as u32;
        t.names.push(name.into());
        Sym(id)
    }

    /// Creates a fresh symbol with the same spelling as `self`.
    ///
    /// Used by scheduling operators that need renamed copies of iteration
    /// variables (e.g. loop splitting).
    pub fn copy(self) -> Sym {
        Sym::new(self.name())
    }

    /// Returns the spelling of this symbol.
    pub fn name(self) -> String {
        let t = table().lock().unwrap_or_else(PoisonError::into_inner);
        t.names[self.0 as usize].clone()
    }

    /// Returns the unique numeric identity of this symbol.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Returns a spelling guaranteed unique across all symbols
    /// (`name_id`), for use in generated code.
    pub fn unique_name(self) -> String {
        format!("{}_{}", self.name(), self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name(), self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Sym::new("x");
        let b = Sym::new("x");
        assert_ne!(a, b);
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn copy_preserves_spelling() {
        let a = Sym::new("loop_var");
        let b = a.copy();
        assert_ne!(a, b);
        assert_eq!(b.name(), "loop_var");
    }

    #[test]
    fn unique_name_embeds_id() {
        let a = Sym::new("i");
        assert_eq!(a.unique_name(), format!("i_{}", a.id()));
    }

    #[test]
    fn display_and_debug() {
        let a = Sym::new("buf");
        assert_eq!(format!("{a}"), "buf");
        assert_eq!(format!("{a:?}"), format!("buf#{}", a.id()));
    }

    #[test]
    fn symbols_are_ordered_by_creation() {
        let a = Sym::new("a");
        let b = Sym::new("b");
        assert!(a < b);
    }
}
