//! Statement addressing within a procedure body.
//!
//! Scheduling operators "point at" locations inside a procedure (paper
//! §3.3). A [`StmtPath`] is a stable address of one statement: a sequence
//! of steps descending through blocks. Paths are produced by the pattern
//! matcher in `exo-sched` and consumed by the rewrite engine.

use std::fmt;

use crate::ir::{Block, Stmt};

/// One descent step: which sub-block of the current statement to enter,
/// and the index of the statement within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathStep {
    /// Index of the sub-block within the parent statement (0 for a `For`
    /// body or `If` then-branch, 1 for an `If` else-branch). For the root
    /// block this is 0.
    pub block: usize,
    /// Index of the statement within that block.
    pub idx: usize,
}

/// The address of a statement inside a procedure body.
///
/// The first step indexes into the procedure's top-level block; each later
/// step descends into a sub-block of the previously selected statement.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct StmtPath(pub Vec<PathStep>);

impl StmtPath {
    /// The root-block statement at index `i`.
    pub fn top(i: usize) -> StmtPath {
        StmtPath(vec![PathStep { block: 0, idx: i }])
    }

    /// Extends this path one level deeper.
    pub fn child(&self, block: usize, idx: usize) -> StmtPath {
        let mut v = self.0.clone();
        v.push(PathStep { block, idx });
        StmtPath(v)
    }

    /// The path of the enclosing statement, or `None` at top level.
    pub fn parent(&self) -> Option<StmtPath> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(StmtPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The final step (block/index within the innermost enclosing block).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn last(&self) -> PathStep {
        // Documented API contract; construction sites all produce nonempty
        // paths (`top`, `child`), so this is a programmer-error panic, not
        // an input-reachable one.
        #[allow(clippy::expect_used)]
        *self.0.last().expect("empty StmtPath")
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the path has no steps (addresses nothing).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a path to the sibling at offset `delta` within the same
    /// block, or `None` if it would be negative.
    pub fn sibling(&self, delta: isize) -> Option<StmtPath> {
        let mut v = self.0.clone();
        let last = v.last_mut()?;
        let idx = last.idx as isize + delta;
        if idx < 0 {
            return None;
        }
        last.idx = idx as usize;
        Some(StmtPath(v))
    }

    /// Whether `self` is a strict prefix of `other` (i.e. `other` is
    /// nested inside the statement addressed by `self`).
    pub fn is_prefix_of(&self, other: &StmtPath) -> bool {
        other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for StmtPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|s| {
                if s.block == 0 {
                    format!("{}", s.idx)
                } else {
                    format!("{}.{}", s.block, s.idx)
                }
            })
            .collect();
        write!(f, "[{}]", parts.join("/"))
    }
}

/// Returns the statement addressed by `path` within `body`.
///
/// Returns `None` if any step is out of range.
pub fn stmt_at<'a>(body: &'a Block, path: &StmtPath) -> Option<&'a Stmt> {
    let mut block = body;
    let mut stmt: Option<&Stmt> = None;
    for step in &path.0 {
        if let Some(s) = stmt {
            block = match (s, step.block) {
                (Stmt::For { body, .. }, 0) => body,
                (Stmt::If { body, .. }, 0) => body,
                (Stmt::If { orelse, .. }, 1) => orelse,
                _ => return None,
            };
        } else if step.block != 0 {
            return None;
        }
        stmt = block.get(step.idx);
        stmt?;
    }
    stmt
}

/// Rewrites the statement addressed by `path`, replacing it with the
/// statements produced by `f` (zero, one, or many — enabling deletion and
/// splitting rewrites).
///
/// Returns `None` if the path is invalid.
pub fn replace_at(
    body: &Block,
    path: &StmtPath,
    f: &mut dyn FnMut(&Stmt) -> Vec<Stmt>,
) -> Option<Block> {
    fn go(
        block: &Block,
        steps: &[PathStep],
        f: &mut dyn FnMut(&Stmt) -> Vec<Stmt>,
    ) -> Option<Block> {
        let step = steps[0];
        let target = block.get(step.idx)?;
        let mut out = Vec::with_capacity(block.len() + 1);
        out.extend_from_slice(&block[..step.idx]);
        if steps.len() == 1 {
            out.extend(f(target));
        } else {
            let rest = &steps[1..];
            let inner_block_idx = rest[0].block;
            let new_stmt = match target {
                Stmt::For { iter, lo, hi, body } if inner_block_idx == 0 => Stmt::For {
                    iter: *iter,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: go(body, rest, f)?,
                },
                Stmt::If { cond, body, orelse } if inner_block_idx == 0 => Stmt::If {
                    cond: cond.clone(),
                    body: go(body, rest, f)?,
                    orelse: orelse.clone(),
                },
                Stmt::If { cond, body, orelse } if inner_block_idx == 1 => Stmt::If {
                    cond: cond.clone(),
                    body: body.clone(),
                    orelse: go(orelse, rest, f)?,
                },
                _ => return None,
            };
            out.push(new_stmt);
        }
        out.extend_from_slice(&block[step.idx + 1..]);
        Some(out)
    }
    if path.0.is_empty() {
        return None;
    }
    go(body, &path.0, f)
}

/// Visits every statement in `body` in pre-order, passing its path.
pub fn visit_paths(body: &Block, mut f: impl FnMut(&StmtPath, &Stmt)) {
    fn go_block(
        block: &Block,
        parent: &StmtPath,
        block_id: usize,
        f: &mut impl FnMut(&StmtPath, &Stmt),
    ) {
        for (i, s) in block.iter().enumerate() {
            let p = parent.child(block_id, i);
            f(&p, s);
            match s {
                Stmt::For { body, .. } => go_block(body, &p, 0, f),
                Stmt::If { body, orelse, .. } => {
                    go_block(body, &p, 0, f);
                    go_block(orelse, &p, 1, f);
                }
                _ => {}
            }
        }
    }
    go_block(body, &StmtPath::default(), 0, &mut f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;
    use crate::sym::Sym;

    fn sample() -> Block {
        // for i: { Pass; if c: { Pass } else: { Pass } }
        let i = Sym::new("i");
        vec![Stmt::For {
            iter: i,
            lo: Expr::int(0),
            hi: Expr::int(4),
            body: vec![
                Stmt::Pass,
                Stmt::If {
                    cond: Expr::bool(true),
                    body: vec![Stmt::Pass],
                    orelse: vec![Stmt::Pass],
                },
            ],
        }]
    }

    #[test]
    fn stmt_at_navigates() {
        let b = sample();
        assert!(matches!(
            stmt_at(&b, &StmtPath::top(0)),
            Some(Stmt::For { .. })
        ));
        let p = StmtPath::top(0).child(0, 1); // the if
        assert!(matches!(stmt_at(&b, &p), Some(Stmt::If { .. })));
        let p_else = p.child(1, 0);
        assert!(matches!(stmt_at(&b, &p_else), Some(Stmt::Pass)));
        assert!(stmt_at(&b, &StmtPath::top(7)).is_none());
    }

    #[test]
    fn replace_at_splices() {
        let b = sample();
        let p = StmtPath::top(0).child(0, 0); // inner Pass
        let b2 = replace_at(&b, &p, &mut |_| vec![Stmt::Pass, Stmt::Pass]).unwrap();
        match &b2[0] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 3),
            _ => panic!(),
        }
        // deletion
        let b3 = replace_at(&b, &p, &mut |_| vec![]).unwrap();
        match &b3[0] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn visit_sees_all() {
        let b = sample();
        let mut n = 0;
        visit_paths(&b, |_, _| n += 1);
        assert_eq!(n, 5); // for, pass, if, then-pass, else-pass
    }

    #[test]
    fn path_relations() {
        let p = StmtPath::top(2);
        let c = p.child(0, 1);
        assert!(p.is_prefix_of(&c));
        assert!(!c.is_prefix_of(&p));
        assert_eq!(c.parent(), Some(p.clone()));
        assert_eq!(p.sibling(1).unwrap(), StmtPath::top(3));
        assert!(StmtPath::top(0).sibling(-1).is_none());
    }

    #[test]
    fn path_display() {
        let p = StmtPath::top(1).child(0, 2).child(1, 0);
        assert_eq!(p.to_string(), "[1/2/1.0]");
    }
}
