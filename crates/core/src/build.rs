//! Ergonomic construction of procedures.
//!
//! The builder plays the role of the Python embedding in the paper: it is
//! how algorithm authors write the *simple* version of a kernel, which is
//! then rewritten by scheduling. See `examples/quickstart.rs` for the
//! GEMM of paper §2 written with this API.

use std::sync::Arc;

use crate::ir::{ArgType, Block, Expr, FnArg, InstrTemplate, Proc, Stmt, WAccess};
use crate::sym::Sym;
use crate::types::{CtrlType, DataType, MemName};

/// Builder for a [`Proc`].
///
/// # Examples
///
/// ```
/// use exo_core::build::ProcBuilder;
/// use exo_core::types::DataType;
/// use exo_core::ir::Expr;
///
/// let mut b = ProcBuilder::new("copy");
/// let n = b.size("n");
/// let src = b.tensor("src", DataType::F32, vec![Expr::var(n)]);
/// let dst = b.tensor("dst", DataType::F32, vec![Expr::var(n)]);
/// let i = b.begin_for("i", Expr::int(0), Expr::var(n));
/// b.assign(dst, vec![Expr::var(i)], Expr::Read { buf: src, idx: vec![Expr::var(i)] });
/// b.end_for();
/// let p = b.finish();
/// assert_eq!(p.args.len(), 3);
/// ```
#[derive(Debug)]
pub struct ProcBuilder {
    name: Sym,
    args: Vec<FnArg>,
    preds: Vec<Expr>,
    // stack of open blocks; frames[0] is the proc body
    frames: Vec<Frame>,
    instr: Option<InstrTemplate>,
}

#[derive(Debug)]
enum Frame {
    Top(Block),
    For {
        iter: Sym,
        lo: Expr,
        hi: Expr,
        body: Block,
    },
    If {
        cond: Expr,
        body: Block,
        in_else: bool,
        then_done: Block,
    },
}

impl ProcBuilder {
    /// Starts building a procedure with the given name.
    pub fn new(name: impl Into<String>) -> ProcBuilder {
        ProcBuilder {
            name: Sym::new(name),
            args: Vec::new(),
            preds: Vec::new(),
            frames: vec![Frame::Top(Vec::new())],
            instr: None,
        }
    }

    /// Declares a `size` parameter and returns its symbol.
    pub fn size(&mut self, name: &str) -> Sym {
        self.ctrl(name, CtrlType::Size)
    }

    /// Declares a control parameter of the given type.
    pub fn ctrl(&mut self, name: &str, ty: CtrlType) -> Sym {
        let s = Sym::new(name);
        self.args.push(FnArg {
            name: s,
            ty: ArgType::Ctrl(ty),
        });
        s
    }

    /// Declares a dense tensor parameter in DRAM.
    pub fn tensor(&mut self, name: &str, ty: DataType, shape: Vec<Expr>) -> Sym {
        self.tensor_in(name, ty, shape, MemName::dram())
    }

    /// Declares a dense tensor parameter in the given memory.
    pub fn tensor_in(&mut self, name: &str, ty: DataType, shape: Vec<Expr>, mem: MemName) -> Sym {
        let s = Sym::new(name);
        self.args.push(FnArg {
            name: s,
            ty: ArgType::Tensor {
                ty,
                shape,
                window: false,
                mem,
            },
        });
        s
    }

    /// Declares a window parameter (`[R][n,m]` in paper syntax) in the
    /// given memory.
    pub fn window_arg(&mut self, name: &str, ty: DataType, shape: Vec<Expr>, mem: MemName) -> Sym {
        let s = Sym::new(name);
        self.args.push(FnArg {
            name: s,
            ty: ArgType::Tensor {
                ty,
                shape,
                window: true,
                mem,
            },
        });
        s
    }

    /// Declares a scalar data parameter.
    pub fn scalar(&mut self, name: &str, ty: DataType) -> Sym {
        let s = Sym::new(name);
        self.args.push(FnArg {
            name: s,
            ty: ArgType::Scalar {
                ty,
                mem: MemName::dram(),
            },
        });
        s
    }

    /// Adds a static assertion (pre-condition).
    pub fn assert_pred(&mut self, e: Expr) -> &mut Self {
        self.preds.push(e);
        self
    }

    /// Marks the procedure as an `@instr` with the given C template.
    pub fn instr(&mut self, c_instr: impl Into<String>) -> &mut Self {
        self.instr = Some(InstrTemplate {
            c_instr: c_instr.into(),
            c_global: None,
        });
        self
    }

    /// Marks the procedure as an `@instr` with both a call template and a
    /// global preamble.
    pub fn instr_with_global(
        &mut self,
        c_instr: impl Into<String>,
        c_global: impl Into<String>,
    ) -> &mut Self {
        self.instr = Some(InstrTemplate {
            c_instr: c_instr.into(),
            c_global: Some(c_global.into()),
        });
        self
    }

    fn cur(&mut self) -> &mut Block {
        // The builder opens `Frame::Top` in `new` and only `finish`/`end_*`
        // pop frames (with their own balance checks), so an empty stack is
        // unreachable through the public API.
        #[allow(clippy::expect_used)]
        match self.frames.last_mut().expect("builder has no open block") {
            Frame::Top(b) => b,
            Frame::For { body, .. } => body,
            Frame::If {
                body,
                in_else,
                then_done,
                ..
            } => {
                if *in_else {
                    body
                } else {
                    let _ = then_done; // then statements accumulate in body until else()
                    body
                }
            }
        }
    }

    /// Emits a statement into the current block.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.cur().push(s);
        self
    }

    /// Emits `buf[idx] = rhs`.
    pub fn assign(&mut self, buf: Sym, idx: Vec<Expr>, rhs: Expr) -> &mut Self {
        self.stmt(Stmt::Assign { buf, idx, rhs })
    }

    /// Emits `buf[idx] += rhs`.
    pub fn reduce(&mut self, buf: Sym, idx: Vec<Expr>, rhs: Expr) -> &mut Self {
        self.stmt(Stmt::Reduce { buf, idx, rhs })
    }

    /// Emits a configuration write.
    pub fn write_config(&mut self, config: Sym, field: Sym, rhs: Expr) -> &mut Self {
        self.stmt(Stmt::WriteConfig { config, field, rhs })
    }

    /// Emits an allocation and returns the buffer symbol.
    pub fn alloc(&mut self, name: &str, ty: DataType, shape: Vec<Expr>, mem: MemName) -> Sym {
        let s = Sym::new(name);
        self.stmt(Stmt::Alloc {
            name: s,
            ty,
            shape,
            mem,
        });
        s
    }

    /// Emits a window definition and returns the window symbol.
    pub fn window(&mut self, name: &str, base: Sym, coords: Vec<WAccess>) -> Sym {
        let s = Sym::new(name);
        self.stmt(Stmt::WindowDef {
            name: s,
            rhs: Expr::Window { buf: base, coords },
        });
        s
    }

    /// Emits a call to `proc`.
    pub fn call(&mut self, proc: &Arc<Proc>, args: Vec<Expr>) -> &mut Self {
        self.stmt(Stmt::Call {
            proc: Arc::clone(proc),
            args,
        })
    }

    /// Opens `for name in seq(lo, hi):`, returning the iteration variable.
    /// Close with [`ProcBuilder::end_for`].
    pub fn begin_for(&mut self, name: &str, lo: Expr, hi: Expr) -> Sym {
        let iter = Sym::new(name);
        self.frames.push(Frame::For {
            iter,
            lo,
            hi,
            body: Vec::new(),
        });
        iter
    }

    /// Closes the innermost `for`.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open construct is not a `for`.
    pub fn end_for(&mut self) -> &mut Self {
        match self.frames.pop() {
            Some(Frame::For { iter, lo, hi, body }) => {
                self.cur().push(Stmt::For { iter, lo, hi, body });
                self
            }
            _ => panic!("end_for: innermost open construct is not a for"),
        }
    }

    /// Opens `if cond:`. Close with [`ProcBuilder::end_if`]; switch to the
    /// else-branch with [`ProcBuilder::begin_else`].
    pub fn begin_if(&mut self, cond: Expr) -> &mut Self {
        self.frames.push(Frame::If {
            cond,
            body: Vec::new(),
            in_else: false,
            then_done: Vec::new(),
        });
        self
    }

    /// Switches the innermost open `if` to its else-branch.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open construct is not an `if`, or if the
    /// else branch was already begun.
    pub fn begin_else(&mut self) -> &mut Self {
        match self.frames.last_mut() {
            Some(Frame::If {
                body,
                in_else,
                then_done,
                ..
            }) if !*in_else => {
                std::mem::swap(then_done, body);
                *in_else = true;
                self
            }
            _ => panic!("begin_else: no open if (or else already begun)"),
        }
    }

    /// Closes the innermost `if`.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open construct is not an `if`.
    pub fn end_if(&mut self) -> &mut Self {
        match self.frames.pop() {
            Some(Frame::If {
                cond,
                body,
                in_else,
                then_done,
            }) => {
                let (then_b, else_b) = if in_else {
                    (then_done, body)
                } else {
                    (body, then_done)
                };
                self.cur().push(Stmt::If {
                    cond,
                    body: then_b,
                    orelse: else_b,
                });
                self
            }
            _ => panic!("end_if: innermost open construct is not an if"),
        }
    }

    /// Finishes the procedure.
    ///
    /// # Panics
    ///
    /// Panics if any `for` or `if` is still open.
    pub fn finish(mut self) -> Arc<Proc> {
        assert_eq!(self.frames.len(), 1, "unclosed for/if in ProcBuilder");
        let body = match self.frames.pop() {
            Some(Frame::Top(b)) => b,
            _ => unreachable!(),
        };
        Arc::new(Proc {
            name: self.name,
            args: self.args,
            preds: self.preds,
            body,
            instr: self.instr,
        })
    }
}

/// Shorthand for a buffer read expression.
pub fn read(buf: Sym, idx: Vec<Expr>) -> Expr {
    Expr::Read { buf, idx }
}

/// Shorthand for a scalar read expression.
pub fn read0(buf: Sym) -> Expr {
    Expr::Read { buf, idx: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loops() {
        let mut b = ProcBuilder::new("gemm");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        let j = b.begin_for("j", Expr::int(0), Expr::int(8));
        b.reduce(
            c,
            vec![Expr::var(i), Expr::var(j)],
            read(a, vec![Expr::var(i), Expr::var(j)]),
        );
        b.end_for();
        b.end_for();
        let p = b.finish();
        assert_eq!(p.body.len(), 1);
        match &p.body[0] {
            Stmt::For { body, .. } => assert!(matches!(body[0], Stmt::For { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn builds_if_else() {
        let mut b = ProcBuilder::new("p");
        let x = b.ctrl("x", CtrlType::Int);
        b.begin_if(Expr::var(x).lt(Expr::int(0)));
        b.stmt(Stmt::Pass);
        b.begin_else();
        b.stmt(Stmt::Pass);
        b.stmt(Stmt::Pass);
        b.end_if();
        let p = b.finish();
        match &p.body[0] {
            Stmt::If { body, orelse, .. } => {
                assert_eq!(body.len(), 1);
                assert_eq!(orelse.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_for_panics() {
        let mut b = ProcBuilder::new("p");
        b.begin_for("i", Expr::int(0), Expr::int(4));
        let _ = b.finish();
    }

    #[test]
    fn instr_annotation() {
        let mut b = ProcBuilder::new("ld");
        b.instr("hw_ld({dst}, {src});");
        b.stmt(Stmt::Pass);
        let p = b.finish();
        assert!(p.is_instr());
        assert_eq!(p.instr.as_ref().unwrap().c_instr, "hw_ld({dst}, {src});");
    }
}
