//! Pretty-printing of procedures in the Exo surface syntax.
//!
//! The output mirrors the paper's examples (`@proc`, `for i in seq(lo,
//! hi):`, `x : f32[n, m] @ DRAM`, …) and round-trips through the
//! `exo-front` parser for programs that do not use `@instr` templates.

use std::fmt::Write as _;

use crate::ir::{ArgType, Block, Expr, Lit, Proc, Stmt, WAccess};

/// Renders an expression in surface syntax.
pub fn expr_to_string(e: &Expr) -> String {
    print_expr(e, 0)
}

// Precedence levels: or=1, and=2, cmp=3, add/sub=4, mul/div/mod=5, unary=6.
fn prec(e: &Expr) -> u8 {
    use crate::ir::BinOp::*;
    match e {
        Expr::BinOp(op, ..) => match op {
            Or => 1,
            And => 2,
            Eq | Lt | Le | Gt | Ge => 3,
            Add | Sub => 4,
            Mul | Div | Mod => 5,
        },
        Expr::Neg(_) => 6,
        _ => 7,
    }
}

fn print_expr(e: &Expr, min_prec: u8) -> String {
    let p = prec(e);
    let s = match e {
        Expr::Var(x) => x.name(),
        Expr::Lit(l) => format!("{l}"),
        Expr::BinOp(op, a, b) => {
            format!("{} {} {}", print_expr(a, p), op, print_expr(b, p + 1))
        }
        Expr::Neg(a) => format!("-{}", print_expr(a, 7)),
        Expr::Read { buf, idx } => {
            if idx.is_empty() {
                buf.name()
            } else {
                format!(
                    "{}[{}]",
                    buf.name(),
                    idx.iter()
                        .map(|i| print_expr(i, 0))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        }
        Expr::Window { buf, coords } => {
            let parts: Vec<String> = coords
                .iter()
                .map(|c| match c {
                    WAccess::Point(p) => print_expr(p, 0),
                    WAccess::Interval(lo, hi) => {
                        format!("{}:{}", print_expr(lo, 0), print_expr(hi, 0))
                    }
                })
                .collect();
            format!("{}[{}]", buf.name(), parts.join(", "))
        }
        Expr::Stride { buf, dim } => format!("stride({}, {})", buf.name(), dim),
        Expr::ReadConfig { config, field } => format!("{}.{}", config.name(), field.name()),
        Expr::BuiltIn { func, args } => format!(
            "{}({})",
            func.name(),
            args.iter()
                .map(|a| print_expr(a, 0))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    if p < min_prec {
        format!("({s})")
    } else {
        s
    }
}

fn print_block(b: &Block, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    if b.is_empty() {
        let _ = writeln!(out, "{pad}pass");
        return;
    }
    for s in b {
        match s {
            Stmt::Pass => {
                let _ = writeln!(out, "{pad}pass");
            }
            Stmt::Assign { buf, idx, rhs } => {
                let lhs = if idx.is_empty() {
                    buf.name()
                } else {
                    format!(
                        "{}[{}]",
                        buf.name(),
                        idx.iter()
                            .map(|i| print_expr(i, 0))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                let _ = writeln!(out, "{pad}{lhs} = {}", print_expr(rhs, 0));
            }
            Stmt::Reduce { buf, idx, rhs } => {
                let lhs = if idx.is_empty() {
                    buf.name()
                } else {
                    format!(
                        "{}[{}]",
                        buf.name(),
                        idx.iter()
                            .map(|i| print_expr(i, 0))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                let _ = writeln!(out, "{pad}{lhs} += {}", print_expr(rhs, 0));
            }
            Stmt::WriteConfig { config, field, rhs } => {
                let _ = writeln!(
                    out,
                    "{pad}{}.{} = {}",
                    config.name(),
                    field.name(),
                    print_expr(rhs, 0)
                );
            }
            Stmt::If { cond, body, orelse } => {
                let _ = writeln!(out, "{pad}if {}:", print_expr(cond, 0));
                print_block(body, indent + 1, out);
                if !orelse.is_empty() {
                    let _ = writeln!(out, "{pad}else:");
                    print_block(orelse, indent + 1, out);
                }
            }
            Stmt::For { iter, lo, hi, body } => {
                let _ = writeln!(
                    out,
                    "{pad}for {} in seq({}, {}):",
                    iter.name(),
                    print_expr(lo, 0),
                    print_expr(hi, 0)
                );
                print_block(body, indent + 1, out);
            }
            Stmt::Alloc {
                name,
                ty,
                shape,
                mem,
            } => {
                let dims = if shape.is_empty() {
                    String::new()
                } else {
                    format!(
                        "[{}]",
                        shape
                            .iter()
                            .map(|e| print_expr(e, 0))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                let _ = writeln!(out, "{pad}{} : {}{} @ {}", name.name(), ty, dims, mem);
            }
            Stmt::WindowDef { name, rhs } => {
                let _ = writeln!(out, "{pad}{} = {}", name.name(), print_expr(rhs, 0));
            }
            Stmt::Call { proc, args } => {
                let _ = writeln!(
                    out,
                    "{pad}{}({})",
                    proc.name.name(),
                    args.iter()
                        .map(|a| print_expr(a, 0))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
    }
}

/// Renders a whole procedure in surface syntax.
pub fn proc_to_string(p: &Proc) -> String {
    let mut out = String::new();
    let deco = if p.is_instr() { "@instr" } else { "@proc" };
    let _ = writeln!(out, "{deco}");
    let args: Vec<String> = p
        .args
        .iter()
        .map(|a| {
            let name = a.name.name();
            match &a.ty {
                ArgType::Ctrl(ct) => format!("{name}: {ct}"),
                ArgType::Scalar { ty, mem } => format!("{name}: {ty} @ {mem}"),
                ArgType::Tensor {
                    ty,
                    shape,
                    window,
                    mem,
                } => {
                    let dims = shape
                        .iter()
                        .map(|e| print_expr(e, 0))
                        .collect::<Vec<_>>()
                        .join(", ");
                    if *window {
                        format!("{name}: [{ty}][{dims}] @ {mem}")
                    } else {
                        format!("{name}: {ty}[{dims}] @ {mem}")
                    }
                }
            }
        })
        .collect();
    let _ = writeln!(out, "def {}({}):", p.name.name(), args.join(", "));
    for pred in &p.preds {
        let _ = writeln!(out, "    assert {}", print_expr(pred, 0));
    }
    print_block(&p.body, 1, &mut out);
    out
}

impl std::fmt::Display for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", proc_to_string(self))
    }
}

/// Renders a literal the way the parser accepts it.
pub fn lit_to_string(l: &Lit) -> String {
    format!("{l}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;
    use crate::sym::Sym;

    #[test]
    fn parenthesization_respects_precedence() {
        let x = Sym::new("x");
        // (x + 1) * 2 needs parens; x + 1 * 2 does not
        let e1 = Expr::var(x).add(Expr::int(1)).mul(Expr::int(2));
        assert_eq!(expr_to_string(&e1), "(x + 1) * 2");
        let e2 = Expr::var(x).add(Expr::int(1).mul(Expr::int(2)));
        assert_eq!(expr_to_string(&e2), "x + 1 * 2");
    }

    #[test]
    fn subtraction_is_left_assoc() {
        let e = Expr::int(1).sub(Expr::int(2)).sub(Expr::int(3));
        assert_eq!(expr_to_string(&e), "1 - 2 - 3");
        let e2 = Expr::bin(
            BinOp::Sub,
            Expr::int(1),
            Expr::bin(BinOp::Sub, Expr::int(2), Expr::int(3)),
        );
        assert_eq!(expr_to_string(&e2), "1 - (2 - 3)");
    }

    #[test]
    fn windows_and_strides_print() {
        let x = Sym::new("x");
        let e = Expr::Window {
            buf: x,
            coords: vec![
                WAccess::Interval(Expr::int(0), Expr::int(4)),
                WAccess::Point(Expr::int(2)),
            ],
        };
        assert_eq!(expr_to_string(&e), "x[0:4, 2]");
        assert_eq!(
            expr_to_string(&Expr::Stride { buf: x, dim: 1 }),
            "stride(x, 1)"
        );
    }

    #[test]
    fn empty_block_prints_pass() {
        let mut out = String::new();
        print_block(&vec![], 1, &mut out);
        assert_eq!(out, "    pass\n");
    }
}
