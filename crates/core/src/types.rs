//! Types of the Exo core language (paper §3.1, Fig. 3).
//!
//! Exo is built around a strict *control/data separation*: control values
//! (`int`, `bool`, `size`, `index`, `stride`) may appear in loop bounds,
//! branch conditions and array indices and are restricted to quasi-affine
//! arithmetic so they can be analyzed precisely; data values (`R`, `f32`,
//! `i8`, …) are the numbers stored in scalars and tensors and are
//! unrestricted.

use std::fmt;

use crate::sym::Sym;

/// Precision of a data value.
///
/// `R` is the abstract numeric type from the paper; it can be refined to a
/// concrete precision by the `set_precision` scheduling operator, and must
/// be refined before code generation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DataType {
    /// Abstract real number, precision not yet chosen.
    #[default]
    R,
    /// IEEE 754 half precision.
    F16,
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 double precision.
    F64,
    /// Signed 8-bit integer (fixed point).
    I8,
    /// Signed 32-bit integer (fixed point).
    I32,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
}

impl DataType {
    /// Returns the C spelling of this precision.
    ///
    /// `R` has no C spelling; the backend precision check rejects programs
    /// that still contain `R` at code-generation time.
    pub fn c_name(self) -> Option<&'static str> {
        match self {
            DataType::R => None,
            DataType::F16 => Some("_Float16"),
            DataType::F32 => Some("float"),
            DataType::F64 => Some("double"),
            DataType::I8 => Some("int8_t"),
            DataType::I32 => Some("int32_t"),
            DataType::U8 => Some("uint8_t"),
            DataType::U16 => Some("uint16_t"),
        }
    }

    /// Size of one element in bytes (`R` defaults to 4, matching `f32`,
    /// for capacity estimation before precision is fixed).
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::R | DataType::F32 | DataType::I32 => 4,
            DataType::F16 | DataType::U16 => 2,
            DataType::F64 => 8,
            DataType::I8 | DataType::U8 => 1,
        }
    }

    /// Whether this is an integer (fixed-point) type.
    pub fn is_integral(self) -> bool {
        matches!(
            self,
            DataType::I8 | DataType::I32 | DataType::U8 | DataType::U16
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::R => "R",
            DataType::F16 => "f16",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::I8 => "i8",
            DataType::I32 => "i32",
            DataType::U8 => "u8",
            DataType::U16 => "u16",
        };
        write!(f, "{s}")
    }
}

/// Type of a control value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CtrlType {
    /// Strictly positive array extent, usable in dependent tensor shapes.
    Size,
    /// Non-negative index value.
    Index,
    /// Arbitrary integer.
    Int,
    /// Boolean.
    Bool,
    /// A buffer stride (distance in elements between consecutive entries
    /// along one dimension).
    Stride,
}

impl fmt::Display for CtrlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CtrlType::Size => "size",
            CtrlType::Index => "index",
            CtrlType::Int => "int",
            CtrlType::Bool => "bool",
            CtrlType::Stride => "stride",
        };
        write!(f, "{s}")
    }
}

/// Name of a memory in which a buffer resides (paper §3.2.1).
///
/// The core language and analyses are blind to memories; they only affect
/// code generation, where the name is resolved against user-defined
/// [`Memory`](../../exo_codegen/mem/trait.Memory.html) definitions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemName(pub Sym);

impl MemName {
    /// The default memory: system DRAM, managed with `malloc`/`free`.
    pub fn dram() -> MemName {
        static DRAM: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
        MemName(*DRAM.get_or_init(|| Sym::new("DRAM")))
    }

    /// Whether this is the default DRAM memory.
    pub fn is_dram(self) -> bool {
        self == MemName::dram()
    }
}

impl fmt::Display for MemName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_has_no_c_name() {
        assert_eq!(DataType::R.c_name(), None);
        assert_eq!(DataType::F32.c_name(), Some("float"));
    }

    #[test]
    fn sizes() {
        assert_eq!(DataType::I8.size_bytes(), 1);
        assert_eq!(DataType::F64.size_bytes(), 8);
        assert_eq!(DataType::R.size_bytes(), 4);
    }

    #[test]
    fn dram_is_singleton() {
        assert_eq!(MemName::dram(), MemName::dram());
        assert!(MemName::dram().is_dram());
        assert!(!MemName(Sym::new("SCRATCH")).is_dram());
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataType::F32.to_string(), "f32");
        assert_eq!(CtrlType::Size.to_string(), "size");
        assert_eq!(MemName::dram().to_string(), "DRAM");
    }

    #[test]
    fn integral_classification() {
        assert!(DataType::I8.is_integral());
        assert!(!DataType::F32.is_integral());
        assert!(!DataType::R.is_integral());
    }
}
