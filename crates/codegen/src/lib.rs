//! # exo-codegen
//!
//! The C backend of exo-rs (paper §3.1.2, §3.2).
//!
//! Exocompilation means the compiler ships *no* hardware-specific
//! backend: users define [`mem::Memory`]s (custom allocation and
//! addressability), `@instr` templates (expanded verbatim at call
//! sites), and `@config` structs, all in libraries. This crate turns a
//! set of procedures plus those definitions into a self-contained,
//! human-readable C translation unit.
//!
//! Backend checks run immediately before emission: every buffer must
//! have a concrete precision (no abstract `R`), arithmetic must be
//! precision-consistent (casts are inserted only at stores), and
//! non-addressable memories may only be touched through instructions.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod emit;
pub mod mem;

pub use emit::{compile_c, CodegenCtx, CodegenError};
pub use mem::{AllocStyle, Memory, MemorySet};
