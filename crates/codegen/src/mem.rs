//! User-defined memories (paper §2.2, §3.2.1).
//!
//! A [`Memory`] describes how buffers annotated with a given memory name
//! are materialized in C: the allocation/free code, and whether plain
//! C-level reads and writes of individual locations are allowed at all.
//! Hardware scratchpads typically disable direct access, so that only
//! custom instructions can touch them — the backend checks enforce this.

use std::collections::HashMap;
use std::fmt;

use exo_core::types::MemName;
use exo_core::Sym;

/// How a memory materializes allocations.
#[derive(Clone, Debug)]
pub enum AllocStyle {
    /// Ordinary heap allocation (`malloc`/`free`).
    Malloc,
    /// Stack allocation (`type name[n]`), suitable for small buffers.
    Stack,
    /// Custom templates with `{name}`, `{prim_type}`, `{size}` holes.
    Custom {
        /// Allocation statement template.
        alloc: String,
        /// Free statement template.
        free: String,
    },
}

/// A user-defined memory.
#[derive(Clone, Debug)]
pub struct Memory {
    /// The memory's name (matched against buffer annotations).
    pub name: MemName,
    /// How allocations are emitted.
    pub alloc: AllocStyle,
    /// Whether plain C reads/writes/reductions of individual locations
    /// are allowed. `false` models non-addressable accelerator memories
    /// (paper §2.2: "memory is not addressable").
    pub addressable: bool,
    /// Optional global C definitions emitted once (e.g. `#include`s or
    /// scratchpad base addresses).
    pub c_global: Option<String>,
}

impl Memory {
    /// The default DRAM memory: heap-allocated, fully addressable.
    pub fn dram() -> Memory {
        Memory {
            name: MemName::dram(),
            alloc: AllocStyle::Malloc,
            addressable: true,
            c_global: None,
        }
    }

    /// A non-addressable accelerator memory (scratchpads, accumulators).
    pub fn accelerator(name: &str, alloc: AllocStyle) -> Memory {
        Memory {
            name: MemName(Sym::new(name)),
            alloc,
            addressable: false,
            c_global: None,
        }
    }
}

/// The set of memories known to a code-generation run.
#[derive(Clone, Debug)]
pub struct MemorySet {
    mems: HashMap<String, Memory>,
}

impl Default for MemorySet {
    fn default() -> MemorySet {
        MemorySet::new()
    }
}

impl MemorySet {
    /// A set containing only DRAM.
    pub fn new() -> MemorySet {
        let mut mems = HashMap::new();
        mems.insert("DRAM".to_string(), Memory::dram());
        MemorySet { mems }
    }

    /// Registers a memory (replacing any with the same name).
    pub fn register(&mut self, mem: Memory) -> &mut Self {
        self.mems.insert(mem.name.0.name(), mem);
        self
    }

    /// Looks up a memory by annotation name.
    pub fn get(&self, name: MemName) -> Option<&Memory> {
        self.mems.get(&name.0.name())
    }

    /// Iterates over all registered memories.
    pub fn iter(&self) -> impl Iterator<Item = &Memory> {
        self.mems.values()
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}addressable)",
            self.name,
            if self.addressable { "" } else { "non-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_has_dram() {
        let set = MemorySet::new();
        assert!(set.get(MemName::dram()).is_some());
        assert!(set.get(MemName::dram()).unwrap().addressable);
    }

    #[test]
    fn register_and_lookup() {
        let mut set = MemorySet::new();
        let spad = Memory::accelerator(
            "SPAD",
            AllocStyle::Custom {
                alloc: "{prim_type}* {name} = spad_malloc({size});".into(),
                free: "spad_free({name});".into(),
            },
        );
        let name = spad.name;
        set.register(spad);
        let m = set.get(name).expect("registered");
        assert!(!m.addressable);
    }
}
