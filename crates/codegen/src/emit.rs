//! C code generation (paper §3.1.2).
//!
//! Exo compiles to human-readable C that is more or less a syntactic
//! translation of the IR: scalars pass by pointer, windows compile to
//! `(pointer, strides)` structs, dense tensors to raw pointers with
//! shape-derived strides, `@instr` calls expand their C templates, and
//! user-defined memories control allocation code. Static assertions
//! become comments plus optional compiler hints.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

use exo_core::ir::{ArgType, BinOp, Expr, InstrTemplate, Lit, Proc, Stmt, WAccess};
use exo_core::types::{DataType, MemName};
use exo_core::{ConfigDecl, Sym};

use crate::mem::{AllocStyle, MemorySet};

/// A code-generation error (backend check failure).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodegenError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CodegenError {}

fn cerr<T>(message: impl Into<String>) -> Result<T, CodegenError> {
    Err(CodegenError {
        message: message.into(),
    })
}

/// Everything a code-generation run needs besides the procedures.
#[derive(Default)]
pub struct CodegenCtx {
    /// Known memories.
    pub mems: MemorySet,
    /// Configuration struct declarations.
    pub configs: Vec<ConfigDecl>,
    /// Loops approved for parallel execution, keyed by iteration
    /// variable: the loop gets `#pragma omp parallel for`, with a
    /// `reduction(+:…)` clause over the listed buffers when non-empty.
    /// Populate from `exo_sched::Procedure::parallel_marks()`.
    pub parallel: HashMap<Sym, Vec<Sym>>,
}

impl CodegenCtx {
    /// A context with only DRAM and no configuration state.
    pub fn new() -> CodegenCtx {
        CodegenCtx::default()
    }

    /// Approves the loop over `iter` for parallel emission, with an
    /// OpenMP reduction clause over `reductions` (empty for none).
    pub fn mark_parallel(&mut self, iter: Sym, reductions: Vec<Sym>) {
        self.parallel.insert(iter, reductions);
    }

    fn config(&self, name: Sym) -> Option<&ConfigDecl> {
        self.configs.iter().find(|c| c.name == name)
    }
}

/// Generates a self-contained C translation unit containing `procs`
/// (with all transitively called non-`@instr` procedures).
///
/// # Errors
///
/// Fails on backend-check violations: unresolved `R` precision, mixed
/// precisions, or direct access to a non-addressable memory.
pub fn compile_c(procs: &[Arc<Proc>], ctx: &CodegenCtx) -> Result<String, CodegenError> {
    let mut order: Vec<Arc<Proc>> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for p in procs {
        collect_procs(p, &mut order, &mut seen);
    }

    let mut out = String::new();
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out, "#include <stdbool.h>");
    let _ = writeln!(out, "#include <stdlib.h>");
    let _ = writeln!(out, "#include <math.h>");
    let _ = writeln!(out);

    // window struct typedefs for every (rank, type) used
    let mut win_types: HashSet<(usize, DataType)> = HashSet::new();
    for p in &order {
        scan_window_types(p, &mut win_types)?;
    }
    let mut wt: Vec<(usize, DataType)> = win_types.into_iter().collect();
    wt.sort_by_key(|(r, t)| (*r, format!("{t}")));
    for (rank, ty) in wt {
        let cty = c_type(ty)?;
        let _ = writeln!(out, "struct exo_win_{rank}{ty} {{");
        let _ = writeln!(out, "    {cty} *data;");
        let _ = writeln!(out, "    int_fast32_t strides[{}];", rank.max(1));
        let _ = writeln!(out, "}};");
    }
    let _ = writeln!(out);

    // configuration structs (materialized ones only)
    for cfg in &ctx.configs {
        if !cfg.materialize {
            continue;
        }
        let _ = writeln!(out, "struct {}_t {{", cfg.name);
        for f in &cfg.fields {
            let _ = writeln!(out, "    int_fast32_t {};", f.name);
        }
        let _ = writeln!(out, "}};");
        let _ = writeln!(out, "static struct {}_t {};", cfg.name, cfg.name);
        let _ = writeln!(out);
    }

    // memory / instruction globals
    let mut emitted_globals: HashSet<String> = HashSet::new();
    for m in ctx.mems.iter() {
        if let Some(g) = &m.c_global {
            if emitted_globals.insert(g.clone()) {
                let _ = writeln!(out, "{g}");
            }
        }
    }
    for p in &order {
        if let Some(InstrTemplate {
            c_global: Some(g), ..
        }) = &p.instr
        {
            if emitted_globals.insert(g.clone()) {
                let _ = writeln!(out, "{g}");
            }
        }
    }
    let _ = writeln!(out);

    // prototypes then definitions (callees first thanks to post-order)
    for p in &order {
        if p.is_instr() {
            continue;
        }
        let mut gen = ProcGen::new(p, ctx)?;
        let _ = writeln!(out, "{};", gen.signature()?);
    }
    let _ = writeln!(out);
    for p in &order {
        if p.is_instr() {
            continue;
        }
        let mut gen = ProcGen::new(p, ctx)?;
        out.push_str(&gen.emit()?);
        let _ = writeln!(out);
    }
    Ok(out)
}

fn collect_procs(p: &Arc<Proc>, order: &mut Vec<Arc<Proc>>, seen: &mut HashSet<usize>) {
    let key = Arc::as_ptr(p) as usize;
    if !seen.insert(key) {
        return;
    }
    exo_core::visit::visit_stmts(&p.body, &mut |s| {
        if let Stmt::Call { proc, .. } = s {
            collect_procs(proc, order, seen);
        }
    });
    order.push(Arc::clone(p));
}

fn scan_window_types(p: &Proc, out: &mut HashSet<(usize, DataType)>) -> Result<(), CodegenError> {
    for a in &p.args {
        if let ArgType::Tensor {
            ty,
            shape,
            window: true,
            ..
        } = &a.ty
        {
            out.insert((shape.len(), *ty));
        }
    }
    // window definitions and window call arguments need structs too; the
    // rank is the number of interval coordinates
    let mut err = None;
    exo_core::visit::visit_stmts(&p.body, &mut |s| {
        let mut visit_e = |e: &Expr| {
            exo_core::visit::visit_expr(e, &mut |e| {
                if let Expr::Window { coords, .. } = e {
                    let rank = coords.iter().filter(|c| c.is_interval()).count();
                    // precision resolved later; conservatively note f32/f64/i8
                    // via a second pass in ProcGen — here assume the common
                    // case is covered by arg/alloc scans
                    let _ = rank;
                }
            });
        };
        match s {
            Stmt::WindowDef { rhs, .. } => visit_e(rhs),
            Stmt::Call { args, .. } => args.iter().for_each(&mut visit_e),
            _ => {}
        }
        if let Stmt::Alloc { ty, .. } = s {
            if *ty == DataType::R {
                err = Some(CodegenError {
                    message: format!(
                        "procedure {}: allocation still has abstract type R \
                         (apply set_precision before code generation)",
                        p.name
                    ),
                });
            }
        }
    });
    // all window structs that can appear: every tensor's (rank, ty) and
    // every sub-rank (windows reduce rank); register those
    for a in &p.args {
        if let ArgType::Tensor { ty, shape, .. } = &a.ty {
            for r in 0..=shape.len() {
                out.insert((r, *ty));
            }
        }
    }
    exo_core::visit::visit_stmts(&p.body, &mut |s| {
        if let Stmt::Alloc { ty, shape, .. } = s {
            for r in 0..=shape.len() {
                out.insert((r, *ty));
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn c_type(ty: DataType) -> Result<&'static str, CodegenError> {
    ty.c_name().ok_or_else(|| CodegenError {
        message: "abstract type R survives to code generation \
                  (apply set_precision first)"
            .into(),
    })
}

/// What the emitter knows about one data symbol.
#[derive(Clone, Debug)]
enum DataBinding {
    /// Dense tensor: raw pointer, shape expressions known statically.
    Dense {
        ty: DataType,
        shape: Vec<Expr>,
        mem: MemName,
    },
    /// Window struct with runtime strides.
    Window {
        ty: DataType,
        rank: usize,
        mem: MemName,
    },
    /// Scalar passed by pointer.
    Scalar { ty: DataType, mem: MemName },
}

impl DataBinding {
    fn dtype(&self) -> DataType {
        match self {
            DataBinding::Dense { ty, .. }
            | DataBinding::Window { ty, .. }
            | DataBinding::Scalar { ty, .. } => *ty,
        }
    }

    fn mem(&self) -> MemName {
        match self {
            DataBinding::Dense { mem, .. }
            | DataBinding::Window { mem, .. }
            | DataBinding::Scalar { mem, .. } => *mem,
        }
    }
}

struct ProcGen<'a> {
    proc: &'a Proc,
    ctx: &'a CodegenCtx,
    names: HashMap<Sym, String>,
    used_names: HashSet<String>,
    bindings: HashMap<Sym, DataBinding>,
    body: String,
    indent: usize,
}

impl<'a> ProcGen<'a> {
    fn new(proc: &'a Proc, ctx: &'a CodegenCtx) -> Result<ProcGen<'a>, CodegenError> {
        let mut gen = ProcGen {
            proc,
            ctx,
            names: HashMap::new(),
            used_names: HashSet::new(),
            bindings: HashMap::new(),
            body: String::new(),
            indent: 1,
        };
        for a in &proc.args {
            gen.intern(a.name);
            match &a.ty {
                ArgType::Ctrl(_) => {}
                ArgType::Scalar { ty, mem } => {
                    gen.bindings
                        .insert(a.name, DataBinding::Scalar { ty: *ty, mem: *mem });
                }
                ArgType::Tensor {
                    ty,
                    shape,
                    window,
                    mem,
                } => {
                    let b = if *window {
                        DataBinding::Window {
                            ty: *ty,
                            rank: shape.len(),
                            mem: *mem,
                        }
                    } else {
                        DataBinding::Dense {
                            ty: *ty,
                            shape: shape.clone(),
                            mem: *mem,
                        }
                    };
                    gen.bindings.insert(a.name, b);
                }
            }
        }
        Ok(gen)
    }

    fn intern(&mut self, s: Sym) -> String {
        if let Some(n) = self.names.get(&s) {
            return n.clone();
        }
        let base = sanitize(&s.name());
        let name = if self.used_names.contains(&base) {
            format!("{base}_{}", s.id())
        } else {
            base
        };
        self.used_names.insert(name.clone());
        self.names.insert(s, name.clone());
        name
    }

    fn signature(&mut self) -> Result<String, CodegenError> {
        let mut parts = Vec::new();
        for a in &self.proc.args {
            let name = self.intern(a.name);
            let part = match &a.ty {
                ArgType::Ctrl(exo_core::CtrlType::Bool) => format!("bool {name}"),
                ArgType::Ctrl(_) => format!("int_fast32_t {name}"),
                ArgType::Scalar { ty, .. } => format!("{} *{name}", c_type(*ty)?),
                ArgType::Tensor {
                    ty, shape, window, ..
                } => {
                    if *window {
                        format!("struct exo_win_{}{} {name}", shape.len(), ty)
                    } else {
                        format!("{} *{name}", c_type(*ty)?)
                    }
                }
            };
            parts.push(part);
        }
        let args = if parts.is_empty() {
            "void".to_string()
        } else {
            parts.join(", ")
        };
        Ok(format!(
            "void {}({})",
            sanitize(&self.proc.name.name()),
            args
        ))
    }

    fn emit(&mut self) -> Result<String, CodegenError> {
        let sig = self.signature()?;
        let mut out = String::new();
        let _ = writeln!(out, "// {}", one_line_doc(self.proc));
        let _ = writeln!(out, "{sig} {{");
        for pred in &self.proc.preds {
            let _ = writeln!(
                out,
                "    // assert {}",
                exo_core::printer::expr_to_string(pred)
            );
        }
        let body = std::mem::take(&mut self.body);
        let _ = body;
        self.gen_block(&self.proc.body.clone())?;
        out.push_str(&self.body);
        let _ = writeln!(out, "}}");
        Ok(out)
    }

    fn line(&mut self, text: &str) {
        let pad = "    ".repeat(self.indent);
        let _ = writeln!(self.body, "{pad}{text}");
    }

    fn gen_block(&mut self, block: &[Stmt]) -> Result<(), CodegenError> {
        let mut frees: Vec<String> = Vec::new();
        for s in block {
            self.gen_stmt(s, &mut frees)?;
        }
        for f in frees.into_iter().rev() {
            if !f.is_empty() {
                self.line(&f);
            }
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt, frees: &mut Vec<String>) -> Result<(), CodegenError> {
        match s {
            Stmt::Pass => {
                self.line("; // pass");
                Ok(())
            }
            Stmt::Assign { buf, idx, rhs } => {
                let (lhs, ty) = self.lvalue(*buf, idx, "write")?;
                let r = self.data_expr(rhs, ty)?;
                self.line(&format!("{lhs} = {r};"));
                Ok(())
            }
            Stmt::Reduce { buf, idx, rhs } => {
                let (lhs, ty) = self.lvalue(*buf, idx, "reduce")?;
                let r = self.data_expr(rhs, ty)?;
                self.line(&format!("{lhs} += {r};"));
                Ok(())
            }
            Stmt::WriteConfig { config, field, rhs } => {
                let Some(decl) = self.ctx.config(*config) else {
                    return cerr(format!(
                        "write to undeclared configuration {}",
                        config.name()
                    ));
                };
                if !decl.materialize {
                    return cerr(format!(
                        "configuration {} is not materialized; only instructions \
                         may write it",
                        config.name()
                    ));
                }
                let r = self.ctrl_expr(rhs)?;
                self.line(&format!("{}.{} = {r};", config.name(), field.name()));
                Ok(())
            }
            Stmt::If { cond, body, orelse } => {
                let c = self.ctrl_expr(cond)?;
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.gen_block(body)?;
                self.indent -= 1;
                if orelse.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.gen_block(orelse)?;
                    self.indent -= 1;
                    self.line("}");
                }
                Ok(())
            }
            Stmt::For { iter, lo, hi, body } => {
                let v = self.intern(*iter);
                let lo = self.ctrl_expr(lo)?;
                let hi = self.ctrl_expr(hi)?;
                if let Some(reductions) = self.ctx.parallel.get(iter).cloned() {
                    if reductions.is_empty() {
                        self.line("#pragma omp parallel for");
                    } else {
                        let names: Vec<String> =
                            reductions.iter().map(|b| self.intern(*b)).collect();
                        self.line(&format!(
                            "#pragma omp parallel for reduction(+:{})",
                            names.join(", ")
                        ));
                    }
                }
                self.line(&format!(
                    "for (int_fast32_t {v} = {lo}; {v} < {hi}; {v}++) {{"
                ));
                self.indent += 1;
                self.gen_block(body)?;
                self.indent -= 1;
                self.line("}");
                Ok(())
            }
            Stmt::Alloc {
                name,
                ty,
                shape,
                mem,
            } => {
                let cname = self.intern(*name);
                let cty = c_type(*ty)?;
                let size = if shape.is_empty() {
                    "1".to_string()
                } else {
                    shape
                        .iter()
                        .map(|e| self.ctrl_expr(e).map(|s| format!("({s})")))
                        .collect::<Result<Vec<_>, _>>()?
                        .join(" * ")
                };
                let memory = self.ctx.mems.get(*mem).ok_or_else(|| CodegenError {
                    message: format!("unknown memory {mem} for allocation {name}"),
                })?;
                match &memory.alloc {
                    AllocStyle::Malloc => {
                        self.line(&format!(
                            "{cty} *{cname} = ({cty}*) malloc(({size}) * sizeof({cty}));"
                        ));
                        frees.push(format!("free({cname});"));
                    }
                    AllocStyle::Stack => {
                        self.line(&format!("{cty} {cname}[{size}];"));
                        frees.push(String::new());
                    }
                    AllocStyle::Custom { alloc, free } => {
                        let a = alloc
                            .replace("{name}", &cname)
                            .replace("{prim_type}", cty)
                            .replace("{size}", &size);
                        self.line(&a);
                        frees.push(free.replace("{name}", &cname).replace("{prim_type}", cty));
                    }
                }
                self.bindings.insert(
                    *name,
                    DataBinding::Dense {
                        ty: *ty,
                        shape: shape.clone(),
                        mem: *mem,
                    },
                );
                Ok(())
            }
            Stmt::WindowDef { name, rhs } => {
                let Expr::Window { buf, coords } = rhs else {
                    return cerr("window definition without window expression");
                };
                let (expr, ty, rank, mem) = self.window_struct(*buf, coords)?;
                let cname = self.intern(*name);
                self.line(&format!("struct exo_win_{rank}{ty} {cname} = {expr};"));
                self.bindings
                    .insert(*name, DataBinding::Window { ty, rank, mem });
                Ok(())
            }
            Stmt::Call { proc, args } => self.gen_call(proc, args),
        }
    }

    fn gen_call(&mut self, callee: &Proc, args: &[Expr]) -> Result<(), CodegenError> {
        let mut rendered: Vec<(String, String)> = Vec::new(); // (formal, C expr)
        for (formal, actual) in callee.args.iter().zip(args) {
            let code = match &formal.ty {
                ArgType::Ctrl(_) => self.ctrl_expr(actual)?,
                ArgType::Scalar { ty, .. } => self.scalar_arg(actual, *ty)?,
                ArgType::Tensor {
                    ty, shape, window, ..
                } => self.tensor_arg(actual, *ty, shape.len(), *window)?,
            };
            rendered.push((formal.name.name(), code));
        }
        match &callee.instr {
            Some(t) => {
                // expand the template: {arg} holes; {arg_data} renders the
                // data pointer of a window/tensor argument
                let mut text = t.c_instr.clone();
                for (formal, code) in &rendered {
                    text = text.replace(&format!("{{{formal}_data}}"), &format!("{code}.data"));
                    text = text.replace(&format!("{{{formal}}}"), code);
                }
                for line in text.lines() {
                    self.line(line);
                }
                Ok(())
            }
            None => {
                let args: Vec<String> = rendered.into_iter().map(|(_, c)| c).collect();
                self.line(&format!(
                    "{}({});",
                    sanitize(&callee.name.name()),
                    args.join(", ")
                ));
                Ok(())
            }
        }
    }

    fn scalar_arg(&mut self, e: &Expr, _ty: DataType) -> Result<String, CodegenError> {
        match e {
            Expr::Read { buf, idx } => {
                let binding = self.binding(*buf)?.clone();
                match binding {
                    DataBinding::Scalar { .. } if idx.is_empty() => Ok(self.intern(*buf)),
                    _ => {
                        let (lv, _) = self.lvalue(*buf, idx, "pass")?;
                        Ok(format!("&{lv}"))
                    }
                }
            }
            _ => cerr("scalar argument must be an lvalue"),
        }
    }

    fn tensor_arg(
        &mut self,
        e: &Expr,
        _ty: DataType,
        rank: usize,
        window: bool,
    ) -> Result<String, CodegenError> {
        match e {
            Expr::Read { buf, idx } if idx.is_empty() => {
                let binding = self.binding(*buf)?.clone();
                let name = self.intern(*buf);
                match (&binding, window) {
                    (DataBinding::Dense { .. }, false) => Ok(name),
                    (DataBinding::Dense { ty, shape, .. }, true) => {
                        // wrap a dense buffer in a window struct
                        let strides = self.dense_strides(shape)?;
                        Ok(format!(
                            "(struct exo_win_{rank}{ty}){{ {name}, {{ {} }} }}",
                            strides.join(", ")
                        ))
                    }
                    (
                        DataBinding::Window {
                            ty: wty,
                            rank: wrank,
                            ..
                        },
                        true,
                    ) if *wrank == rank => {
                        let _ = wty;
                        Ok(name)
                    }
                    _ => cerr("tensor argument shape mismatch at code generation"),
                }
            }
            Expr::Window { buf, coords } => {
                let (expr, _, wrank, _) = self.window_struct(*buf, coords)?;
                if wrank != rank {
                    return cerr("window argument rank mismatch at code generation");
                }
                if !window {
                    return cerr(
                        "window expression passed to a dense tensor parameter; \
                         declare the parameter as a window ([R][…])",
                    );
                }
                Ok(expr)
            }
            _ => cerr("tensor argument must be a buffer or window expression"),
        }
    }

    /// Builds a window-struct expression from a windowing of `buf`.
    fn window_struct(
        &mut self,
        buf: Sym,
        coords: &[WAccess],
    ) -> Result<(String, DataType, usize, MemName), CodegenError> {
        let binding = self.binding(buf)?.clone();
        let name = self.intern(buf);
        let ty = binding.dtype();
        let mem = binding.mem();
        let rank = coords.iter().filter(|c| c.is_interval()).count();
        let (base_strides, base_ptr): (Vec<String>, String) = match &binding {
            DataBinding::Dense { shape, .. } => {
                if coords.len() != shape.len() {
                    return cerr(format!("window arity mismatch over {name}"));
                }
                (self.dense_strides(shape)?, name.clone())
            }
            DataBinding::Window { rank: wrank, .. } => {
                if coords.len() != *wrank {
                    return cerr(format!("window arity mismatch over {name}"));
                }
                (
                    (0..*wrank)
                        .map(|d| format!("{name}.strides[{d}]"))
                        .collect(),
                    format!("{name}.data"),
                )
            }
            DataBinding::Scalar { .. } => return cerr(format!("cannot window the scalar {name}")),
        };
        // offset = Σ lo_d · stride_d ; kept strides = intervals
        let mut offset_terms = Vec::new();
        let mut kept = Vec::new();
        for (d, c) in coords.iter().enumerate() {
            match c {
                WAccess::Point(p) => {
                    let pe = self.ctrl_expr(p)?;
                    offset_terms.push(format!("({pe}) * ({})", base_strides[d]));
                }
                WAccess::Interval(lo, _hi) => {
                    let le = self.ctrl_expr(lo)?;
                    offset_terms.push(format!("({le}) * ({})", base_strides[d]));
                    kept.push(base_strides[d].clone());
                }
            }
        }
        let offset = if offset_terms.is_empty() {
            "0".to_string()
        } else {
            offset_terms.join(" + ")
        };
        let strides = if kept.is_empty() {
            vec!["1".to_string()]
        } else {
            kept
        };
        let expr = format!(
            "(struct exo_win_{rank}{ty}){{ &{base_ptr}[{offset}], {{ {} }} }}",
            strides.join(", ")
        );
        Ok((expr, ty, rank, mem))
    }

    fn dense_strides(&mut self, shape: &[Expr]) -> Result<Vec<String>, CodegenError> {
        // row-major: stride_d = Π_{d' > d} shape_{d'}
        let mut out = Vec::with_capacity(shape.len());
        for d in 0..shape.len() {
            if d + 1 == shape.len() {
                out.push("1".to_string());
            } else {
                let terms: Vec<String> = shape[d + 1..]
                    .iter()
                    .map(|e| self.ctrl_expr(e).map(|s| format!("({s})")))
                    .collect::<Result<_, _>>()?;
                out.push(terms.join(" * "));
            }
        }
        Ok(out)
    }

    fn binding(&self, buf: Sym) -> Result<&DataBinding, CodegenError> {
        self.bindings.get(&buf).ok_or_else(|| CodegenError {
            message: format!("unknown data symbol {buf} at code generation"),
        })
    }

    /// Renders an lvalue for a buffer access and enforces the
    /// addressability backend check.
    fn lvalue(
        &mut self,
        buf: Sym,
        idx: &[Expr],
        what: &str,
    ) -> Result<(String, DataType), CodegenError> {
        let binding = self.binding(buf)?.clone();
        let mem = binding.mem();
        if let Some(m) = self.ctx.mems.get(mem) {
            if !m.addressable {
                return cerr(format!(
                    "cannot {what} {} directly: memory {mem} is not addressable \
                     (use a custom instruction)",
                    buf.name()
                ));
            }
        } else {
            return cerr(format!("unknown memory {mem}"));
        }
        let name = self.intern(buf);
        let ty = binding.dtype();
        let code = match &binding {
            DataBinding::Scalar { .. } => {
                if !idx.is_empty() {
                    return cerr(format!("indexing the scalar {name}"));
                }
                format!("*{name}")
            }
            DataBinding::Dense { shape, .. } => {
                if idx.is_empty() && shape.is_empty() {
                    format!("{name}[0]")
                } else {
                    if idx.len() != shape.len() {
                        return cerr(format!("access arity mismatch on {name}"));
                    }
                    let strides = self.dense_strides(shape)?;
                    let terms: Vec<String> = idx
                        .iter()
                        .zip(&strides)
                        .map(|(e, st)| {
                            self.ctrl_expr(e).map(|s| {
                                if st == "1" {
                                    format!("({s})")
                                } else {
                                    format!("({s}) * ({st})")
                                }
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    format!("{name}[{}]", terms.join(" + "))
                }
            }
            DataBinding::Window { rank, .. } => {
                if idx.len() != *rank {
                    return cerr(format!("access arity mismatch on window {name}"));
                }
                if idx.is_empty() {
                    format!("{name}.data[0]")
                } else {
                    let terms: Vec<String> = idx
                        .iter()
                        .enumerate()
                        .map(|(d, e)| {
                            self.ctrl_expr(e)
                                .map(|s| format!("({s}) * {name}.strides[{d}]"))
                        })
                        .collect::<Result<_, _>>()?;
                    format!("{name}.data[{}]", terms.join(" + "))
                }
            }
        };
        Ok((code, ty))
    }

    /// Renders a data expression, checking precision consistency against
    /// the expected type (paper §3.1.1: casts are inserted just before
    /// writes; mixed-precision arithmetic is rejected).
    fn data_expr(&mut self, e: &Expr, expect: DataType) -> Result<String, CodegenError> {
        let ty = self.infer_data_type(e)?;
        let code = self.data_expr_raw(e)?;
        if let Some(t) = ty {
            if t != expect {
                // cast just before write/reduce
                return Ok(format!("({}) ({code})", c_type(expect)?));
            }
        }
        Ok(code)
    }

    fn infer_data_type(&self, e: &Expr) -> Result<Option<DataType>, CodegenError> {
        match e {
            Expr::Read { buf, .. } => {
                let t = self.binding(*buf)?.dtype();
                if t == DataType::R {
                    return cerr(format!(
                        "{} still has abstract type R at code generation",
                        buf.name()
                    ));
                }
                Ok(Some(t))
            }
            Expr::Lit(_) => Ok(None), // literals adapt
            Expr::BinOp(_, a, b) => {
                let ta = self.infer_data_type(a)?;
                let tb = self.infer_data_type(b)?;
                match (ta, tb) {
                    (Some(x), Some(y)) if x != y => cerr(format!(
                        "mixed-precision arithmetic ({x} vs {y}); insert a staging \
                         buffer with set_precision"
                    )),
                    (Some(x), _) | (_, Some(x)) => Ok(Some(x)),
                    _ => Ok(None),
                }
            }
            Expr::Neg(a) => self.infer_data_type(a),
            Expr::BuiltIn { args, .. } => {
                let mut t = None;
                for a in args {
                    if let Some(x) = self.infer_data_type(a)? {
                        if let Some(y) = t {
                            if x != y {
                                return cerr("mixed-precision builtin arguments");
                            }
                        }
                        t = Some(x);
                    }
                }
                Ok(t)
            }
            _ => Ok(None),
        }
    }

    fn data_expr_raw(&mut self, e: &Expr) -> Result<String, CodegenError> {
        match e {
            Expr::Lit(Lit::Float(v)) => Ok(format!("{v:?}")),
            Expr::Lit(Lit::Int(v)) => Ok(format!("{v}.0")),
            Expr::Read { buf, idx } => {
                let (code, _) = self.lvalue(*buf, idx, "read")?;
                Ok(code)
            }
            Expr::BinOp(op, a, b) => {
                let x = self.data_expr_raw(a)?;
                let y = self.data_expr_raw(b)?;
                let c_op = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    _ => return cerr(format!("operator {op} on data values")),
                };
                Ok(format!("({x} {c_op} {y})"))
            }
            Expr::Neg(a) => Ok(format!("(-{})", self.data_expr_raw(a)?)),
            Expr::BuiltIn { func, args } => {
                let xs: Vec<String> = args
                    .iter()
                    .map(|a| self.data_expr_raw(a))
                    .collect::<Result<_, _>>()?;
                let name = func.name();
                Ok(match name.as_str() {
                    "relu" => format!("fmax(0.0, {})", xs[0]),
                    "max" => format!("fmax({}, {})", xs[0], xs[1]),
                    "min" => format!("fmin({}, {})", xs[0], xs[1]),
                    "abs" => format!("fabs({})", xs[0]),
                    _ => format!("{name}({})", xs.join(", ")),
                })
            }
            _ => cerr("control expression in data position"),
        }
    }

    fn ctrl_expr(&mut self, e: &Expr) -> Result<String, CodegenError> {
        match e {
            Expr::Var(x) => Ok(self.intern(*x)),
            Expr::Lit(Lit::Int(v)) => Ok(format!("{v}")),
            Expr::Lit(Lit::Bool(v)) => Ok(format!("{v}")),
            Expr::Lit(Lit::Float(_)) => cerr("float literal in control position"),
            Expr::BinOp(op, a, b) => {
                let x = self.ctrl_expr(a)?;
                let y = self.ctrl_expr(b)?;
                let c_op = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Eq => "==",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                };
                Ok(format!("({x} {c_op} {y})"))
            }
            Expr::Neg(a) => Ok(format!("(-{})", self.ctrl_expr(a)?)),
            Expr::Stride { buf, dim } => {
                let binding = self.binding(*buf)?.clone();
                let name = self.intern(*buf);
                match binding {
                    DataBinding::Dense { shape, .. } => {
                        let strides = self.dense_strides(&shape)?;
                        strides.get(*dim).cloned().ok_or_else(|| CodegenError {
                            message: format!("stride dimension {dim} out of range"),
                        })
                    }
                    DataBinding::Window { .. } => Ok(format!("{name}.strides[{dim}]")),
                    DataBinding::Scalar { .. } => cerr("stride of a scalar"),
                }
            }
            Expr::ReadConfig { config, field } => {
                let Some(decl) = self.ctx.config(*config) else {
                    return cerr(format!("read of undeclared configuration {config}"));
                };
                if !decl.materialize {
                    return cerr(format!(
                        "configuration {config} is not materialized; reads are \
                         only allowed inside instruction semantics"
                    ));
                }
                Ok(format!("{}.{}", config.name(), field.name()))
            }
            _ => cerr("data expression in control position"),
        }
    }
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn one_line_doc(p: &Proc) -> String {
    format!(
        "{}: generated by exo-rs from @proc {}",
        sanitize(&p.name.name()),
        p.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::{read, ProcBuilder};

    fn gemm() -> Arc<Proc> {
        let mut b = ProcBuilder::new("gemm");
        let n = b.size("n");
        let a = b.tensor("A", DataType::F32, vec![Expr::var(n), Expr::var(n)]);
        let bb = b.tensor("B", DataType::F32, vec![Expr::var(n), Expr::var(n)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::var(n), Expr::var(n)]);
        let i = b.begin_for("i", Expr::int(0), Expr::var(n));
        let j = b.begin_for("j", Expr::int(0), Expr::var(n));
        let k = b.begin_for("k", Expr::int(0), Expr::var(n));
        b.reduce(
            c,
            vec![Expr::var(i), Expr::var(j)],
            read(a, vec![Expr::var(i), Expr::var(k)])
                .mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
        );
        b.end_for().end_for().end_for();
        b.finish()
    }

    #[test]
    fn gemm_compiles_to_c() {
        let ctx = CodegenCtx::new();
        let c = compile_c(&[gemm()], &ctx).unwrap();
        assert!(
            c.contains("void gemm(int_fast32_t n, float *A, float *B, float *C)"),
            "{c}"
        );
        assert!(c.contains("C[(i) * ((n)) + (j)] += (A["), "{c}");
        assert!(c.contains("for (int_fast32_t i = 0; i < n; i++)"), "{c}");
    }

    #[test]
    fn abstract_r_rejected() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::R, vec![Expr::int(4)]);
        b.assign(a, vec![Expr::int(0)], Expr::float(0.0));
        let ctx = CodegenCtx::new();
        let e = compile_c(&[b.finish()], &ctx).unwrap_err();
        assert!(e.message.contains("abstract type R"), "{e}");
    }

    #[test]
    fn non_addressable_memory_rejected() {
        use crate::mem::{AllocStyle, Memory};
        let spad = MemName(Sym::new("SPAD2"));
        let mut b = ProcBuilder::new("p");
        let a = b.tensor_in("A", DataType::F32, vec![Expr::int(4)], spad);
        b.assign(a, vec![Expr::int(0)], Expr::float(0.0));
        let mut ctx = CodegenCtx::new();
        ctx.mems.register(Memory {
            name: spad,
            alloc: AllocStyle::Malloc,
            addressable: false,
            c_global: None,
        });
        let e = compile_c(&[b.finish()], &ctx).unwrap_err();
        assert!(e.message.contains("not addressable"), "{e}");
    }

    #[test]
    fn instr_template_expansion() {
        let mut ib = ProcBuilder::new("hw_ld");
        let n = ib.size("n");
        let src = ib.window_arg("src", DataType::F32, vec![Expr::var(n)], MemName::dram());
        let dst = ib.window_arg("dst", DataType::F32, vec![Expr::var(n)], MemName::dram());
        ib.instr("hw_ld({dst}.data, {src}.data, {n});");
        let i = ib.begin_for("i", Expr::int(0), Expr::var(n));
        ib.assign(dst, vec![Expr::var(i)], read(src, vec![Expr::var(i)]));
        ib.end_for();
        let hw_ld = ib.finish();

        let mut b = ProcBuilder::new("main");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let c = b.tensor("C", DataType::F32, vec![Expr::int(8)]);
        b.call(
            &hw_ld,
            vec![
                Expr::int(8),
                Expr::Window {
                    buf: a,
                    coords: vec![WAccess::Interval(Expr::int(0), Expr::int(8))],
                },
                Expr::Window {
                    buf: c,
                    coords: vec![WAccess::Interval(Expr::int(0), Expr::int(8))],
                },
            ],
        );
        let ctx = CodegenCtx::new();
        let code = compile_c(&[b.finish()], &ctx).unwrap();
        // the template expands with window-struct arguments
        assert!(code.contains("hw_ld((struct exo_win_1f32)"), "{code}");
        // the instr's own body is not emitted as a function
        assert!(!code.contains("void hw_ld"), "{code}");
    }

    #[test]
    fn config_struct_emitted() {
        let cfg = ConfigDecl::new(
            "ConfigLoad",
            vec![("src_stride", exo_core::CtrlType::Stride)],
        );
        let cname = cfg.name;
        let fname = cfg.fields[0].name;
        let mut b = ProcBuilder::new("p");
        b.write_config(cname, fname, Expr::int(64));
        let mut ctx = CodegenCtx::new();
        ctx.configs.push(cfg);
        let code = compile_c(&[b.finish()], &ctx).unwrap();
        assert!(code.contains("struct ConfigLoad_t {"), "{code}");
        assert!(code.contains("ConfigLoad.src_stride = 64;"), "{code}");
    }

    #[test]
    fn window_def_and_access() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
        let w = b.window(
            "w",
            a,
            vec![
                WAccess::Interval(Expr::int(2), Expr::int(6)),
                WAccess::Point(Expr::int(3)),
            ],
        );
        b.assign(w, vec![Expr::int(0)], Expr::float(1.0));
        let ctx = CodegenCtx::new();
        let code = compile_c(&[b.finish()], &ctx).unwrap();
        assert!(code.contains("struct exo_win_1f32 w ="), "{code}");
        assert!(code.contains("w.data[(0) * w.strides[0]] = 1.0;"), "{code}");
    }

    #[test]
    fn scalars_pass_by_pointer() {
        let mut b = ProcBuilder::new("p");
        let x = b.scalar("x", DataType::F32);
        b.assign(x, vec![], Expr::float(2.5));
        let ctx = CodegenCtx::new();
        let code = compile_c(&[b.finish()], &ctx).unwrap();
        assert!(code.contains("void p(float *x)"), "{code}");
        assert!(code.contains("*x = 2.5;"), "{code}");
    }

    #[test]
    fn mixed_precision_rejected() {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(2)]);
        let c = b.tensor("C", DataType::I8, vec![Expr::int(2)]);
        let d = b.tensor("D", DataType::F32, vec![Expr::int(2)]);
        b.assign(
            d,
            vec![Expr::int(0)],
            read(a, vec![Expr::int(0)]).mul(read(c, vec![Expr::int(0)])),
        );
        let ctx = CodegenCtx::new();
        let e = compile_c(&[b.finish()], &ctx).unwrap_err();
        assert!(e.message.contains("mixed-precision"), "{e}");
    }

    #[test]
    fn store_casts_inserted() {
        // storing an f32 expression into an i8 buffer inserts a cast
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(2)]);
        let c = b.tensor("C", DataType::I8, vec![Expr::int(2)]);
        b.assign(c, vec![Expr::int(0)], read(a, vec![Expr::int(0)]));
        let ctx = CodegenCtx::new();
        let code = compile_c(&[b.finish()], &ctx).unwrap();
        assert!(code.contains("(int8_t) ("), "{code}");
    }
}
