//! End-to-end validation of the C backend: generated code is compiled
//! with the system C compiler, executed, and its output compared against
//! the reference interpreter.

use std::io::Write as _;
use std::process::Command;
use std::sync::Arc;

use exo_codegen::{compile_c, CodegenCtx};
use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc};
use exo_core::types::DataType;
use exo_interp::{ArgVal, Machine};

fn gemm(_n: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("gemm");
    let n = b.size("n");
    let ne = Expr::var(n);
    let a = b.tensor("A", DataType::F32, vec![ne.clone(), ne.clone()]);
    let bb = b.tensor("B", DataType::F32, vec![ne.clone(), ne.clone()]);
    let c = b.tensor("C", DataType::F32, vec![ne.clone(), ne.clone()]);
    let i = b.begin_for("i", Expr::int(0), ne.clone());
    let j = b.begin_for("j", Expr::int(0), ne.clone());
    let k = b.begin_for("k", Expr::int(0), ne);
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(k)]).mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

fn have_cc() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

/// Compiles `code` + a main() harness, runs it, and returns the printed
/// floats.
fn compile_and_run(code: &str, harness: &str) -> Vec<f64> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("exo_cg_test_{}_{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("t.c");
    let bin = dir.join("t.bin");
    let mut f = std::fs::File::create(&src).unwrap();
    writeln!(f, "{code}").unwrap();
    writeln!(f, "#include <stdio.h>").unwrap();
    writeln!(f, "{harness}").unwrap();
    drop(f);
    let out = Command::new("cc")
        .arg("-O1")
        .arg("-o")
        .arg(&bin)
        .arg(&src)
        .arg("-lm")
        .output()
        .expect("cc failed to start");
    assert!(
        out.status.success(),
        "cc failed:\n{}\nsource:\n{code}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&bin).output().expect("binary failed to start");
    assert!(run.status.success(), "binary crashed");
    String::from_utf8_lossy(&run.stdout)
        .split_whitespace()
        .map(|t| t.parse::<f64>().expect("float output"))
        .collect()
}

#[test]
fn generated_gemm_matches_interpreter() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let n = 6usize;
    let proc = gemm(n as i64);
    let ctx = CodegenCtx::new();
    let code = compile_c(&[Arc::clone(&proc)], &ctx).unwrap();

    // interpreter result
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
    let bv: Vec<f64> = (0..n * n).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
    let mut m = Machine::new();
    let ida = m.alloc_extern("A", DataType::F32, &[n, n], &a);
    let idb = m.alloc_extern("B", DataType::F32, &[n, n], &bv);
    let idc = m.alloc_extern("C", DataType::F32, &[n, n], &vec![0.0; n * n]);
    m.run(
        &proc,
        &[
            ArgVal::Int(n as i64),
            ArgVal::Tensor(ida),
            ArgVal::Tensor(idb),
            ArgVal::Tensor(idc),
        ],
    )
    .unwrap();
    let want = m.buffer_values(idc).unwrap();

    // compiled result
    let harness = format!(
        r#"
int main(void) {{
    float A[{nn}], B[{nn}], C[{nn}];
    for (int i = 0; i < {nn}; i++) {{
        A[i] = (float)((i * 7) % 5) - 2.0f;
        B[i] = (float)((i * 3) % 7) - 3.0f;
        C[i] = 0.0f;
    }}
    gemm({n}, A, B, C);
    for (int i = 0; i < {nn}; i++) printf("%.1f ", C[i]);
    printf("\n");
    return 0;
}}
"#,
        nn = n * n,
        n = n
    );
    let got = compile_and_run(&code, &harness);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-3, "mismatch: {g} vs {w}");
    }
}

#[test]
fn generated_windows_and_calls_compile() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // a callee taking a window, called on a sub-tile
    let mut cb = ProcBuilder::new("fill2");
    let n = cb.size("n");
    let dst = cb.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n)],
        exo_core::MemName::dram(),
    );
    let i = cb.begin_for("i", Expr::int(0), Expr::var(n));
    cb.assign(dst, vec![Expr::var(i)], Expr::float(3.0));
    cb.end_for();
    let fill2 = cb.finish();

    let mut b = ProcBuilder::new("main_proc");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    b.call(
        &fill2,
        vec![
            Expr::int(4),
            Expr::Window {
                buf: a,
                coords: vec![exo_core::WAccess::Interval(Expr::int(2), Expr::int(6))],
            },
        ],
    );
    let p = b.finish();
    let ctx = CodegenCtx::new();
    let code = compile_c(&[p], &ctx).unwrap();
    let harness = r#"
int main(void) {
    float A[8] = {0};
    main_proc(A);
    for (int i = 0; i < 8; i++) printf("%.1f ", A[i]);
    printf("\n");
    return 0;
}
"#;
    let got = compile_and_run(&code, harness);
    assert_eq!(got, vec![0.0, 0.0, 3.0, 3.0, 3.0, 3.0, 0.0, 0.0]);
}

#[test]
fn alloc_and_free_are_balanced() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // staging buffer allocated inside a loop: malloc/free per entry
    let mut b = ProcBuilder::new("staged");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    let t = b.alloc("t", DataType::F32, vec![], exo_core::MemName::dram());
    b.assign(t, vec![], read(a, vec![Expr::var(i)]));
    b.assign(a, vec![Expr::var(i)], read(t, vec![]).add(Expr::float(1.0)));
    b.end_for();
    let p = b.finish();
    let ctx = CodegenCtx::new();
    let code = compile_c(&[p], &ctx).unwrap();
    assert_eq!(
        code.matches("malloc").count(),
        code.matches("free(").count()
    );
    let harness = r#"
int main(void) {
    float A[4] = {1, 2, 3, 4};
    staged(A);
    for (int i = 0; i < 4; i++) printf("%.1f ", A[i]);
    printf("\n");
    return 0;
}
"#;
    let got = compile_and_run(&code, harness);
    assert_eq!(got, vec![2.0, 3.0, 4.0, 5.0]);
}
