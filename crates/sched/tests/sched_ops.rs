//! End-to-end tests of the scheduling operators, using the reference
//! interpreter as an equivalence oracle: every accepted rewrite must
//! leave the procedure's observable behavior unchanged on random inputs.

use std::sync::Arc;

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc, Stmt};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;
use exo_interp::{ArgVal, Machine};
use exo_sched::Procedure;
use rand::{Rng, SeedableRng};

/// Runs `proc` on the given inputs and returns the final contents of the
/// output buffer (the last tensor argument).
fn run_on(proc: &Proc, inputs: &[Vec<f64>], shapes: &[Vec<usize>]) -> Vec<f64> {
    let mut m = Machine::new();
    let ids: Vec<_> = inputs
        .iter()
        .zip(shapes)
        .enumerate()
        .map(|(k, (data, shape))| m.alloc_extern(&format!("buf{k}"), DataType::F32, shape, data))
        .collect();
    let args: Vec<ArgVal> = ids.iter().map(|&id| ArgVal::Tensor(id)).collect();
    m.run(proc, &args).expect("interpretation failed");
    m.buffer_values(*ids.last().expect("at least one buffer"))
        .expect("output uninitialized")
}

/// Asserts two schedules of the same signature agree on random inputs.
fn assert_equiv(p: &Procedure, q: &Procedure, shapes: &[Vec<usize>]) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
    for trial in 0..3 {
        let inputs: Vec<Vec<f64>> = shapes
            .iter()
            .map(|s| {
                (0..s.iter().product::<usize>().max(1))
                    .map(|_| rng.gen_range(-4.0..4.0f64).round())
                    .collect()
            })
            .collect();
        let a = run_on(p.proc(), &inputs, shapes);
        let b = run_on(q.proc(), &inputs, shapes);
        assert_eq!(a, b, "schedules diverge on trial {trial}");
    }
}

/// The 16×16×16 GEMM used throughout (small enough for fast oracles).
fn gemm(n: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("gemm");
    let ne = Expr::int(n);
    let a = b.tensor("A", DataType::F32, vec![ne.clone(), ne.clone()]);
    let bb = b.tensor("B", DataType::F32, vec![ne.clone(), ne.clone()]);
    let c = b.tensor("C", DataType::F32, vec![ne.clone(), ne.clone()]);
    let i = b.begin_for("i", Expr::int(0), ne.clone());
    let j = b.begin_for("j", Expr::int(0), ne.clone());
    let k = b.begin_for("k", Expr::int(0), ne);
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(k)]).mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

fn gemm_shapes(n: usize) -> Vec<Vec<usize>> {
    vec![vec![n, n], vec![n, n], vec![n, n]]
}

#[test]
fn split_divisible_preserves_semantics() {
    let p = Procedure::new(gemm(8));
    let q = p.split("for i in _: _", 4, "io", "ii").unwrap();
    assert_eq!(q.directives(), 1);
    assert!(q.show().contains("for io in seq(0, 2)"), "{}", q.show());
    assert_equiv(&p, &q, &gemm_shapes(8));
}

#[test]
fn split_rejects_nondivisible() {
    let p = Procedure::new(gemm(9));
    let e = p.split("for i in _: _", 4, "io", "ii").unwrap_err();
    assert!(e.message.contains("divisible"), "{e}");
}

#[test]
fn split_guard_handles_tails() {
    let p = Procedure::new(gemm(9));
    let q = p.split_guard("for i in _: _", 4, "io", "ii").unwrap();
    assert!(q.show().contains("if"), "{}", q.show());
    assert_equiv(&p, &q, &gemm_shapes(9));
}

#[test]
fn reorder_independent_loops() {
    let p = Procedure::new(gemm(6));
    let q = p.reorder("for i in _: _", "j").unwrap();
    assert_equiv(&p, &q, &gemm_shapes(6));
    // j is now outermost
    assert!(
        q.show().trim_start().lines().any(|l| l.contains("for j")),
        "{}",
        q.show()
    );
}

#[test]
fn reorder_rejects_carried_dependence() {
    // for i: for j: A[j] = A[i] + 1 has a real dependence
    let mut b = ProcBuilder::new("dep");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(4)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    let j = b.begin_for("j", Expr::int(0), Expr::int(4));
    b.assign(
        a,
        vec![Expr::var(j)],
        read(a, vec![Expr::var(i)]).add(Expr::float(1.0)),
    );
    b.end_for().end_for();
    let p = Procedure::new(b.finish());
    assert!(p.reorder("for i in _: _", "j").is_err());
}

#[test]
fn full_tiling_pipeline() {
    // the §2.1 example: tile all three gemm loops to 4×4×4
    let p = Procedure::new(gemm(8));
    let q = p
        .split("for i in _: _", 4, "io", "ii")
        .unwrap()
        .split("for j in _: _", 4, "jo", "ji")
        .unwrap()
        .split("for k in _: _", 4, "ko", "ki")
        .unwrap()
        .reorder("for ii in _: _", "jo")
        .unwrap()
        .reorder("for ji in _: _", "ko")
        .unwrap()
        .reorder("for ii in _: _", "ko")
        .unwrap();
    assert_eq!(q.directives(), 6);
    assert_equiv(&p, &q, &gemm_shapes(8));
}

#[test]
fn unroll_small_loop() {
    let p = Procedure::new(gemm(4));
    let q = p
        .split("for k in _: _", 2, "ko", "ki")
        .unwrap()
        .unroll("for ki in _: _")
        .unwrap();
    assert!(!q.show().contains("for ki"), "{}", q.show());
    assert_equiv(&p, &q, &gemm_shapes(4));
}

#[test]
fn fission_and_fuse_roundtrip() {
    // for i: { A2[i] = A[i]; C[i] = A2[i] * 2 } — fissionable
    let mut b = ProcBuilder::new("p");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    let a2 = b.tensor("A2", DataType::F32, vec![Expr::int(8)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    b.assign(a2, vec![Expr::var(i)], read(a, vec![Expr::var(i)]));
    b.assign(
        c,
        vec![Expr::var(i)],
        read(a2, vec![Expr::var(i)]).mul(Expr::float(2.0)),
    );
    b.end_for();
    let p = Procedure::new(b.finish());
    let shapes = vec![vec![8], vec![8], vec![8]];

    let fissioned = p.fission_after("A2[_] = _").unwrap();
    assert_equiv(&p, &fissioned, &shapes);
    let refused = fissioned.show();
    assert_eq!(refused.matches("for ").count(), 2, "{refused}");

    let fused = fissioned.fuse_loop("for i in _: _").unwrap();
    assert_equiv(&p, &fused, &shapes);
}

#[test]
fn fission_rejects_backward_dependence() {
    // anti-dependences are preserved by fission: C[i] = A[i+1]; A[i] = 0
    // moves the writes later, which is legal
    let mut b = ProcBuilder::new("p");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(9)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    b.assign(
        c,
        vec![Expr::var(i)],
        read(a, vec![Expr::var(i).add(Expr::int(1))]),
    );
    b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
    b.end_for();
    let p = Procedure::new(b.finish());
    assert!(p.fission_after("C[_] = _").is_ok());

    // flow dependence across iterations is NOT: C[i] = A[i]; A[i+1] = 0
    // (iteration x reads what iteration x−1 wrote)
    let mut b2 = ProcBuilder::new("p2");
    let a2 = b2.tensor("A", DataType::F32, vec![Expr::int(9)]);
    let c2 = b2.tensor("C", DataType::F32, vec![Expr::int(8)]);
    let i2 = b2.begin_for("i", Expr::int(0), Expr::int(8));
    b2.assign(c2, vec![Expr::var(i2)], read(a2, vec![Expr::var(i2)]));
    b2.assign(a2, vec![Expr::var(i2).add(Expr::int(1))], Expr::float(0.0));
    b2.end_for();
    let p2 = Procedure::new(b2.finish());
    assert!(p2.fission_after("C[_] = _").is_err());
}

#[test]
fn partition_loop_splits_range() {
    let p = Procedure::new(gemm(8));
    let q = p.partition_loop("for i in _: _", 3).unwrap();
    assert_equiv(&p, &q, &gemm_shapes(8));
    let e = p.partition_loop("for i in _: _", 9).unwrap_err();
    assert!(e.message.contains("refuted"), "{e}");
}

#[test]
fn lift_alloc_and_set_memory() {
    // for i: { t : R[4]; t[...] = ...; C[i] = t[0] }
    let mut b = ProcBuilder::new("p");
    let c = b.tensor("C", DataType::F32, vec![Expr::int(4)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    let t = b.alloc("t", DataType::F32, vec![Expr::int(4)], MemName::dram());
    b.assign(t, vec![Expr::int(0)], Expr::float(1.0));
    b.assign(c, vec![Expr::var(i)], read(t, vec![Expr::int(0)]));
    b.end_for();
    let p = Procedure::new(b.finish());
    let q = p.lift_alloc("t : _").unwrap();
    // the alloc is now top-level (before the loop)
    assert!(matches!(q.body()[0], Stmt::Alloc { .. }), "{}", q.show());
    assert_equiv(&p, &q, &[vec![4]]);

    let scratch = MemName(Sym::new("SCRATCH"));
    let r = q.set_memory("t : _", scratch).unwrap();
    assert!(r.show().contains("@ SCRATCH"), "{}", r.show());

    let s = r.set_precision("t : _", DataType::F64).unwrap();
    assert!(s.show().contains("f64[4]"), "{}", s.show());
}

#[test]
fn bind_expr_hoists_read() {
    let p = Procedure::new(gemm(4));
    // bind A[i,k] in the innermost statement
    let q = p.bind_expr("C[_,_] += _", "A[_]", "a_val").unwrap();
    assert!(q.show().contains("a_val"), "{}", q.show());
    assert_equiv(&p, &q, &gemm_shapes(4));
}

#[test]
fn stage_mem_tiles_accumulator() {
    // tile gemm 8×8×8 by 4, then stage the C tile like §2.2's `res`
    let p = Procedure::new(gemm(8));
    let tiled = p
        .split("for i in _: _", 4, "io", "ii")
        .unwrap()
        .split("for j in _: _", 4, "jo", "ji")
        .unwrap()
        .reorder("for ii in _: _", "jo")
        .unwrap();
    // now: io / jo / ii / ji / k ; stage C[4io:4io+4, 4jo:4jo+4] around
    // the ii loop
    let io = Expr::var(find_iter(&tiled, "io"));
    let jo = Expr::var(find_iter(&tiled, "jo"));
    let staged = tiled
        .stage_mem(
            "for ii in _: _",
            "C",
            &[
                (
                    io.clone().mul(Expr::int(4)),
                    io.mul(Expr::int(4)).add(Expr::int(4)),
                ),
                (
                    jo.clone().mul(Expr::int(4)),
                    jo.mul(Expr::int(4)).add(Expr::int(4)),
                ),
            ],
            "res",
            MemName(Sym::new("ACCUM")),
        )
        .unwrap();
    assert!(
        staged.show().contains("res : f32[4, 4] @ ACCUM"),
        "{}",
        staged.show()
    );
    assert_equiv(&p, &staged, &gemm_shapes(8));
}

#[test]
fn stage_mem_rejects_undersized_window() {
    let p = Procedure::new(gemm(8));
    let io = Expr::var(find_iter(&p, "i"));
    let _ = io;
    // stage C[0:2, 0:2] around the whole i loop — window too small
    let e = p
        .stage_mem(
            "for i in _: _",
            "C",
            &[(Expr::int(0), Expr::int(2)), (Expr::int(0), Expr::int(2))],
            "res",
            MemName::dram(),
        )
        .unwrap_err();
    assert!(e.message.contains("memory-safe"), "{e}");
}

#[test]
fn inline_expands_call() {
    // callee: copy(n, src, dst); caller calls it; inline
    let mut cb = ProcBuilder::new("copy");
    let n = cb.size("n");
    let src = cb.tensor("src", DataType::F32, vec![Expr::var(n)]);
    let dst = cb.tensor("dst", DataType::F32, vec![Expr::var(n)]);
    let i = cb.begin_for("i", Expr::int(0), Expr::var(n));
    cb.assign(dst, vec![Expr::var(i)], read(src, vec![Expr::var(i)]));
    cb.end_for();
    let copy = cb.finish();

    let mut b = ProcBuilder::new("main");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(8)]);
    b.call(&copy, vec![Expr::int(8), read(a, vec![]), read(c, vec![])]);
    let p = Procedure::new(b.finish());
    let q = p.inline("copy(_)").unwrap();
    assert!(!q.show().contains("copy("), "{}", q.show());
    assert_equiv(&p, &q, &[vec![8], vec![8]]);
}

#[test]
fn reorder_stmts_commuting() {
    // A[0] = 1; B[0] = 2 commute
    let mut b = ProcBuilder::new("p");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(2)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(2)]);
    b.assign(a, vec![Expr::int(0)], Expr::float(1.0));
    b.assign(c, vec![Expr::int(0)], Expr::float(2.0));
    let p = Procedure::new(b.finish());
    let q = p.reorder_stmts("A[_] = _").unwrap();
    assert!(matches!(&q.body()[0], Stmt::Assign { buf, .. } if buf.name() == "C"));

    // A[0] = 1; C[0] = A[0] do not commute
    let mut b2 = ProcBuilder::new("p2");
    let a2 = b2.tensor("A", DataType::F32, vec![Expr::int(2)]);
    let c2 = b2.tensor("C", DataType::F32, vec![Expr::int(2)]);
    b2.assign(a2, vec![Expr::int(0)], Expr::float(1.0));
    b2.assign(c2, vec![Expr::int(0)], read(a2, vec![Expr::int(0)]));
    let p2 = Procedure::new(b2.finish());
    assert!(p2.reorder_stmts("A[_] = _").is_err());
}

#[test]
fn add_guard_requires_provable_condition() {
    let p = Procedure::new(gemm(4));
    let i = find_iter(&p, "i");
    // i < 4 is provable inside the loop
    let q = p
        .add_guard("C[_,_] += _", Expr::var(i).lt(Expr::int(4)))
        .unwrap();
    assert!(q.show().contains("if i < 4:"), "{}", q.show());
    assert_equiv(&p, &q, &gemm_shapes(4));
    // i < 3 is not
    assert!(p
        .add_guard("C[_,_] += _", Expr::var(i).lt(Expr::int(3)))
        .is_err());
}

#[test]
fn lift_if_hoists_invariant_guard() {
    // for i: if n > 2: A[i] = 0
    let mut b = ProcBuilder::new("p");
    let n = b.size("n");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    b.begin_if(Expr::var(n).gt(Expr::int(2)));
    b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
    b.end_if();
    b.end_for();
    let p = Procedure::new(b.finish());
    let q = p.lift_if("if _: _").unwrap();
    assert!(matches!(&q.body()[0], Stmt::If { .. }), "{}", q.show());
}

/// Finds the (current) symbol of a loop iterator by name.
fn find_iter(p: &Procedure, name: &str) -> Sym {
    let mut found = None;
    exo_core::visit::visit_stmts(p.body(), &mut |s| {
        if let Stmt::For { iter, .. } = s {
            if iter.name() == name && found.is_none() {
                found = Some(*iter);
            }
        }
    });
    found.unwrap_or_else(|| panic!("no loop named {name}"))
}
