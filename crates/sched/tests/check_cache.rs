//! Cache-correctness suite for the memoized checking engine: every
//! scheduling operator must reach the same verdict — accepted with the
//! same output, or rejected with the same message — whether the
//! canonical-formula verdict cache is on or off (`EXO_CHECK_CACHE=0`
//! parity), and cached verdicts must never leak across semantically
//! different obligations (invalidation).

use std::sync::{Arc, Mutex};

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc, Stmt};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;
use exo_sched::{Position, Procedure, SchedError, SchedState, SharedCheckCtx, StateRef};

fn state_with_cache(enabled: bool) -> StateRef {
    Arc::new(Mutex::new(SchedState::with_check(
        SharedCheckCtx::with_cache(enabled),
    )))
}

/// The canonical small GEMM (same shape as the sched_ops suite).
fn gemm(n: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("gemm");
    let ne = Expr::int(n);
    let a = b.tensor("A", DataType::F32, vec![ne.clone(), ne.clone()]);
    let bb = b.tensor("B", DataType::F32, vec![ne.clone(), ne.clone()]);
    let c = b.tensor("C", DataType::F32, vec![ne.clone(), ne.clone()]);
    let i = b.begin_for("i", Expr::int(0), ne.clone());
    let j = b.begin_for("j", Expr::int(0), ne.clone());
    let k = b.begin_for("k", Expr::int(0), ne);
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(k)]).mul(read(bb, vec![Expr::var(k), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

/// `for i in 0..hi: A[i] = 0.0` with `A : f32[len]`.
fn fill_loop(len: i64, hi: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("fill");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(len)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(hi));
    b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
    b.end_for();
    b.finish()
}

/// Finds the (current) symbol of a loop iterator by name.
fn find_iter(p: &Procedure, name: &str) -> Sym {
    let mut found = None;
    exo_core::visit::visit_stmts(p.body(), &mut |s| {
        if let Stmt::For { iter, .. } = s {
            if iter.name() == name && found.is_none() {
                found = Some(*iter);
            }
        }
    });
    found.unwrap_or_else(|| panic!("no loop iterator named {name}"))
}

type Verdicts = Vec<(&'static str, Result<String, String>)>;

/// Runs one battery of scheduling operators — accepting and rejecting
/// paths both — against `state`, recording each operator's verdict as
/// either the resulting pretty-printed procedure or the error message.
/// Every call builds fresh IR (fresh symbols), so a second battery on
/// the same state exercises the canonicalizer, not pointer equality.
fn run_battery(state: &StateRef) -> Verdicts {
    let mut out: Verdicts = Vec::new();
    let mut push = |name: &'static str, r: Result<Procedure, SchedError>| {
        out.push((name, r.map(|p| p.show()).map_err(|e| e.to_string())));
    };

    // -- loop restructuring on the GEMM nest --
    let g = Procedure::with_state(gemm(8), Arc::clone(state));
    push("split_ok", g.split("for i in _: _", 4, "io", "ii"));
    push("split_reject", g.split("for i in _: _", 3, "io", "ii"));
    push("split_guard", g.split_guard("for i in _: _", 3, "io", "ii"));
    push("partition_ok", g.partition_loop("for i in _: _", 3));
    push("partition_reject", g.partition_loop("for i in _: _", 9));
    let tiled = g
        .split("for i in _: _", 4, "io", "ii")
        .expect("4 divides 8");
    push("reorder_ok", tiled.reorder("for ii in _: _", "j"));
    push("unroll", tiled.unroll("for ii in _: _"));
    let gi = find_iter(&g, "i");
    push(
        "add_guard_ok",
        g.add_guard("C[_,_] += _", Expr::var(gi).lt(Expr::int(8))),
    );
    push(
        "add_guard_reject",
        g.add_guard("C[_,_] += _", Expr::var(gi).lt(Expr::int(7))),
    );
    push(
        "stage_mem_reject",
        g.stage_mem(
            "for i in _: _",
            "C",
            &[(Expr::int(0), Expr::int(2)), (Expr::int(0), Expr::int(2))],
            "res",
            MemName::dram(),
        ),
    );

    // -- fission / fusion --
    let mut b = ProcBuilder::new("fiss");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    let a2 = b.tensor("A2", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(8));
    b.assign(a2, vec![Expr::var(i)], read(a, vec![Expr::var(i)]));
    b.assign(
        a,
        vec![Expr::var(i)],
        read(a2, vec![Expr::var(i)]).mul(Expr::float(2.0)),
    );
    b.end_for();
    let f = Procedure::with_state(b.finish(), Arc::clone(state));
    push("fission_ok", f.fission_after("A2[_] = _"));
    if let Ok(fissioned) = f.fission_after("A2[_] = _") {
        push("fuse_ok", fissioned.fuse_loop("for i in _: _"));
    }
    // flow dependence across iterations: C[i] = A[i]; A[i+1] = 0
    let mut b2 = ProcBuilder::new("fiss2");
    let fa = b2.tensor("A", DataType::F32, vec![Expr::int(9)]);
    let fc = b2.tensor("C", DataType::F32, vec![Expr::int(8)]);
    let fi = b2.begin_for("i", Expr::int(0), Expr::int(8));
    b2.assign(fc, vec![Expr::var(fi)], read(fa, vec![Expr::var(fi)]));
    b2.assign(fa, vec![Expr::var(fi).add(Expr::int(1))], Expr::float(0.0));
    b2.end_for();
    let f2 = Procedure::with_state(b2.finish(), Arc::clone(state));
    push("fission_reject", f2.fission_after("C[_] = _"));

    // -- statement reordering / deletion --
    let mut b3 = ProcBuilder::new("pair");
    let pa = b3.tensor("A", DataType::F32, vec![Expr::int(2)]);
    let pc = b3.tensor("C", DataType::F32, vec![Expr::int(2)]);
    b3.assign(pa, vec![Expr::int(0)], Expr::float(1.0));
    b3.assign(pc, vec![Expr::int(0)], Expr::float(2.0));
    let pr = Procedure::with_state(b3.finish(), Arc::clone(state));
    push("reorder_stmts_ok", pr.reorder_stmts("A[_] = _"));

    let mut b4 = ProcBuilder::new("dep");
    let da = b4.tensor("A", DataType::F32, vec![Expr::int(2)]);
    let dc = b4.tensor("C", DataType::F32, vec![Expr::int(2)]);
    b4.assign(da, vec![Expr::int(0)], Expr::float(1.0));
    b4.assign(dc, vec![Expr::int(0)], read(da, vec![Expr::int(0)]));
    let dp = Procedure::with_state(b4.finish(), Arc::clone(state));
    push("reorder_stmts_reject", dp.reorder_stmts("A[_] = _"));

    let mut b5 = ProcBuilder::new("shadow");
    let sx = b5.tensor("x", DataType::F32, vec![Expr::int(4)]);
    b5.assign(sx, vec![Expr::int(0)], Expr::float(1.0));
    b5.assign(sx, vec![Expr::int(0)], Expr::float(2.0));
    let sp = Procedure::with_state(b5.finish(), Arc::clone(state));
    push("shadow_delete_ok", sp.shadow_delete("x[_] = _"));

    // -- loop removal --
    let mut b6 = ProcBuilder::new("idem");
    let ix = b6.tensor("x", DataType::F32, vec![Expr::int(4)]);
    let _ii = b6.begin_for("i", Expr::int(0), Expr::int(4));
    b6.assign(ix, vec![Expr::int(0)], Expr::float(5.0));
    b6.end_for();
    let ip = Procedure::with_state(b6.finish(), Arc::clone(state));
    push("remove_loop_ok", ip.remove_loop("for i in _: _"));
    push("remove_loop_reject", {
        let mut b7 = ProcBuilder::new("nonidem");
        let nx = b7.tensor("x", DataType::F32, vec![Expr::int(4)]);
        let _ni = b7.begin_for("i", Expr::int(0), Expr::int(4));
        b7.reduce(nx, vec![Expr::int(0)], Expr::float(1.0));
        b7.end_for();
        Procedure::with_state(b7.finish(), Arc::clone(state)).remove_loop("for i in _: _")
    });

    // -- configuration writes (context-extension obligations) --
    let cfg = Sym::new("Cfg");
    let field = Sym::new("s");
    let cp = Procedure::with_state(fill_loop(8, 8), Arc::clone(state));
    push(
        "configwrite_after",
        cp.configwrite_at("for i in _: _", Position::After, cfg, field, Expr::int(64)),
    );
    push(
        "configwrite_before",
        cp.configwrite_at("for i in _: _", Position::Before, cfg, field, Expr::int(64)),
    );

    out
}

/// Tentpole parity check: the full operator battery reaches identical
/// verdicts with the verdict cache enabled and disabled, and running it
/// twice over one shared cache-enabled context (fresh symbols each time)
/// still matches — i.e. cache hits never change an answer.
#[test]
fn verdicts_identical_with_and_without_cache() {
    let cached = state_with_cache(true);
    let uncached = state_with_cache(false);

    let cold = run_battery(&cached);
    let warm = run_battery(&cached);
    let plain = run_battery(&uncached);

    assert_eq!(cold, plain, "cold cached run diverges from uncached run");
    assert_eq!(warm, plain, "warm cached run diverges from uncached run");

    let stats = cached
        .lock()
        .expect("scheduler state poisoned")
        .check
        .stats();
    assert!(stats.queries > 0, "battery issued no SMT queries");
    assert!(
        stats.hits > 0,
        "warm battery rerun produced no cache hits: {stats:?}"
    );
    let plain_stats = uncached
        .lock()
        .expect("scheduler state poisoned")
        .check
        .stats();
    assert_eq!(
        plain_stats.hits, 0,
        "cache-disabled context must never report hits"
    );
}

/// Invalidation: a verdict proved for one loop bound must not be replayed
/// for a different bound. `i < 8` holds inside `for i in 0..8` but not
/// inside `for i in 0..9`; a stale cache entry keyed too loosely would
/// accept the second guard.
#[test]
fn changed_loop_bounds_do_not_reuse_stale_entries() {
    let state = state_with_cache(true);

    let p8 = Procedure::with_state(fill_loop(16, 8), Arc::clone(&state));
    let i8 = find_iter(&p8, "i");
    p8.add_guard("A[_] = _", Expr::var(i8).lt(Expr::int(8)))
        .expect("i < 8 is provable for a 0..8 loop");

    // same context, same cache — structurally near-identical proc, larger
    // bound. The obligation differs only in the constant 9 vs 8.
    let p9 = Procedure::with_state(fill_loop(16, 9), Arc::clone(&state));
    let i9 = find_iter(&p9, "i");
    let err = p9
        .add_guard("A[_] = _", Expr::var(i9).lt(Expr::int(8)))
        .expect_err("i < 8 must be refuted for a 0..9 loop even with a warm cache");
    assert!(err.to_string().contains("add_guard"), "{err}");
}

/// Scheduling the same kernel twice through one shared context hits the
/// cache on the second pass even though the IR symbols are fresh — the
/// canonicalizer maps alpha-variant obligations to one cache line.
#[test]
fn repeat_scheduling_hits_cache_across_fresh_symbols() {
    let state = state_with_cache(true);
    for round in 0..2 {
        let p = Procedure::with_state(gemm(8), Arc::clone(&state));
        p.split("for i in _: _", 4, "io", "ii")
            .and_then(|p| p.reorder("for ii in _: _", "j"))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    let stats = state
        .lock()
        .expect("scheduler state poisoned")
        .check
        .stats();
    assert!(
        stats.hits > 0,
        "second identical schedule produced no cache hits: {stats:?}"
    );
}

/// Dependence-classification queries flow through the shared canonical
/// cache: classifying two alpha-variant builds of one kernel through a
/// single context hits the cache on the second pass, and a subsequent
/// `parallelize` on a third build replays the same obligations for free.
#[test]
fn dependence_queries_hit_canonical_cache_across_runs() {
    let state = state_with_cache(true);
    let check = state
        .lock()
        .expect("scheduler state poisoned")
        .check
        .clone();
    let mut reg = exo_analysis::GlobalReg::new();
    let top = exo_core::path::StmtPath::top(0);

    let v1 = exo_lint::classify_loop(&gemm(8), &top, &check, &mut reg).expect("classify");
    assert_eq!(v1, exo_lint::LoopVerdict::Parallel);
    let cold = check.stats();

    // A fresh build has fresh symbols — only the canonicalizer can match
    // these obligations to the first run's cache lines.
    let v2 = exo_lint::classify_loop(&gemm(8), &top, &check, &mut reg).expect("classify");
    assert_eq!(v1, v2, "cache hits must not change the verdict");
    let warm = check.stats();
    assert!(
        warm.hits > cold.hits,
        "alpha-variant classification produced no cache hits: {warm:?}"
    );

    // `parallelize` re-poses the classifier's queries through the state's
    // own context — sharing that context makes the gate nearly free.
    let p = Procedure::with_state(gemm(8), Arc::clone(&state));
    let before = check.stats();
    p.parallelize("for i in _: _").expect("provably parallel");
    let after = check.stats();
    assert!(
        after.hits > before.hits,
        "parallelize after classification produced no cache hits: {after:?}"
    );
}

/// `EXO_CHECK_CACHE=0` is honored at context construction time.
#[test]
fn env_escape_hatch_disables_cache() {
    std::env::set_var("EXO_CHECK_CACHE", "0");
    let off = SchedState::isolated();
    std::env::remove_var("EXO_CHECK_CACHE");
    let on = SchedState::isolated();
    assert!(!off.check.cache_enabled());
    assert!(on.check.cache_enabled());
}

/// The deprecated `configwrite_after`/`configwrite_before` wrappers are
/// exact aliases of `configwrite_at`.
#[test]
#[allow(deprecated)]
fn deprecated_configwrite_wrappers_match_configwrite_at() {
    let cfg = Sym::new("Cfg");
    let field = Sym::new("s");
    let p = Procedure::new(fill_loop(8, 8));

    let after_new = p
        .configwrite_at("for i in _: _", Position::After, cfg, field, Expr::int(64))
        .unwrap();
    let after_old = p
        .configwrite_after("for i in _: _", cfg, field, Expr::int(64))
        .unwrap();
    assert_eq!(after_new.show(), after_old.show());

    let before_new = p
        .configwrite_at("for i in _: _", Position::Before, cfg, field, Expr::int(64))
        .unwrap();
    let before_old = p
        .configwrite_before("for i in _: _", cfg, field, Expr::int(64))
        .unwrap();
    assert_eq!(before_new.show(), before_old.show());
}
