//! Edge-case tests for scheduling operators not covered by the main
//! suites: deletion ops, scalar expansion, argument-level rewrites, and
//! the error paths that keep unsound rewrites out.

use std::sync::Arc;

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc, Stmt};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;
use exo_interp::{ArgVal, Machine};
use exo_sched::Procedure;

fn run_vec(proc: &Proc, n: usize) -> Vec<f64> {
    let mut m = Machine::new();
    let x = m.alloc_extern(
        "x",
        DataType::F32,
        &[n],
        &(0..n).map(|i| i as f64).collect::<Vec<_>>(),
    );
    m.run(proc, &[ArgVal::Tensor(x)]).unwrap();
    m.buffer_values(x).unwrap()
}

#[test]
fn shadow_delete_removes_dead_store() {
    // x[0] = 1.0; x[0] = 2.0 — the first store is shadowed
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(4)]);
    b.assign(x, vec![Expr::int(0)], Expr::float(1.0));
    b.assign(x, vec![Expr::int(0)], Expr::float(2.0));
    let p = Procedure::new(b.finish());
    let q = p.shadow_delete("x[_] = _").unwrap();
    assert_eq!(q.body().len(), 1);
    assert_eq!(run_vec(p.proc(), 4), run_vec(q.proc(), 4));

    // x[0] = 1.0; x[1] = 2.0 — not shadowed (different locations)
    let mut b2 = ProcBuilder::new("p2");
    let x2 = b2.tensor("x", DataType::F32, vec![Expr::int(4)]);
    b2.assign(x2, vec![Expr::int(0)], Expr::float(1.0));
    b2.assign(x2, vec![Expr::int(1)], Expr::float(2.0));
    let p2 = Procedure::new(b2.finish());
    assert!(p2.shadow_delete("x[_] = _").is_err());
}

#[test]
fn shadow_delete_rejects_read_between() {
    // x[0] = 1.0; x[1] = x[0]; (second statement reads before overwriting
    // a different cell) — deleting the first store would change x[1]
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(4)]);
    b.assign(x, vec![Expr::int(0)], Expr::float(1.0));
    b.assign(
        x,
        vec![Expr::int(0)],
        read(x, vec![Expr::int(0)]).add(Expr::float(1.0)),
    );
    let p = Procedure::new(b.finish());
    assert!(p.shadow_delete("x[_] = _").is_err());
}

#[test]
fn delete_pass_shrinks_body() {
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(4)]);
    b.stmt(Stmt::Pass);
    b.assign(x, vec![Expr::int(0)], Expr::float(1.0));
    let p = Procedure::new(b.finish());
    let q = p.delete_pass().unwrap();
    assert_eq!(q.body().len(), 1);
    // no pass left: a second call errs
    assert!(q.delete_pass().is_err());
}

#[test]
fn expand_scalar_requires_lane_invariance() {
    // expression uses the lane variable: rejected
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(16)]);
    let l = b.begin_for("lane", Expr::int(0), Expr::int(16));
    b.assign(
        x,
        vec![Expr::var(l)],
        read(x, vec![Expr::var(l)]).mul(Expr::float(2.0)),
    );
    b.end_for();
    let p = Procedure::new(b.finish());
    let e = p
        .expand_scalar("for lane in _: _", "x[_]", "lane", "bc", MemName::dram())
        .unwrap_err();
    assert!(e.message.contains("lane"), "{e}");
}

#[test]
fn expand_scalar_correctness() {
    // y[l] += x[3] * 2 for 16 lanes: expand x[3]
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(16)]);
    let l = b.begin_for("lane", Expr::int(0), Expr::int(16));
    b.reduce(
        x,
        vec![Expr::var(l)],
        read(x, vec![Expr::int(3)]).mul(Expr::float(0.0)),
    );
    b.end_for();
    let p = Procedure::new(b.finish());
    let q = p
        .expand_scalar("for lane in _: _", "x[_]", "lane", "bc", MemName::dram())
        .unwrap();
    assert!(q.show().contains("bc"), "{}", q.show());
    assert_eq!(run_vec(p.proc(), 16), run_vec(q.proc(), 16));
}

#[test]
fn set_arg_precision_and_memory() {
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::R, vec![Expr::int(4)]);
    b.assign(x, vec![Expr::int(0)], Expr::float(1.0));
    let p = Procedure::new(b.finish());

    let q = p.set_arg_precision("x", DataType::F64).unwrap();
    assert!(q.show().contains("f64[4]"), "{}", q.show());

    let spad = MemName(Sym::new("SPAD_EDGE"));
    let r = q.set_arg_memory("x", spad).unwrap();
    assert!(r.show().contains("@ SPAD_EDGE"), "{}", r.show());

    assert!(p.set_arg_precision("nope", DataType::F32).is_err());
}

#[test]
fn lift_alloc_rejects_iteration_dependent_shape() {
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(1), Expr::int(4));
    let t = b.alloc("t", DataType::F32, vec![Expr::var(i)], MemName::dram());
    b.assign(t, vec![Expr::int(0)], Expr::float(0.0));
    b.assign(x, vec![Expr::var(i)], read(t, vec![Expr::int(0)]));
    b.end_for();
    let p = Procedure::new(b.finish());
    let e = p.lift_alloc("t : _").unwrap_err();
    assert!(e.message.contains("depends on the loop iterator"), "{e}");
}

#[test]
fn remove_loop_needs_all_three_conditions() {
    // uses the iteration variable → rejected structurally
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    b.assign(x, vec![Expr::var(i)], Expr::float(0.0));
    b.end_for();
    let p = Procedure::new(b.finish());
    let e = p.remove_loop("for i in _: _").unwrap_err();
    assert!(e.message.contains("iteration variable"), "{e}");
}

#[test]
fn inline_handles_window_arguments() {
    let mut cb = ProcBuilder::new("setter");
    let n = cb.size("n");
    let dst = cb.window_arg("dst", DataType::F32, vec![Expr::var(n)], MemName::dram());
    let i = cb.begin_for("i", Expr::int(0), Expr::var(n));
    cb.assign(dst, vec![Expr::var(i)], Expr::float(9.0));
    cb.end_for();
    let setter = cb.finish();

    let mut b = ProcBuilder::new("main");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(8)]);
    b.call(
        &setter,
        vec![
            Expr::int(4),
            Expr::Window {
                buf: x,
                coords: vec![exo_core::WAccess::Interval(Expr::int(2), Expr::int(6))],
            },
        ],
    );
    let p = Procedure::new(b.finish());
    let q = p.inline("setter(_)").unwrap();
    assert!(!q.show().contains("setter("), "{}", q.show());
    let out = run_vec(q.proc(), 8);
    assert_eq!(out, vec![0.0, 1.0, 9.0, 9.0, 9.0, 9.0, 6.0, 7.0]);
}

#[test]
fn directive_counting_is_monotone() {
    let mut b = ProcBuilder::new("p");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(16)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(16));
    b.assign(x, vec![Expr::var(i)], Expr::float(0.0));
    b.end_for();
    let p = Procedure::new(b.finish());
    assert_eq!(p.directives(), 0);
    let q = p.split("for i in _: _", 4, "io", "ii").unwrap();
    assert_eq!(q.directives(), 1);
    let r = q.simplify();
    assert_eq!(r.directives(), 2);
    // original untouched
    assert_eq!(p.directives(), 0);
}

#[test]
fn replace_multi_statement_block() {
    // an @instr whose body is two statements: zero then accumulate
    let mut ib = ProcBuilder::new("zero_and_add");
    let dst = ib.window_arg("dst", DataType::F32, vec![Expr::int(4)], MemName::dram());
    let src = ib.window_arg("src", DataType::F32, vec![Expr::int(4)], MemName::dram());
    ib.instr("zero_add({dst}.data, {src}.data);");
    let i = ib.begin_for("i", Expr::int(0), Expr::int(4));
    ib.assign(dst, vec![Expr::var(i)], Expr::float(0.0));
    ib.end_for();
    let j = ib.begin_for("j", Expr::int(0), Expr::int(4));
    ib.reduce(dst, vec![Expr::var(j)], read(src, vec![Expr::var(j)]));
    ib.end_for();
    let instr = ib.finish();

    let mut b = ProcBuilder::new("main");
    let x = b.tensor("x", DataType::F32, vec![Expr::int(8)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    b.assign(x, vec![Expr::var(i)], Expr::float(0.0));
    b.end_for();
    let j = b.begin_for("j", Expr::int(0), Expr::int(4));
    b.reduce(
        x,
        vec![Expr::var(j)],
        read(x, vec![Expr::var(j).add(Expr::int(4))]),
    );
    b.end_for();
    let p = Procedure::new(b.finish());
    let q = p.replace("for i in _: _", &Arc::clone(&instr)).unwrap();
    assert!(q.show().contains("zero_and_add("), "{}", q.show());
    assert_eq!(q.body().len(), 1, "{}", q.show());
    assert_eq!(run_vec(p.proc(), 8), run_vec(q.proc(), 8));
}
