//! Reproduces the worked example of paper §2: scheduling a GEMM onto a
//! Gemmini-like accelerator ISA — staging into explicitly managed
//! memories, mapping loops to `@instr` procedures with `replace()`, and
//! hoisting configuration writes out of loops.

use std::sync::Arc;

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc};
use exo_core::types::{DataType, MemName};
use exo_core::Sym;
use exo_interp::{ArgVal, Machine};
use exo_sched::{Position, Procedure};
use rand::{Rng, SeedableRng};

fn scratchpad() -> MemName {
    MemName(Sym::new("SCRATCHPAD"))
}

/// `ld_data` from §2.3: a scratchpad load instruction whose C template
/// fuses the stride configuration.
fn ld_data_instr() -> Arc<Proc> {
    let mut b = ProcBuilder::new("ld_data");
    let n = b.size("n");
    let m = b.size("m");
    let src = b.window_arg(
        "src",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        MemName::dram(),
    );
    let dst = b.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        scratchpad(),
    );
    b.assert_pred(Expr::var(m).le(Expr::int(16)));
    b.instr("config_ld({src}.strides[0]);\nmvin({src}.data, {dst}.data, {n}, {m});");
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    let j = b.begin_for("j", Expr::int(0), Expr::var(m));
    b.assign(
        dst,
        vec![Expr::var(i), Expr::var(j)],
        read(src, vec![Expr::var(i), Expr::var(j)]),
    );
    b.end_for().end_for();
    b.finish()
}

/// `config_ld_def` and `real_ld_data` from §2.4: the configuration write
/// is split out, and the load asserts the configured stride.
fn config_parts() -> (Sym, Sym, Arc<Proc>, Arc<Proc>) {
    let cfg = Sym::new("ConfigLoad");
    let field = Sym::new("src_stride");

    let mut cb = ProcBuilder::new("config_ld_def");
    let s = cb.ctrl("s", exo_core::CtrlType::Stride);
    cb.instr("config_ld({s});");
    cb.write_config(cfg, field, Expr::var(s));
    let config_ld_def = cb.finish();

    let mut rb = ProcBuilder::new("real_ld_data");
    let n = rb.size("n");
    let m = rb.size("m");
    let src = rb.window_arg(
        "src",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        MemName::dram(),
    );
    let dst = rb.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        scratchpad(),
    );
    rb.assert_pred(Expr::var(m).le(Expr::int(16)));
    rb.assert_pred(Expr::ReadConfig { config: cfg, field }.eq(Expr::Stride { buf: src, dim: 0 }));
    rb.instr("mvin({src}.data, {dst}.data, {n}, {m});");
    let i = rb.begin_for("i", Expr::int(0), Expr::var(n));
    let j = rb.begin_for("j", Expr::int(0), Expr::var(m));
    rb.assign(
        dst,
        vec![Expr::var(i), Expr::var(j)],
        read(src, vec![Expr::var(i), Expr::var(j)]),
    );
    rb.end_for().end_for();
    let real_ld = rb.finish();

    (cfg, field, config_ld_def, real_ld)
}

/// An 8×8 copy kernel standing in for the gemm load phase.
fn copy_kernel() -> Arc<Proc> {
    let mut b = ProcBuilder::new("load_tile");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8), Expr::int(8)]);
    let spad = b.tensor_in(
        "spad",
        DataType::F32,
        vec![Expr::int(8), Expr::int(8)],
        scratchpad(),
    );
    let io = b.begin_for("io", Expr::int(0), Expr::int(2));
    let i = b.begin_for("i", Expr::int(0), Expr::int(4));
    let j = b.begin_for("j", Expr::int(0), Expr::int(8));
    b.assign(
        spad,
        vec![
            Expr::var(io).mul(Expr::int(4)).add(Expr::var(i)),
            Expr::var(j),
        ],
        read(
            a,
            vec![
                Expr::var(io).mul(Expr::int(4)).add(Expr::var(i)),
                Expr::var(j),
            ],
        ),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

fn run_copy(proc: &Proc) -> (Vec<f64>, Vec<exo_interp::HwOp>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let a: Vec<f64> = (0..64)
        .map(|_| rng.gen_range(-4.0..4.0f64).round())
        .collect();
    let mut m = Machine::new();
    let ida = m.alloc_extern("A", DataType::F32, &[8, 8], &a);
    let ids = m.alloc_extern("spad", DataType::F32, &[8, 8], &vec![0.0; 64]);
    m.run(proc, &[ArgVal::Tensor(ida), ArgVal::Tensor(ids)])
        .expect("run failed");
    (m.buffer_values(ids).unwrap(), m.take_trace())
}

#[test]
fn replace_selects_fused_instruction() {
    let ld = ld_data_instr();
    let p = Procedure::new(copy_kernel());
    // map the i–j loop nest to the ld_data instruction
    let q = p.replace("for i in _: _", &ld).unwrap();
    assert!(q.show().contains("ld_data("), "{}", q.show());

    // semantics preserved, and the instruction trace appears
    let (base, trace0) = run_copy(p.proc());
    let (opt, trace1) = run_copy(q.proc());
    assert_eq!(base, opt);
    assert!(trace0.is_empty());
    assert_eq!(trace1.len(), 2, "one ld_data per io iteration");
    assert_eq!(trace1[0].instr, "ld_data");
    assert_eq!(trace1[0].int_arg("n"), Some(4));
    assert_eq!(trace1[0].int_arg("m"), Some(8));
    // the src windows of the two calls start at rows 0 and 4
    let t0 = trace1[0].tensor_arg("src").unwrap();
    let t1 = trace1[1].tensor_arg("src").unwrap();
    assert_eq!(t0.base_offset, 0);
    assert_eq!(t1.base_offset, 32);
    assert_eq!(t0.shape, vec![4, 8]);
}

#[test]
fn replace_rejects_wrong_shape() {
    // an instruction with m ≤ 4 cannot absorb an m = 8 loop
    let mut b = ProcBuilder::new("ld_small");
    let n = b.size("n");
    let m = b.size("m");
    let src = b.window_arg(
        "src",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        MemName::dram(),
    );
    let dst = b.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        scratchpad(),
    );
    b.assert_pred(Expr::var(m).le(Expr::int(4)));
    b.instr("mvin_small(…);");
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    let j = b.begin_for("j", Expr::int(0), Expr::var(m));
    b.assign(
        dst,
        vec![Expr::var(i), Expr::var(j)],
        read(src, vec![Expr::var(i), Expr::var(j)]),
    );
    b.end_for().end_for();
    let ld_small = b.finish();

    let p = Procedure::new(copy_kernel());
    let e = p.replace("for i in _: _", &ld_small).unwrap_err();
    assert!(e.message.contains("replace"), "{e}");
}

#[test]
fn config_write_workflow_of_section_2_4() {
    let (cfg, field, config_ld_def, real_ld) = config_parts();

    // Start from ld_data's semantic body as an application procedure:
    //   for i: for j: dst[i,j] = src[i,j]
    let mut b = ProcBuilder::new("ld_app");
    let n = b.size("n");
    let m = b.size("m");
    let src = b.window_arg(
        "src",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        MemName::dram(),
    );
    let dst = b.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        scratchpad(),
    );
    b.assert_pred(Expr::var(m).le(Expr::int(16)));
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    let j = b.begin_for("j", Expr::int(0), Expr::var(m));
    b.assign(
        dst,
        vec![Expr::var(i), Expr::var(j)],
        read(src, vec![Expr::var(i), Expr::var(j)]),
    );
    b.end_for().end_for();
    let p = Procedure::new(b.finish());

    // configwrite_before: materialize ConfigLoad.src_stride = stride(src, 0)
    let with_cfg = p
        .configwrite_at(
            "for i in _: _",
            Position::Before,
            cfg,
            field,
            Expr::Stride { buf: src, dim: 0 },
        )
        .unwrap();
    assert!(with_cfg.polluted().contains(&(cfg, field)));
    assert!(
        with_cfg
            .show()
            .contains("ConfigLoad.src_stride = stride(src, 0)"),
        "{}",
        with_cfg.show()
    );

    // replace the loop with real_ld_data — the assert about the config
    // state is discharged by the dataflow value of the preceding write —
    // then the write itself with a call to config_ld_def
    let with_call = with_cfg.replace("for i in _: _", &real_ld).unwrap();
    let done = with_call
        .replace("ConfigLoad.src_stride = _", &config_ld_def)
        .unwrap();
    let shown = done.show();
    assert!(shown.contains("real_ld_data("), "{shown}");
    assert!(shown.contains("config_ld_def(stride(src, 0))"), "{shown}");

    // the scheduled procedure behaves identically
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let data: Vec<f64> = (0..32)
        .map(|_| rng.gen_range(-4.0..4.0f64).round())
        .collect();
    for proc in [p.proc(), done.proc()] {
        let mut m = Machine::new();
        let ids = m.alloc_extern("src", DataType::F32, &[4, 8], &data);
        let idd = m.alloc_extern("dst", DataType::F32, &[4, 8], &vec![0.0; 32]);
        m.run(
            proc,
            &[
                ArgVal::Int(4),
                ArgVal::Int(8),
                ArgVal::Tensor(ids),
                ArgVal::Tensor(idd),
            ],
        )
        .expect("run failed");
        assert_eq!(m.buffer_values(idd).unwrap(), data);
    }
}

#[test]
fn real_ld_precondition_rejected_without_config() {
    // replacing the loop with real_ld_data *without* the configuration
    // write must fail: the callee's precondition about ConfigLoad cannot
    // be discharged
    let (_, _, _, real_ld) = config_parts();
    let mut b = ProcBuilder::new("ld_app2");
    let n = b.size("n");
    let m = b.size("m");
    let src = b.window_arg(
        "src",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        MemName::dram(),
    );
    let dst = b.window_arg(
        "dst",
        DataType::F32,
        vec![Expr::var(n), Expr::var(m)],
        scratchpad(),
    );
    b.assert_pred(Expr::var(m).le(Expr::int(16)));
    let i = b.begin_for("i", Expr::int(0), Expr::var(n));
    let j = b.begin_for("j", Expr::int(0), Expr::var(m));
    b.assign(
        dst,
        vec![Expr::var(i), Expr::var(j)],
        read(src, vec![Expr::var(i), Expr::var(j)]),
    );
    b.end_for().end_for();
    let p = Procedure::new(b.finish());
    assert!(p.replace("for i in _: _", &real_ld).is_err());
}

#[test]
fn hoist_config_out_of_loop() {
    // for ko: { Cfg.s = 64; spad[ko] = A[ko] } — hoist the config write
    // per §2.4: fission the loop after the write, then remove the
    // config-only loop (idempotent body, provably non-empty range)
    let cfg = Sym::new("Cfg");
    let field = Sym::new("s");
    let mut b = ProcBuilder::new("hoistable");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
    let spad = b.tensor_in("spad", DataType::F32, vec![Expr::int(8)], scratchpad());
    let ko = b.begin_for("ko", Expr::int(0), Expr::int(8));
    b.write_config(cfg, field, Expr::int(64));
    b.assign(spad, vec![Expr::var(ko)], read(a, vec![Expr::var(ko)]));
    b.end_for();
    let p = Procedure::new(b.finish());

    let fissioned = p.fission_after("Cfg.s = _").unwrap();
    let hoisted = fissioned.remove_loop("for ko in _: _").unwrap();
    let shown = hoisted.show();
    let cfg_pos = shown.find("Cfg.s = 64").expect("config write survives");
    let loop_pos = shown.find("for ko").expect("work loop survives");
    assert!(cfg_pos < loop_pos, "{shown}");
    // exactly one loop remains
    assert_eq!(shown.matches("for ko").count(), 1, "{shown}");

    // and a redundant second write can be deleted outright
    let redundant = hoisted
        .configwrite_at("Cfg.s = _", Position::After, cfg, field, Expr::int(64))
        .unwrap();
    let cleaned = redundant.delete_config("Cfg.s = _ #1").unwrap();
    assert_eq!(cleaned.show().matches("Cfg.s = 64").count(), 1);
}
