//! Data and memory scheduling operators (paper Fig. 2): `set_memory`,
//! `set_precision`, `lift_alloc`, `bind_expr`, and `stage_mem`.

use std::collections::HashSet;

use exo_core::ir::{ArgType, Expr, Proc, Stmt};
use exo_core::types::{DataType, MemName};
use exo_core::visit::{map_stmt_exprs, visit_expr, visit_stmts};
use exo_core::Sym;

use crate::fold::{fold_block, fold_expr};
use crate::handle::{serr, Procedure, SchedError};
use crate::pattern::Pattern;

impl Procedure {
    /// `set_memory(a, MEM)`: changes the memory annotation of an
    /// allocation (memory annotations are ignored by the analyses, so
    /// this is always equivalence-preserving; legality is enforced by the
    /// backend checks at code-generation time).
    pub fn set_memory(
        &self,
        alloc_pat: impl Into<Pattern>,
        mem: MemName,
    ) -> Result<Procedure, SchedError> {
        let alloc_pat = alloc_pat.into();
        self.instrumented("set_memory", format!("{alloc_pat}, {mem:?}"), || {
            self.set_memory_impl(&alloc_pat, mem)
        })
    }

    fn set_memory_impl(&self, alloc_pat: &Pattern, mem: MemName) -> Result<Procedure, SchedError> {
        let path = self.find(alloc_pat)?;
        let Stmt::Alloc {
            name, ty, shape, ..
        } = self.stmt(&path)?.clone()
        else {
            return serr(format!("set_memory: {alloc_pat:?} is not an allocation"));
        };
        let new = Stmt::Alloc {
            name,
            ty,
            shape,
            mem,
        };
        self.splice(&path, &mut |_| vec![new.clone()])
    }

    /// `set_precision(a, typ)`: refines the precision of an allocation
    /// (e.g. the abstract `R` to `f32`).
    pub fn set_precision(
        &self,
        alloc_pat: impl Into<Pattern>,
        ty: DataType,
    ) -> Result<Procedure, SchedError> {
        let alloc_pat = alloc_pat.into();
        self.instrumented("set_precision", format!("{alloc_pat}, {ty:?}"), || {
            self.set_precision_impl(&alloc_pat, ty)
        })
    }

    fn set_precision_impl(
        &self,
        alloc_pat: &Pattern,
        ty: DataType,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(alloc_pat)?;
        let Stmt::Alloc {
            name, shape, mem, ..
        } = self.stmt(&path)?.clone()
        else {
            return serr(format!("set_precision: {alloc_pat:?} is not an allocation"));
        };
        let new = Stmt::Alloc {
            name,
            ty,
            shape,
            mem,
        };
        self.splice(&path, &mut |_| vec![new.clone()])
    }

    /// `set_arg_precision(name, typ)`: refines the precision of a tensor
    /// or scalar *parameter*.
    pub fn set_arg_precision(&self, arg: &str, ty: DataType) -> Result<Procedure, SchedError> {
        self.instrumented("set_arg_precision", format!("{arg}, {ty:?}"), || {
            self.set_arg_precision_impl(arg, ty)
        })
    }

    fn set_arg_precision_impl(&self, arg: &str, ty: DataType) -> Result<Procedure, SchedError> {
        let mut proc: Proc = (**self.proc()).clone();
        let mut hit = false;
        for a in &mut proc.args {
            if a.name.name() == arg {
                match &mut a.ty {
                    ArgType::Scalar { ty: t, .. } | ArgType::Tensor { ty: t, .. } => {
                        *t = ty;
                        hit = true;
                    }
                    ArgType::Ctrl(_) => {
                        return serr(format!("set_arg_precision: {arg} is a control argument"))
                    }
                }
            }
        }
        if !hit {
            return serr(format!("set_arg_precision: no argument named {arg}"));
        }
        Ok(self.with_proc(proc))
    }

    /// `set_arg_memory(name, MEM)`: changes the memory annotation of a
    /// tensor parameter.
    pub fn set_arg_memory(&self, arg: &str, mem: MemName) -> Result<Procedure, SchedError> {
        self.instrumented("set_arg_memory", format!("{arg}, {mem:?}"), || {
            self.set_arg_memory_impl(arg, mem)
        })
    }

    fn set_arg_memory_impl(&self, arg: &str, mem: MemName) -> Result<Procedure, SchedError> {
        let mut proc: Proc = (**self.proc()).clone();
        let mut hit = false;
        for a in &mut proc.args {
            if a.name.name() == arg {
                match &mut a.ty {
                    ArgType::Scalar { mem: m, .. } | ArgType::Tensor { mem: m, .. } => {
                        *m = mem;
                        hit = true;
                    }
                    ArgType::Ctrl(_) => {
                        return serr(format!("set_arg_memory: {arg} is a control argument"))
                    }
                }
            }
        }
        if !hit {
            return serr(format!("set_arg_memory: no argument named {arg}"));
        }
        Ok(self.with_proc(proc))
    }

    /// `lift_alloc(a)`: hoists an allocation out of its enclosing loop or
    /// conditional. The allocation's shape must not depend on the
    /// enclosing binder. Reusing one buffer across iterations is
    /// equivalent because reads of uninitialized memory are errors
    /// (paper §4.1).
    pub fn lift_alloc(&self, alloc_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let alloc_pat = alloc_pat.into();
        self.instrumented("lift_alloc", alloc_pat.as_str(), || {
            self.lift_alloc_impl(&alloc_pat)
        })
    }

    fn lift_alloc_impl(&self, alloc_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(alloc_pat)?;
        let Stmt::Alloc { shape, .. } = self.stmt(&path)?.clone() else {
            return serr(format!("lift_alloc: {alloc_pat:?} is not an allocation"));
        };
        let Some(parent_path) = path.parent() else {
            return serr("lift_alloc: allocation is already at the top level");
        };
        let parent = self.stmt(&parent_path)?.clone();
        if let Stmt::For { iter, .. } = &parent {
            let mut used = HashSet::new();
            for e in &shape {
                visit_expr(e, &mut |e| {
                    if let Expr::Var(v) = e {
                        used.insert(*v);
                    }
                });
            }
            if used.contains(iter) {
                return serr("lift_alloc: allocation shape depends on the loop iterator");
            }
        }
        let alloc_stmt = self.stmt(&path)?.clone();
        // remove from inner block, re-insert before the parent
        let p = self.splice(&path, &mut |_| vec![])?;
        p.splice(&parent_path, &mut |s| vec![alloc_stmt.clone(), s.clone()])
    }

    /// `bind_expr(s, e, a')`: binds a pure data sub-expression of the
    /// matched statement to a fresh scalar: `a' : R; a' = e; s[e ↦ a']`.
    ///
    /// The expression pattern is either `"buf[_]"` (the first read of
    /// `buf`) or the exact printed form of the expression.
    pub fn bind_expr(
        &self,
        stmt_pat: impl Into<Pattern>,
        expr_pat: &str,
        new_name: &str,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "bind_expr",
            format!("{stmt_pat}, {expr_pat}, {new_name}"),
            || self.bind_expr_impl(&stmt_pat, expr_pat, new_name),
        )
    }

    fn bind_expr_impl(
        &self,
        stmt_pat: &Pattern,
        expr_pat: &str,
        new_name: &str,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let stmt = self.stmt(&path)?.clone();
        let target = find_expr(&stmt, expr_pat).ok_or_else(|| {
            SchedError::new(format!("bind_expr: no sub-expression matches {expr_pat:?}"))
        })?;

        // scope: the expression may not use variables bound inside `stmt`
        let mut inner_bound = HashSet::new();
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| match s {
            Stmt::For { iter, .. } => {
                inner_bound.insert(*iter);
            }
            Stmt::Alloc { name, .. } | Stmt::WindowDef { name, .. } => {
                inner_bound.insert(*name);
            }
            _ => {}
        });
        let mut used = HashSet::new();
        visit_expr(&target, &mut |e| match e {
            Expr::Var(v) => {
                used.insert(*v);
            }
            Expr::Read { buf, .. } => {
                used.insert(*buf);
            }
            _ => {}
        });
        if used.intersection(&inner_bound).next().is_some() {
            return serr(
                "bind_expr: expression uses variables bound inside the statement; \
                 bind at a deeper statement instead",
            );
        }

        let fresh = Sym::new(new_name);
        let dtype = self.infer_dtype(&target);
        let alloc = Stmt::Alloc {
            name: fresh,
            ty: dtype,
            shape: vec![],
            mem: MemName::dram(),
        };
        let bind = Stmt::Assign {
            buf: fresh,
            idx: vec![],
            rhs: target.clone(),
        };
        let replaced = map_stmt_exprs(&stmt, &mut |e| {
            if e == target {
                Expr::Read {
                    buf: fresh,
                    idx: vec![],
                }
            } else {
                e
            }
        });
        self.splice(&path, &mut |_| {
            vec![alloc.clone(), bind.clone(), replaced.clone()]
        })
    }

    /// `expand_scalar(s, e, lane, a', MEM)`: scalar expansion for
    /// vectorization — binds a lane-invariant data expression of the
    /// matched statement to a vector indexed by the `lane` loop:
    ///
    /// ```text
    /// a' : ty[extent(lane)] @ MEM
    /// for l in 0..extent: a'[l] = e
    /// s[ e ↦ a'[lane] ]
    /// ```
    ///
    /// Equivalent because every lane holds the same value; the expansion
    /// loop later unifies with a broadcast instruction.
    pub fn expand_scalar(
        &self,
        stmt_pat: impl Into<Pattern>,
        expr_pat: &str,
        lane_loop: &str,
        new_name: &str,
        mem: MemName,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "expand_scalar",
            format!("{stmt_pat}, {expr_pat}, {lane_loop}, {new_name}"),
            || self.expand_scalar_impl(&stmt_pat, expr_pat, lane_loop, new_name, mem),
        )
    }

    fn expand_scalar_impl(
        &self,
        stmt_pat: &Pattern,
        expr_pat: &str,
        lane_loop: &str,
        new_name: &str,
        mem: MemName,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let stmt = self.stmt(&path)?.clone();
        let target = find_expr(&stmt, expr_pat).ok_or_else(|| {
            SchedError::new(format!(
                "expand_scalar: no sub-expression matches {expr_pat:?}"
            ))
        })?;
        // locate the lane loop inside the statement, with constant extent
        let mut lane: Option<(Sym, i64)> = None;
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| {
            if let Stmt::For { iter, lo, hi, .. } = s {
                if iter.name() == lane_loop && lane.is_none() {
                    if let (Some(0), Some(h)) = (lo.as_int(), hi.as_int()) {
                        lane = Some((*iter, h));
                    }
                }
            }
        });
        let Some((lane_var, lanes)) = lane else {
            return serr(format!(
                "expand_scalar: no zero-based constant loop named {lane_loop} in the statement"
            ));
        };
        // the expression must be lane-invariant and in scope before `s`
        let mut used = HashSet::new();
        visit_expr(&target, &mut |e| match e {
            Expr::Var(v) => {
                used.insert(*v);
            }
            Expr::Read { buf, .. } => {
                used.insert(*buf);
            }
            _ => {}
        });
        if used.contains(&lane_var) {
            return serr("expand_scalar: expression depends on the lane variable");
        }
        let mut inner_bound = HashSet::new();
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| match s {
            Stmt::For { iter, .. } => {
                inner_bound.insert(*iter);
            }
            Stmt::Alloc { name, .. } | Stmt::WindowDef { name, .. } => {
                inner_bound.insert(*name);
            }
            _ => {}
        });
        // variables bound inside the statement but *outside* the lane
        // loop would still be fine if the expansion were placed deeper;
        // keep the simple rule: everything must be in scope at `s`
        if used.intersection(&inner_bound).next().is_some() {
            return serr("expand_scalar: expression uses variables bound inside the statement");
        }

        let fresh = Sym::new(new_name);
        let dtype = self.infer_dtype(&target);
        let l = Sym::new("l");
        let alloc = Stmt::Alloc {
            name: fresh,
            ty: dtype,
            shape: vec![Expr::int(lanes)],
            mem,
        };
        let fill = Stmt::For {
            iter: l,
            lo: Expr::int(0),
            hi: Expr::int(lanes),
            body: vec![Stmt::Assign {
                buf: fresh,
                idx: vec![Expr::var(l)],
                rhs: target.clone(),
            }],
        };
        let replaced = map_stmt_exprs(&stmt, &mut |e| {
            if e == target {
                Expr::Read {
                    buf: fresh,
                    idx: vec![Expr::var(lane_var)],
                }
            } else {
                e
            }
        });
        self.splice(&path, &mut |_| {
            vec![alloc.clone(), fill.clone(), replaced.clone()]
        })
    }

    pub(crate) fn infer_dtype(&self, e: &Expr) -> DataType {
        // precision of a read through a parameter or allocation, else R
        let mut dt = DataType::R;
        if let Expr::Read { buf, .. } = e {
            for a in &self.proc().args {
                if a.name == *buf {
                    if let Some(t) = a.ty.data_type() {
                        dt = t;
                    }
                }
            }
            visit_stmts(self.body(), &mut |s| {
                if let Stmt::Alloc { name, ty, .. } = s {
                    if name == buf {
                        dt = *ty;
                    }
                }
            });
        }
        dt
    }

    /// `stage_mem(s, buf, window, a', MEM)`: stages the rectangular
    /// `window` of `buf` into a new buffer `a'` in `MEM` around the
    /// matched statement:
    ///
    /// ```text
    /// a' : ty[sizes] @ MEM
    /// for …: a'[…] = buf[lo + …]        (if the block reads buf)
    /// s[ buf[e] ↦ a'[e − lo] ]
    /// for …: buf[lo + …] = a'[…]        (if the block writes buf)
    /// ```
    ///
    /// The rewritten accesses are re-verified in-bounds by
    /// [`exo_analysis::check_bounds`]; staging fails if the window does
    /// not cover every access, or if `buf` escapes the block through a
    /// window or call argument.
    pub fn stage_mem(
        &self,
        stmt_pat: impl Into<Pattern>,
        buf_name: &str,
        window: &[(Expr, Expr)],
        new_name: &str,
        mem: MemName,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "stage_mem",
            format!("{stmt_pat}, {buf_name}, {new_name}, {mem:?}"),
            || self.stage_mem_impl(&stmt_pat, buf_name, window, new_name, mem),
        )
    }

    fn stage_mem_impl(
        &self,
        stmt_pat: &Pattern,
        buf_name: &str,
        window: &[(Expr, Expr)],
        new_name: &str,
        mem: MemName,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let stmt = self.stmt(&path)?.clone();
        let buf = self
            .lookup_data_sym(buf_name)
            .ok_or_else(|| SchedError::new(format!("stage_mem: unknown buffer {buf_name}")))?;

        // reject escapes: windows over buf or calls receiving buf
        let mut escapes = false;
        let mut reads = false;
        let mut writes = false;
        fn check_expr(e: &Expr, buf: Sym, escapes: &mut bool, reads: &mut bool) {
            visit_expr(e, &mut |e| match e {
                Expr::Window { buf: b, .. } | Expr::Stride { buf: b, .. } if *b == buf => {
                    *escapes = true;
                }
                Expr::Read { buf: b, idx } if *b == buf => {
                    if idx.is_empty() {
                        *escapes = true; // whole-buffer argument
                    } else {
                        *reads = true;
                    }
                }
                _ => {}
            });
        }
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| {
            let mut ck = |e: &Expr| check_expr(e, buf, &mut escapes, &mut reads);
            match s {
                Stmt::Assign { buf: b, idx, rhs } => {
                    idx.iter().for_each(&mut ck);
                    ck(rhs);
                    if *b == buf {
                        writes = true;
                    }
                }
                Stmt::Reduce { buf: b, idx, rhs } => {
                    idx.iter().for_each(&mut ck);
                    ck(rhs);
                    if *b == buf {
                        reads = true;
                        writes = true;
                    }
                }
                Stmt::WindowDef { rhs, .. } => ck(rhs),
                Stmt::Call { args, .. } => args.iter().for_each(&mut ck),
                Stmt::If { cond, .. } => ck(cond),
                Stmt::For { lo, hi, .. } => {
                    ck(lo);
                    ck(hi);
                }
                _ => {}
            }
        });
        if escapes {
            return serr(format!(
                "stage_mem: {buf_name} escapes the block through a window, stride, or call"
            ));
        }
        if !reads && !writes {
            return serr(format!("stage_mem: the block never accesses {buf_name}"));
        }

        let fresh = Sym::new(new_name);
        let dtype = self.infer_dtype(&Expr::Read {
            buf,
            idx: vec![Expr::int(0)],
        });
        let sizes: Vec<Expr> = window
            .iter()
            .map(|(lo, hi)| fold_expr(&hi.clone().sub(lo.clone())))
            .collect();

        // rewrite accesses: buf[e…] → a'[e − lo …] (reads via expression
        // mapping, stores via a statement walk)
        let rebased = map_stmt_exprs(&stmt, &mut |e| match e {
            Expr::Read { buf: b, idx } if b == buf && !idx.is_empty() => Expr::Read {
                buf: fresh,
                idx: idx
                    .iter()
                    .zip(window)
                    .map(|(i, (lo, _))| fold_expr(&i.clone().sub(lo.clone())))
                    .collect(),
            },
            other => other,
        });
        let rebased = rebase_stores(&rebased, buf, fresh, window);

        // load / store loops (distinct iterator spellings so patterns can
        // address them separately)
        let mk_loops = |load: bool| -> Stmt {
            let prefix = if load { "ld" } else { "st" };
            let iters: Vec<Sym> = (0..window.len())
                .map(|d| Sym::new(format!("{prefix}{d}")))
                .collect();
            let inner_new: Vec<Expr> = iters.iter().map(|&i| Expr::var(i)).collect();
            let inner_buf: Vec<Expr> = iters
                .iter()
                .zip(window)
                .map(|(&i, (lo, _))| fold_expr(&lo.clone().add(Expr::var(i))))
                .collect();
            let mut s = if load {
                Stmt::Assign {
                    buf: fresh,
                    idx: inner_new.clone(),
                    rhs: Expr::Read {
                        buf,
                        idx: inner_buf.clone(),
                    },
                }
            } else {
                Stmt::Assign {
                    buf,
                    idx: inner_buf,
                    rhs: Expr::Read {
                        buf: fresh,
                        idx: inner_new,
                    },
                }
            };
            for (d, &it) in iters.iter().enumerate().rev() {
                s = Stmt::For {
                    iter: it,
                    lo: Expr::int(0),
                    hi: sizes[d].clone(),
                    body: vec![s],
                };
            }
            s
        };

        let mut out = vec![Stmt::Alloc {
            name: fresh,
            ty: dtype,
            shape: sizes.clone(),
            mem,
        }];
        if reads {
            out.push(mk_loops(true));
        }
        out.push(rebased);
        if writes {
            out.push(mk_loops(false));
        }

        let staged = self.splice(&path, &mut |_| out.clone())?;
        let staged = staged.with_body(fold_block(staged.body()));

        // re-verify memory safety of the staged block: only the rewritten
        // subtree (the enclosing scope of the staged statement) is
        // rechecked — everything outside it is untouched by the splice.
        {
            let scope = path
                .parent()
                .unwrap_or_else(|| exo_core::path::StmtPath(Vec::new()));
            let mut st = crate::handle::lock_state(self.state());
            let st = &mut *st;
            if let Err(errs) =
                exo_analysis::check_bounds_at(staged.proc(), &scope, &mut st.reg, &st.check)
            {
                return serr(format!(
                    "stage_mem: staged block is not memory-safe (window too small?): {}",
                    errs[0]
                ));
            }
        }
        Ok(staged)
    }

    /// Looks up the symbol of a data argument or allocation by spelling.
    pub fn lookup_data_sym(&self, name: &str) -> Option<Sym> {
        for a in &self.proc().args {
            if a.name.name() == name && !a.ty.is_ctrl() {
                return Some(a.name);
            }
        }
        let mut found = None;
        visit_stmts(self.body(), &mut |s| {
            if let Stmt::Alloc { name: n, .. } | Stmt::WindowDef { name: n, .. } = s {
                if n.name() == name && found.is_none() {
                    found = Some(*n);
                }
            }
        });
        found
    }
}

fn rebase_stores(s: &Stmt, buf: Sym, fresh: Sym, window: &[(Expr, Expr)]) -> Stmt {
    let rebase_idx = |idx: &[Expr]| -> Vec<Expr> {
        idx.iter()
            .zip(window)
            .map(|(i, (lo, _))| fold_expr(&i.clone().sub(lo.clone())))
            .collect()
    };
    match s {
        Stmt::Assign { buf: b, idx, rhs } if *b == buf => Stmt::Assign {
            buf: fresh,
            idx: rebase_idx(idx),
            rhs: rhs.clone(),
        },
        Stmt::Reduce { buf: b, idx, rhs } if *b == buf => Stmt::Reduce {
            buf: fresh,
            idx: rebase_idx(idx),
            rhs: rhs.clone(),
        },
        Stmt::For { iter, lo, hi, body } => Stmt::For {
            iter: *iter,
            lo: lo.clone(),
            hi: hi.clone(),
            body: body
                .iter()
                .map(|s| rebase_stores(s, buf, fresh, window))
                .collect(),
        },
        Stmt::If { cond, body, orelse } => Stmt::If {
            cond: cond.clone(),
            body: body
                .iter()
                .map(|s| rebase_stores(s, buf, fresh, window))
                .collect(),
            orelse: orelse
                .iter()
                .map(|s| rebase_stores(s, buf, fresh, window))
                .collect(),
        },
        other => other.clone(),
    }
}

/// Finds a data sub-expression of `stmt` matching `pat` (`"buf[_]"` or an
/// exact printed expression).
fn find_expr(stmt: &Stmt, pat: &str) -> Option<Expr> {
    let pat = pat.trim();
    let want_buf: Option<String> = pat
        .strip_suffix("[_]")
        .filter(|b| !b.is_empty())
        .map(|b| b.trim().to_string());
    fn scan(e: &Expr, want_buf: &Option<String>, pat: &str, found: &mut Option<Expr>) {
        visit_expr(e, &mut |e| {
            if found.is_some() {
                return;
            }
            let hit = match (want_buf, e) {
                (Some(b), Expr::Read { buf, idx }) => buf.name() == *b && !idx.is_empty(),
                (None, e) => exo_core::printer::expr_to_string(e) == pat,
                _ => false,
            };
            if hit {
                *found = Some(e.clone());
            }
        });
    }
    let mut found: Option<Expr> = None;
    let mut stack = vec![stmt.clone()];
    while let Some(s) = stack.pop() {
        if found.is_some() {
            break;
        }
        let mut sc = |e: &Expr| scan(e, &want_buf, pat, &mut found);
        match &s {
            Stmt::Assign { rhs, idx, .. } | Stmt::Reduce { rhs, idx, .. } => {
                idx.iter().for_each(&mut sc);
                sc(rhs);
            }
            Stmt::WriteConfig { rhs, .. } => sc(rhs),
            Stmt::If { cond, body, orelse } => {
                sc(cond);
                stack.extend(body.iter().cloned());
                stack.extend(orelse.iter().cloned());
            }
            Stmt::For { lo, hi, body, .. } => {
                sc(lo);
                sc(hi);
                stack.extend(body.iter().cloned());
            }
            Stmt::Call { args, .. } => args.iter().for_each(&mut sc),
            Stmt::WindowDef { rhs, .. } => sc(rhs),
            _ => {}
        }
    }
    found
}
