//! # exo-sched
//!
//! User scheduling via composable rewrites (paper §3.3–3.4, Fig. 2).
//!
//! A [`Procedure`] wraps an IR procedure together with shared scheduling
//! state (the checking context and provenance). Every operator —
//! `split`, `reorder`, `unroll`, `inline`, `replace`, `stage_mem`,
//! `configwrite_at`, … — is an independent rewrite returning a new
//! `Procedure`; correctness of each is checked in isolation against the
//! effect analyses of `exo-analysis`, which is what makes the scheduling
//! language easy to extend.
//!
//! Operators locate code with textual [`Pattern`]s and accept
//! `impl Into<Pattern>`, so plain string literals work:
//! `p.split("for i in _: _", 4, "io", "ii")`. Safety obligations are
//! discharged through the state's [`exo_analysis::SharedCheckCtx`] —
//! by default the process-wide context, so obligations proved while
//! scheduling one kernel are cache hits on the next (disable with
//! `EXO_CHECK_CACHE=0`).
//!
//! Operators that pollute configuration state (e.g.
//! [`Procedure::configwrite_at`]) record the polluted fields in the
//! provenance, and the context-extension rule (§6.2) is used to confirm
//! that the rest of the procedure never observes the difference.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fold;
pub mod handle;
pub mod ops_calls;
pub mod ops_config;
pub mod ops_data;
pub mod ops_loops;
pub mod ops_parallel;
pub mod pattern;
pub mod unify;

pub use exo_analysis::SharedCheckCtx;
pub use exo_lint::LoopVerdict;
pub use handle::{ParallelMark, Procedure, SchedError, SchedState, StateRef};
pub use ops_config::Position;
pub use pattern::{ParsedPattern, Pattern, PatternError, StmtPattern};
