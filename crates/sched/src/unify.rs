//! `replace()` — code replacement by unification modulo linear
//! equalities (paper §3.4).
//!
//! `p.replace(s, foo)` matches the body of `foo` against the designated
//! statements of `p` and, on success, substitutes a call `foo(…)` with
//! inferred arguments. When `foo` is an `@instr` this performs
//! *instruction selection*. The ASTs must match exactly with respect to
//! statements and non-integer expressions; equivalences between integer
//! control expressions are recorded as linear equations over the unknown
//! arguments (sizes and window offsets) and solved by elimination, with
//! residual equations discharged to the SMT solver. Window arguments
//! introduce categorical choices (which buffer dimensions are sliced);
//! these are explored by backtracking.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use exo_analysis::effexpr::{EffExpr, LowerCtx};
use exo_analysis::globals::lift_in_env;
use exo_core::ir::{ArgType, Expr, Proc, Stmt, WAccess};
use exo_core::visit::{visit_expr, visit_stmts};
use exo_core::Sym;
use exo_smt::formula::Formula;
use exo_smt::linear::LinExpr;

use crate::fold::fold_expr;
use crate::handle::{serr, Procedure, SchedError};
use crate::pattern::Pattern;

/// Binding of a callee tensor formal to a caller buffer region.
#[derive(Clone, Debug)]
struct TensorBind {
    caller_buf: Sym,
    caller_rank: usize,
    /// For each callee dimension k, the caller dimension it walks
    /// (strictly increasing).
    dim_map: Vec<usize>,
    /// Unknown offset symbol per *caller* dimension.
    offsets: Vec<Sym>,
}

#[derive(Clone, Default, Debug)]
struct UnifyState {
    /// callee bound symbol → caller bound symbol
    alpha: HashMap<Sym, Sym>,
    /// callee tensor formal → binding
    tensors: HashMap<Sym, TensorBind>,
    /// unknown symbols (control formals and window offsets)
    unknowns: HashSet<Sym>,
    /// linear equations `lhs == rhs` (callee side, caller side)
    equations: Vec<(Expr, Expr)>,
    /// non-integer equivalences to verify (boolean conditions)
    bool_checks: Vec<(Expr, Expr)>,
}

impl Procedure {
    /// Replaces `callee.body.len()` consecutive statements starting at
    /// the match of `stmt_pat` with a call to `callee`, inferring the
    /// arguments by unification.
    pub fn replace(
        &self,
        stmt_pat: impl Into<Pattern>,
        callee: &Arc<Proc>,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "replace",
            format!("{stmt_pat}, {}", callee.name.name()),
            || self.replace_impl(&stmt_pat, callee),
        )
    }

    fn replace_impl(
        &self,
        stmt_pat: &Pattern,
        callee: &Arc<Proc>,
    ) -> Result<Procedure, SchedError> {
        let first = self.find(stmt_pat)?;
        let n = callee.body.len();
        if n == 0 {
            return serr("replace: callee has an empty body");
        }
        // gather the n consecutive sibling statements
        let mut caller_stmts = Vec::with_capacity(n);
        for k in 0..n {
            let Some(p) = first.sibling(k as isize) else {
                return serr("replace: match window fell off the enclosing block");
            };
            caller_stmts.push(
                self.stmt(&p)
                    .map_err(|_| {
                        SchedError::new(format!(
                            "replace: needed {n} consecutive statements, found {k}"
                        ))
                    })?
                    .clone(),
            );
        }

        // variables bound inside the replaced block are out of scope for
        // inferred arguments
        let mut block_bound = HashSet::new();
        visit_stmts(&caller_stmts, &mut |s| match s {
            Stmt::For { iter, .. } => {
                block_bound.insert(*iter);
            }
            Stmt::Alloc { name, .. } | Stmt::WindowDef { name, .. } => {
                block_bound.insert(*name);
            }
            _ => {}
        });

        // set up unknowns
        let mut st = UnifyState::default();
        for arg in &callee.args {
            if arg.ty.is_ctrl() {
                st.unknowns.insert(arg.name);
            }
        }

        let mut solutions: Vec<UnifyState> = Vec::new();
        self.unify_block(callee, &callee.body, &caller_stmts, st, &mut solutions)?;
        let mut last_err = SchedError::new("replace: unification found no match".to_string());
        for cand in solutions {
            match self.finish_replace(callee, cand, &first, n, &block_bound) {
                Ok(p) => return Ok(p),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn unify_block(
        &self,
        callee: &Proc,
        ce: &[Stmt],
        pe: &[Stmt],
        st: UnifyState,
        out: &mut Vec<UnifyState>,
    ) -> Result<(), SchedError> {
        if ce.is_empty() && pe.is_empty() {
            out.push(st);
            return Ok(());
        }
        if ce.is_empty() || pe.is_empty() {
            return Ok(()); // length mismatch: no match on this branch
        }
        let mut partials = Vec::new();
        self.unify_stmt(callee, &ce[0], &pe[0], st, &mut partials)?;
        for p in partials {
            self.unify_block(callee, &ce[1..], &pe[1..], p, out)?;
        }
        Ok(())
    }

    fn unify_stmt(
        &self,
        callee: &Proc,
        ce: &Stmt,
        pe: &Stmt,
        mut st: UnifyState,
        out: &mut Vec<UnifyState>,
    ) -> Result<(), SchedError> {
        match (ce, pe) {
            (Stmt::Pass, Stmt::Pass) => out.push(st),
            (
                Stmt::For {
                    iter: ci,
                    lo: cl,
                    hi: ch,
                    body: cb,
                },
                Stmt::For {
                    iter: pi,
                    lo: pl,
                    hi: ph,
                    body: pb,
                },
            ) => {
                st.alpha.insert(*ci, *pi);
                st.equations.push((cl.clone(), pl.clone()));
                st.equations.push((ch.clone(), ph.clone()));
                self.unify_block(callee, cb, pb, st, out)?;
            }
            (
                Stmt::If {
                    cond: cc,
                    body: cb,
                    orelse: co,
                },
                Stmt::If {
                    cond: pc,
                    body: pb,
                    orelse: po,
                },
            ) => {
                st.bool_checks.push((cc.clone(), pc.clone()));
                let mut mids = Vec::new();
                self.unify_block(callee, cb, pb, st, &mut mids)?;
                for m in mids {
                    self.unify_block(callee, co, po, m, out)?;
                }
            }
            (
                Stmt::Assign {
                    buf: cbuf,
                    idx: cidx,
                    rhs: crhs,
                },
                Stmt::Assign {
                    buf: pbuf,
                    idx: pidx,
                    rhs: prhs,
                },
            )
            | (
                Stmt::Reduce {
                    buf: cbuf,
                    idx: cidx,
                    rhs: crhs,
                },
                Stmt::Reduce {
                    buf: pbuf,
                    idx: pidx,
                    rhs: prhs,
                },
            ) => {
                let mut mids = Vec::new();
                self.unify_access(callee, *cbuf, cidx, *pbuf, pidx, st, &mut mids)?;
                for mut m in mids {
                    let mut inner = Vec::new();
                    self.unify_data(callee, crhs, prhs, std::mem::take(&mut m), &mut inner)?;
                    out.extend(inner);
                }
            }
            (
                Stmt::WriteConfig {
                    config: cc,
                    field: cf,
                    rhs: cr,
                },
                Stmt::WriteConfig {
                    config: pc,
                    field: pf,
                    rhs: pr,
                },
            ) if cc == pc && cf == pf => {
                st.equations.push((cr.clone(), pr.clone()));
                out.push(st);
            }
            (
                Stmt::Alloc {
                    name: cn,
                    ty: cty,
                    shape: cs,
                    mem: cm,
                },
                Stmt::Alloc {
                    name: pn,
                    ty: pty,
                    shape: ps,
                    mem: pm,
                },
            ) if cty == pty && cm == pm && cs.len() == ps.len() => {
                st.alpha.insert(*cn, *pn);
                for (a, b) in cs.iter().zip(ps) {
                    st.equations.push((a.clone(), b.clone()));
                }
                out.push(st);
            }
            (Stmt::Call { .. }, Stmt::Call { .. }) => {
                return serr("replace: nested calls in the callee body are not supported");
            }
            _ => {}
        }
        Ok(())
    }

    /// Unifies a buffer access `cbuf[cidx]` (callee) against
    /// `pbuf[pidx]` (caller).
    #[allow(clippy::too_many_arguments)]
    fn unify_access(
        &self,
        callee: &Proc,
        cbuf: Sym,
        cidx: &[Expr],
        pbuf: Sym,
        pidx: &[Expr],
        mut st: UnifyState,
        out: &mut Vec<UnifyState>,
    ) -> Result<(), SchedError> {
        // locally bound callee buffer: must map to the alpha image
        if let Some(&mapped) = st.alpha.get(&cbuf) {
            if mapped == pbuf && cidx.len() == pidx.len() {
                for (a, b) in cidx.iter().zip(pidx) {
                    st.equations.push((a.clone(), b.clone()));
                }
                out.push(st);
            }
            return Ok(());
        }
        // tensor/scalar formal of the callee
        let Some(formal) = callee.args.iter().find(|a| a.name == cbuf) else {
            return Ok(()); // unknown callee symbol: no match
        };
        let callee_rank = match &formal.ty {
            ArgType::Scalar { .. } => 0,
            ArgType::Tensor { shape, .. } => shape.len(),
            ArgType::Ctrl(_) => return Ok(()),
        };
        if cidx.len() != callee_rank {
            return Ok(());
        }
        let Some(caller_rank) = self.buffer_rank(pbuf) else {
            return Ok(());
        };
        if pidx.len() != caller_rank || caller_rank < callee_rank {
            return Ok(());
        }
        // precisions must agree (windows cannot change element type)
        if let (Some(want), Some(have)) = (formal.ty.data_type(), self.buffer_dtype(pbuf)) {
            if want != have && want != exo_core::DataType::R && have != exo_core::DataType::R {
                return Ok(());
            }
        }
        let existing = st.tensors.get(&cbuf).cloned();
        let choices: Vec<Vec<usize>> = match &existing {
            Some(b) => {
                if b.caller_buf != pbuf || b.caller_rank != caller_rank {
                    return Ok(()); // inconsistent buffer identity
                }
                vec![b.dim_map.clone()]
            }
            None => increasing_injections(callee_rank, caller_rank),
        };
        for dim_map in choices {
            let mut s2 = st.clone();
            let bind = match &existing {
                Some(b) => b.clone(),
                None => {
                    let offsets: Vec<Sym> = (0..caller_rank)
                        .map(|d| {
                            let o = Sym::new(format!("off_{}_{d}", cbuf.name()));
                            s2.unknowns.insert(o);
                            o
                        })
                        .collect();
                    let b = TensorBind {
                        caller_buf: pbuf,
                        caller_rank,
                        dim_map: dim_map.clone(),
                        offsets,
                    };
                    s2.tensors.insert(cbuf, b.clone());
                    b
                }
            };
            // equations per caller dimension
            let mut k_of: HashMap<usize, usize> = HashMap::new();
            for (k, &d) in bind.dim_map.iter().enumerate() {
                k_of.insert(d, k);
            }
            for (d, pd) in pidx.iter().enumerate().take(caller_rank) {
                let lhs = match k_of.get(&d) {
                    Some(&k) => Expr::var(bind.offsets[d]).add(cidx[k].clone()),
                    None => Expr::var(bind.offsets[d]),
                };
                s2.equations.push((lhs, pd.clone()));
            }
            out.push(s2);
        }
        Ok(())
    }

    fn unify_data(
        &self,
        callee: &Proc,
        ce: &Expr,
        pe: &Expr,
        st: UnifyState,
        out: &mut Vec<UnifyState>,
    ) -> Result<(), SchedError> {
        match (ce, pe) {
            (Expr::Lit(a), Expr::Lit(b)) if a == b => {
                out.push(st);
            }
            (Expr::Read { buf: cb, idx: ci }, Expr::Read { buf: pb, idx: pi }) => {
                self.unify_access(callee, *cb, ci, *pb, pi, st, out)?;
            }
            (Expr::BinOp(co, ca, cb), Expr::BinOp(po, pa, pb)) if co == po => {
                let mut mids = Vec::new();
                self.unify_data(callee, ca, pa, st, &mut mids)?;
                for m in mids {
                    self.unify_data(callee, cb, pb, m, out)?;
                }
            }
            (Expr::Neg(ca), Expr::Neg(pa)) => self.unify_data(callee, ca, pa, st, out)?,
            (Expr::BuiltIn { func: cf, args: ca }, Expr::BuiltIn { func: pf, args: pa })
                if cf.name() == pf.name() && ca.len() == pa.len() =>
            {
                let mut states = vec![st];
                for (x, y) in ca.iter().zip(pa) {
                    let mut next = Vec::new();
                    for s in states {
                        self.unify_data(callee, x, y, s, &mut next)?;
                    }
                    states = next;
                }
                out.extend(states);
            }
            _ => {}
        }
        Ok(())
    }

    fn buffer_dtype(&self, buf: Sym) -> Option<exo_core::DataType> {
        for a in &self.proc().args {
            if a.name == buf {
                return a.ty.data_type();
            }
        }
        let mut dt = None;
        visit_stmts(self.body(), &mut |s| {
            if let Stmt::Alloc { name, ty, .. } = s {
                if *name == buf && dt.is_none() {
                    dt = Some(*ty);
                }
            }
        });
        dt
    }

    fn buffer_rank(&self, buf: Sym) -> Option<usize> {
        for a in &self.proc().args {
            if a.name == buf {
                return match &a.ty {
                    ArgType::Scalar { .. } => Some(0),
                    ArgType::Tensor { shape, .. } => Some(shape.len()),
                    ArgType::Ctrl(_) => None,
                };
            }
        }
        let mut rank = None;
        visit_stmts(self.body(), &mut |s| match s {
            Stmt::Alloc { name, shape, .. } if *name == buf => rank = Some(shape.len()),
            Stmt::WindowDef {
                name,
                rhs: Expr::Window { coords, .. },
            } if *name == buf => rank = Some(coords.iter().filter(|c| c.is_interval()).count()),
            _ => {}
        });
        rank
    }

    /// Solves the equations of a candidate match, verifies residuals and
    /// callee preconditions, and builds the call.
    fn finish_replace(
        &self,
        callee: &Arc<Proc>,
        st: UnifyState,
        first: &exo_core::path::StmtPath,
        n: usize,
        block_bound: &HashSet<Sym>,
    ) -> Result<Procedure, SchedError> {
        let site = self.site(first)?;
        let mut lctx = LowerCtx::new();

        // lower both sides of every equation; callee side: alpha-rename
        // bound vars to caller symbols, leave unknowns in place
        let mut lowered: Vec<LinExpr> = Vec::new();
        {
            let mut guard = crate::handle::lock_state(self.state());
            for (cl, pl) in &st.equations {
                let cl_e = lift_in_env(cl, &site.genv, &mut guard.reg).subst(
                    &st.alpha
                        .iter()
                        .map(|(&a, &b)| (a, EffExpr::Var(b)))
                        .collect(),
                );
                let pl_e = lift_in_env(pl, &site.genv, &mut guard.reg);
                let li = lctx.lower_int(&cl_e);
                let ri = lctx.lower_int(&pl_e);
                if li.def != Formula::True || ri.def != Formula::True {
                    // division/unknown in an equation: be conservative
                    return serr("replace: non-affine equation in unification");
                }
                lowered.push(li.val.sub(&ri.val));
            }
        }

        // eliminate unknowns with ±1 coefficients
        let mut solution: HashMap<Sym, LinExpr> = HashMap::new();
        let mut work = lowered;
        loop {
            let mut progress = false;
            let mut rest = Vec::new();
            for eq in std::mem::take(&mut work) {
                // find an unsolved unknown with coefficient ±1
                let target = eq
                    .coeffs
                    .iter()
                    .find(|(v, &c)| st.unknowns.contains(v) && (c == 1 || c == -1))
                    .map(|(&v, &c)| (v, c));
                match target {
                    Some((v, c)) => {
                        // c·v + rest = 0  ⇒  v = -rest / c
                        let mut rest_e = eq.clone();
                        rest_e.coeffs.remove(&v);
                        let val = rest_e.scale(-c); // c = ±1 ⇒ exact
                                                    // substitute into existing solutions and work
                        for sol in solution.values_mut() {
                            *sol = sol.subst(v, &val);
                        }
                        rest = rest
                            .into_iter()
                            .map(|e: LinExpr| e.subst(v, &val))
                            .collect();
                        work = work.into_iter().map(|e| e.subst(v, &val)).collect();
                        solution.insert(v, val);
                        progress = true;
                    }
                    None => rest.push(eq),
                }
            }
            work.extend(rest);
            if !progress {
                break;
            }
        }
        // any equation still mentioning an unknown is unsolvable here
        let mut residual = Vec::new();
        for eq in &work {
            if eq.coeffs.keys().any(|v| st.unknowns.contains(v)) {
                return serr("replace: could not solve for all unknown arguments");
            }
            residual.push(Formula::eq(eq.clone(), LinExpr::constant(0)));
        }

        // every control formal must be solved
        for arg in &callee.args {
            if arg.ty.is_ctrl() && !solution.contains_key(&arg.name) {
                return serr(format!(
                    "replace: argument {} is unconstrained by the match",
                    arg.name
                ));
            }
        }

        // scope check: solutions may not reference block-bound variables
        for (v, sol) in &solution {
            if sol.vars().any(|x| block_bound.contains(&x)) {
                return serr(format!(
                    "replace: inferred value for {v} depends on variables bound \
                     inside the replaced block"
                ));
            }
        }

        // boolean (non-integer) equivalences
        {
            let mut guard = crate::handle::lock_state(self.state());
            for (cb, pb) in &st.bool_checks {
                let alpha_map: HashMap<Sym, EffExpr> = st
                    .alpha
                    .iter()
                    .map(|(&a, &b)| (a, EffExpr::Var(b)))
                    .chain(solution.iter().map(|(&v, e)| (v, effexpr_of_lin(e))))
                    .collect();
                let cb_e = lift_in_env(cb, &site.genv, &mut guard.reg).subst(&alpha_map);
                let pb_e = lift_in_env(pb, &site.genv, &mut guard.reg);
                let lb = lctx.lower_bool(&cb_e);
                let rb = lctx.lower_bool(&pb_e);
                residual.push(Formula::and(vec![
                    lb.def.clone(),
                    rb.def.clone(),
                    lb.val.iff(rb.val),
                ]));
            }
        }

        // callee preconditions, with formals substituted
        {
            let mut guard = crate::handle::lock_state(self.state());
            for pred in &callee.preds {
                let lifted = lift_in_env(pred, &site.genv, &mut guard.reg);
                let lifted = subst_pred(&lifted, &solution, &st);
                residual.push(lctx.lower_bool(&lifted).definitely());
            }
        }

        let hyp = {
            let mut h = site.assumptions(&mut lctx);
            h = Formula::and(vec![h, lctx.assumptions()]);
            h
        };
        self.require_valid(hyp, Formula::and(residual), "replace")?;

        // build the call arguments
        let mut args = Vec::with_capacity(callee.args.len());
        let guard = crate::handle::lock_state(self.state());
        let reg = &guard.reg;
        for arg in &callee.args {
            match &arg.ty {
                ArgType::Ctrl(_) => {
                    let Some(sol) = solution.get(&arg.name) else {
                        return serr(format!(
                            "replace: no solution for control argument {}",
                            arg.name
                        ));
                    };
                    args.push(expr_of_lin_ctx(sol, &lctx, reg));
                }
                ArgType::Scalar { .. } | ArgType::Tensor { .. } => {
                    let Some(bind) = st.tensors.get(&arg.name) else {
                        return serr(format!(
                            "replace: tensor argument {} never accessed in the match",
                            arg.name
                        ));
                    };
                    // extents: the callee's declared shape with solved sizes
                    let shape: Vec<Expr> = match &arg.ty {
                        ArgType::Tensor { shape, .. } => shape
                            .iter()
                            .map(|e| subst_shape(e, &solution, &lctx, reg))
                            .collect(),
                        _ => vec![],
                    };
                    let mut k_of: HashMap<usize, usize> = HashMap::new();
                    for (k, &d) in bind.dim_map.iter().enumerate() {
                        k_of.insert(d, k);
                    }
                    let coords: Vec<WAccess> = (0..bind.caller_rank)
                        .map(|d| {
                            let off = solution
                                .get(&bind.offsets[d])
                                .cloned()
                                .unwrap_or_else(|| LinExpr::constant(0));
                            let off_e = expr_of_lin_ctx(&off, &lctx, reg);
                            match k_of.get(&d) {
                                Some(&k) => WAccess::Interval(
                                    off_e.clone(),
                                    fold_expr(&off_e.add(shape[k].clone())),
                                ),
                                None => WAccess::Point(off_e),
                            }
                        })
                        .collect();
                    // offset scope check
                    for c in &coords {
                        let exprs: Vec<&Expr> = match c {
                            WAccess::Point(e) => vec![e],
                            WAccess::Interval(a, b) => vec![a, b],
                        };
                        for e in exprs {
                            let mut bad = false;
                            visit_expr(e, &mut |e| {
                                if let Expr::Var(v) = e {
                                    if block_bound.contains(v) {
                                        bad = true;
                                    }
                                }
                            });
                            if bad {
                                return serr(
                                    "replace: inferred window depends on variables bound \
                                     inside the replaced block",
                                );
                            }
                        }
                    }
                    args.push(Expr::Window {
                        buf: bind.caller_buf,
                        coords,
                    });
                }
            }
        }

        drop(guard);
        let call = Stmt::Call {
            proc: Arc::clone(callee),
            args,
        };
        // splice: the first statement becomes the call; delete the rest
        let mut p = self.splice(first, &mut |_| vec![call.clone()])?;
        for _ in 1..n {
            let Some(next) = first.sibling(1) else {
                return serr("replace: match window fell off the enclosing block");
            };
            p = p.splice(&next, &mut |_| vec![])?;
        }
        Ok(p)
    }
}

/// All strictly increasing maps `[0, k) → [0, r)`.
fn increasing_injections(k: usize, r: usize) -> Vec<Vec<usize>> {
    fn go(k: usize, start: usize, r: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for d in start..r {
            cur.push(d);
            go(k, d + 1, r, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    go(k, 0, r, &mut Vec::new(), &mut out);
    out
}

/// Rebuilds a surface expression from a solved linear expression,
/// mapping canonical stride and configuration symbols back to
/// `stride(buf, d)` and `Config.field` expressions.
fn expr_of_lin_ctx(e: &LinExpr, lctx: &LowerCtx, reg: &exo_analysis::globals::GlobalReg) -> Expr {
    let var_expr = |v: Sym| -> Expr {
        if let Some((buf, dim)) = lctx.stride_of(v) {
            Expr::Stride { buf, dim }
        } else if let Some((config, field)) = reg.field_of(v) {
            Expr::ReadConfig { config, field }
        } else {
            Expr::var(v)
        }
    };
    let mut acc: Option<Expr> = if e.constant != 0 || e.coeffs.is_empty() {
        Some(Expr::int(e.constant))
    } else {
        None
    };
    for (&v, &c) in &e.coeffs {
        let term = if c == 1 {
            var_expr(v)
        } else {
            Expr::int(c).mul(var_expr(v))
        };
        acc = Some(match acc {
            None => term,
            Some(a) => a.add(term),
        });
    }
    fold_expr(&acc.unwrap_or(Expr::int(0)))
}

fn effexpr_of_lin(e: &LinExpr) -> EffExpr {
    let mut acc = EffExpr::Int(e.constant);
    for (&v, &c) in &e.coeffs {
        let term = if c == 1 {
            EffExpr::Var(v)
        } else {
            EffExpr::bin(exo_core::BinOp::Mul, EffExpr::Int(c), EffExpr::Var(v))
        };
        acc = acc.add(term);
    }
    acc
}

/// Substitutes solved formals (and tensor strides) into a lifted callee
/// precondition.
fn subst_pred(e: &EffExpr, solution: &HashMap<Sym, LinExpr>, st: &UnifyState) -> EffExpr {
    match e {
        EffExpr::Var(v) => match solution.get(v) {
            Some(l) => effexpr_of_lin(l),
            None => e.clone(),
        },
        EffExpr::Stride(buf, dim) => match st.tensors.get(buf) {
            // windows preserve the strides of the underlying buffer
            Some(bind) => EffExpr::Stride(bind.caller_buf, bind.dim_map[*dim]),
            None => e.clone(),
        },
        EffExpr::Bin(op, a, b) => EffExpr::bin(
            *op,
            subst_pred(a, solution, st),
            subst_pred(b, solution, st),
        ),
        EffExpr::Neg(a) => EffExpr::Neg(Box::new(subst_pred(a, solution, st))),
        EffExpr::Not(a) => EffExpr::Not(Box::new(subst_pred(a, solution, st))),
        EffExpr::Ite(c, t, f) => EffExpr::Ite(
            Box::new(subst_pred(c, solution, st)),
            Box::new(subst_pred(t, solution, st)),
            Box::new(subst_pred(f, solution, st)),
        ),
        other => other.clone(),
    }
}

fn subst_shape(
    e: &Expr,
    solution: &HashMap<Sym, LinExpr>,
    lctx: &LowerCtx,
    reg: &exo_analysis::globals::GlobalReg,
) -> Expr {
    let out = exo_core::visit::map_expr(e, &mut |e| match e {
        Expr::Var(v) => match solution.get(&v) {
            Some(l) => expr_of_lin_ctx(l, lctx, reg),
            None => Expr::Var(v),
        },
        other => other,
    });
    fold_expr(&out)
}
