//! Configuration-state scheduling operators (paper §2.4, Fig. 2):
//! inserting configuration writes (`configwrite_after` /
//! `configwrite_before`), `bind_config`, `reorder_stmts`, and deletion of
//! redundant configuration writes.
//!
//! Inserting a configuration write is always locally safe but only
//! preserves equivalence *modulo* the written field (§5.7 "new config
//! write"); the context-extension rule (§6.2) then confirms the rest of
//! the procedure never reads the polluted field, and the pollution is
//! recorded in the procedure's provenance either way.

use std::collections::HashSet;

use exo_core::ir::{Expr, Stmt};
use exo_core::visit::{visit_expr, visit_stmts};
use exo_core::Sym;

use exo_analysis::conditions;
use exo_analysis::context::{context_extension_ok, effect_of_stmts_cached};
use exo_analysis::effexpr::LowerCtx;
use exo_analysis::globals::lift_in_env;
use exo_smt::formula::Formula;

use crate::handle::{serr, Procedure, SchedError};
use crate::pattern::Pattern;

/// Where a `configwrite_at` insertion lands relative to the matched
/// statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Position {
    /// Insert immediately before the matched statement.
    Before,
    /// Insert immediately after the matched statement.
    After,
}

impl Position {
    fn label(self) -> &'static str {
        match self {
            Position::Before => "before",
            Position::After => "after",
        }
    }
}

impl Procedure {
    /// Inserts `config.field = value` immediately before or after the
    /// matched statement. Pollutes `(config, field)`; fails if any code
    /// after the insertion point may read the field (context extension,
    /// §6.2). Used in §2.4 to materialize `ConfigLoad.src_stride` and to
    /// hoist loop-invariant configuration.
    pub fn configwrite_at(
        &self,
        stmt_pat: impl Into<Pattern>,
        pos: Position,
        config: Sym,
        field: Sym,
        value: Expr,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "configwrite_at",
            format!(
                "{stmt_pat}, {}, {}.{}",
                pos.label(),
                config.name(),
                field.name()
            ),
            || self.configwrite_at_impl(&stmt_pat, config, field, value, pos == Position::Before),
        )
    }

    /// Inserts `config.field = value` immediately after the matched
    /// statement.
    #[deprecated(since = "0.2.0", note = "use `configwrite_at` with `Position::After`")]
    pub fn configwrite_after(
        &self,
        stmt_pat: impl Into<Pattern>,
        config: Sym,
        field: Sym,
        value: Expr,
    ) -> Result<Procedure, SchedError> {
        self.configwrite_at(stmt_pat, Position::After, config, field, value)
    }

    /// Inserts `config.field = value` immediately before the matched
    /// statement.
    #[deprecated(since = "0.2.0", note = "use `configwrite_at` with `Position::Before`")]
    pub fn configwrite_before(
        &self,
        stmt_pat: impl Into<Pattern>,
        config: Sym,
        field: Sym,
        value: Expr,
    ) -> Result<Procedure, SchedError> {
        self.configwrite_at(stmt_pat, Position::Before, config, field, value)
    }

    fn configwrite_at_impl(
        &self,
        stmt_pat: &Pattern,
        config: Sym,
        field: Sym,
        value: Expr,
        before: bool,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let write = Stmt::WriteConfig {
            config,
            field,
            rhs: value,
        };
        let rewritten = self.splice(&path, &mut |s| {
            if before {
                vec![write.clone(), s.clone()]
            } else {
                vec![s.clone(), write.clone()]
            }
        })?;
        // context extension: nothing after the insertion may read the field.
        // The path of the *write* in the new body:
        let write_path = if before {
            path.clone()
        } else {
            match path.sibling(1) {
                Some(p) => p,
                None => return serr("configwrite: target path has no successor slot"),
            }
        };
        let ok = {
            let mut st = crate::handle::lock_state(self.state());
            let st = &mut *st;
            context_extension_ok(
                rewritten.proc(),
                &write_path,
                &[(config, field)],
                &mut st.reg,
                &st.check,
            )
        };
        if !ok {
            return serr(format!(
                "configwrite: code after the insertion point may read {}.{}",
                config.name(),
                field.name()
            ));
        }
        Ok(rewritten.pollute([(config, field)]))
    }

    /// `bind_config(s, e, config.field)`: replaces occurrences of the
    /// control expression `e` (given in printed form) inside the matched
    /// statement with a read of `config.field`, inserting
    /// `config.field = e` just before. Pollutes `(config, field)`.
    pub fn bind_config(
        &self,
        stmt_pat: impl Into<Pattern>,
        expr_text: &str,
        config: Sym,
        field: Sym,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented(
            "bind_config",
            format!(
                "{stmt_pat}, {expr_text}, {}.{}",
                config.name(),
                field.name()
            ),
            || self.bind_config_impl(&stmt_pat, expr_text, config, field),
        )
    }

    fn bind_config_impl(
        &self,
        stmt_pat: &Pattern,
        expr_text: &str,
        config: Sym,
        field: Sym,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let stmt = self.stmt(&path)?.clone();
        // locate the control expression by printed form
        let mut target: Option<Expr> = None;
        let mut scan = |e: &Expr| {
            visit_expr(e, &mut |e| {
                if target.is_none() && exo_core::printer::expr_to_string(e) == expr_text.trim() {
                    target = Some(e.clone());
                }
            });
        };
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| match s {
            Stmt::Assign { idx, rhs, .. } | Stmt::Reduce { idx, rhs, .. } => {
                idx.iter().for_each(&mut scan);
                scan(rhs);
            }
            Stmt::WriteConfig { rhs, .. } => scan(rhs),
            Stmt::If { cond, .. } => scan(cond),
            Stmt::For { lo, hi, .. } => {
                scan(lo);
                scan(hi);
            }
            Stmt::Call { args, .. } => args.iter().for_each(&mut scan),
            Stmt::WindowDef { rhs, .. } => scan(rhs),
            _ => {}
        });
        let Some(target) = target else {
            return serr(format!(
                "bind_config: no control expression prints as {expr_text:?}"
            ));
        };
        // the statement itself must not write the field (the bound value
        // must stay current throughout)
        let mut writes_field = false;
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| {
            if let Stmt::WriteConfig {
                config: c,
                field: f,
                ..
            } = s
            {
                if *c == config && *f == field {
                    writes_field = true;
                }
            }
        });
        if writes_field {
            return serr("bind_config: the statement itself writes the bound field");
        }
        // scope check: e must be evaluable before the statement
        let mut inner_bound = HashSet::new();
        visit_stmts(std::slice::from_ref(&stmt), &mut |s| {
            if let Stmt::For { iter, .. } = s {
                inner_bound.insert(*iter);
            }
        });
        let mut used = HashSet::new();
        visit_expr(&target, &mut |e| {
            if let Expr::Var(v) = e {
                used.insert(*v);
            }
        });
        if used.intersection(&inner_bound).next().is_some() {
            return serr("bind_config: expression uses loop variables bound inside the statement");
        }

        let write = Stmt::WriteConfig {
            config,
            field,
            rhs: target.clone(),
        };
        let replaced = exo_core::visit::map_stmt_exprs(&stmt, &mut |e| {
            if e == target {
                Expr::ReadConfig { config, field }
            } else {
                e
            }
        });
        let rewritten = self.splice(&path, &mut |_| vec![write.clone(), replaced.clone()])?;
        let ok = {
            let mut st = crate::handle::lock_state(self.state());
            let st = &mut *st;
            context_extension_ok(
                rewritten.proc(),
                &path,
                &[(config, field)],
                &mut st.reg,
                &st.check,
            )
        };
        if !ok {
            return serr(format!(
                "bind_config: code after the statement may read {}.{}",
                config.name(),
                field.name()
            ));
        }
        Ok(rewritten.pollute([(config, field)]))
    }

    /// Deletes a configuration write that is provably redundant: the
    /// written value definitely equals the field's current value (§2.4's
    /// "eliminating redundant setting of configuration state"). This is
    /// fully equivalence-preserving — no pollution.
    pub fn delete_config(&self, stmt_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented("delete_config", stmt_pat.as_str(), || {
            self.delete_config_impl(&stmt_pat)
        })
    }

    fn delete_config_impl(&self, stmt_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let Stmt::WriteConfig { config, field, rhs } = self.stmt(&path)?.clone() else {
            return serr(format!(
                "delete_config: {stmt_pat:?} is not a configuration write"
            ));
        };
        let site = self.site(&path)?;
        {
            let mut st = crate::handle::lock_state(self.state());
            let current = site.genv.value(config, field, &mut st.reg);
            let new = lift_in_env(&rhs, &site.genv, &mut st.reg);
            let mut lctx = LowerCtx::new();
            let goal = lctx.lower_bool(&current.eq(new)).definitely();
            let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
            drop(st);
            self.require_valid(hyp, goal, &format!("delete_config({stmt_pat})"))
                .map_err(|e| {
                    SchedError::new(format!(
                        "{} — the write is not provably redundant",
                        e.message
                    ))
                })?;
        }
        self.splice(&path, &mut |_| vec![])
    }

    /// `reorder_stmts(s1)`: swaps the matched statement with its
    /// immediately following sibling, after checking `Commutes` (§5.7).
    pub fn reorder_stmts(&self, first_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let first_pat = first_pat.into();
        self.instrumented("reorder_stmts", first_pat.as_str(), || {
            self.reorder_stmts_impl(&first_pat)
        })
    }

    fn reorder_stmts_impl(&self, first_pat: &Pattern) -> Result<Procedure, SchedError> {
        let p1 = self.find(first_pat)?;
        let p2 = p1
            .sibling(1)
            .ok_or_else(|| SchedError::new("reorder_stmts: no following statement"))?;
        let s1 = self.stmt(&p1)?.clone();
        let Ok(s2) = self.stmt(&p2).cloned() else {
            return serr("reorder_stmts: no following statement");
        };
        // scoping: s1 may not bind names used by s2
        let mut bound = Vec::new();
        if let Stmt::Alloc { name, .. } | Stmt::WindowDef { name, .. } = &s1 {
            bound.push(*name);
        }
        let free2 = exo_core::visit::free_syms_block(std::slice::from_ref(&s2));
        if bound.iter().any(|b| free2.contains(b)) {
            return serr("reorder_stmts: the first statement binds a name the second uses");
        }

        let site = self.site(&p1)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let mut ck = st.check.lock();
        let e1 = effect_of_stmts_cached(
            self.proc(),
            std::slice::from_ref(&s1),
            &site.genv,
            &mut st.reg,
            &mut ck.effects,
        );
        let e2 = effect_of_stmts_cached(
            self.proc(),
            std::slice::from_ref(&s2),
            &site.genv,
            &mut st.reg,
            &mut ck.effects,
        );
        drop(ck);
        let mut lctx = LowerCtx::new();
        let cond = conditions::commutes(&e1, &e2, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("reorder_stmts({first_pat})"))?;

        let p = self.splice(&p2, &mut |_| vec![])?;
        p.splice(&p1, &mut |s| vec![s2.clone(), s.clone()])
            .inspect(|q| {
                // two splices applied, but it is one directive
                let _ = q;
            })
    }

    /// Deletes a `pass` statement (always equivalence-preserving).
    pub fn delete_pass(&self) -> Result<Procedure, SchedError> {
        self.instrumented("delete_pass", "pass", || {
            let path = self.find(&Pattern::from("pass"))?;
            self.splice(&path, &mut |_| vec![])
        })
    }

    /// `shadow_delete(s)`: deletes the matched statement when the
    /// statement immediately after it shadows it (`s1;s2 ≡ s2`, §5.7).
    pub fn shadow_delete(&self, stmt_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented("shadow_delete", stmt_pat.as_str(), || {
            self.shadow_delete_impl(&stmt_pat)
        })
    }

    fn shadow_delete_impl(&self, stmt_pat: &Pattern) -> Result<Procedure, SchedError> {
        let p1 = self.find(stmt_pat)?;
        let p2 = p1
            .sibling(1)
            .ok_or_else(|| SchedError::new("shadow_delete: no following statement"))?;
        let s1 = self.stmt(&p1)?.clone();
        let Ok(s2) = self.stmt(&p2).cloned() else {
            return serr("shadow_delete: no following statement");
        };
        if matches!(s1, Stmt::Alloc { .. } | Stmt::WindowDef { .. }) {
            return serr("shadow_delete: cannot delete a binding statement");
        }
        let site = self.site(&p1)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let mut ck = st.check.lock();
        let e1 = effect_of_stmts_cached(
            self.proc(),
            std::slice::from_ref(&s1),
            &site.genv,
            &mut st.reg,
            &mut ck.effects,
        );
        let e2 = effect_of_stmts_cached(
            self.proc(),
            std::slice::from_ref(&s2),
            &site.genv,
            &mut st.reg,
            &mut ck.effects,
        );
        drop(ck);
        let mut lctx = LowerCtx::new();
        let cond = conditions::shadows(&e1, &e2, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("shadow_delete({stmt_pat})"))?;
        self.splice(&p1, &mut |_| vec![])
    }
}
