//! Constant folding of control expressions, used by `simplify()` and by
//! rewrites (split, unroll) that substitute literals into index math.

use exo_core::ir::{BinOp, Expr, Lit};
use exo_core::visit::map_expr;
use exo_core::{Block, Stmt};

/// Folds constants in one expression (`(0 + 16·2) + ii` → `32 + ii`),
/// normalizing purely affine expressions so symbolic terms cancel
/// (`4·io + 4 − 4·io` → `4`).
pub fn fold_expr(e: &Expr) -> Expr {
    map_expr(e, &mut fold_full)
}

fn fold_full(e: Expr) -> Expr {
    let e = fold_node(e);
    match as_affine(&e) {
        Some(terms) => rebuild_affine(&terms),
        None => e,
    }
}

/// Decomposes an expression into affine terms `(constant, Σ coeff·var)`
/// when it is built purely from `+`, `-`, unary `-`, and
/// multiplication by constants.
fn as_affine(e: &Expr) -> Option<(i64, Vec<(exo_core::Sym, i64)>)> {
    fn go(e: &Expr, scale: i64, c: &mut i64, terms: &mut Vec<(exo_core::Sym, i64)>) -> bool {
        match e {
            Expr::Lit(Lit::Int(v)) => {
                *c += scale * v;
                true
            }
            Expr::Var(x) => {
                terms.push((*x, scale));
                true
            }
            Expr::Neg(a) => go(a, -scale, c, terms),
            Expr::BinOp(BinOp::Add, a, b) => go(a, scale, c, terms) && go(b, scale, c, terms),
            Expr::BinOp(BinOp::Sub, a, b) => go(a, scale, c, terms) && go(b, -scale, c, terms),
            Expr::BinOp(BinOp::Mul, a, b) => {
                if let Some(k) = a.as_int() {
                    go(b, scale * k, c, terms)
                } else if let Some(k) = b.as_int() {
                    go(a, scale * k, c, terms)
                } else {
                    false
                }
            }
            _ => false,
        }
    }
    let mut c = 0;
    let mut terms = Vec::new();
    if go(e, 1, &mut c, &mut terms) {
        // combine like terms, keeping first-occurrence order
        let mut combined: Vec<(exo_core::Sym, i64)> = Vec::new();
        for (v, k) in terms {
            match combined.iter_mut().find(|(w, _)| *w == v) {
                Some((_, kk)) => *kk += k,
                None => combined.push((v, k)),
            }
        }
        combined.retain(|(_, k)| *k != 0);
        Some((c, combined))
    } else {
        None
    }
}

fn rebuild_affine((c, terms): &(i64, Vec<(exo_core::Sym, i64)>)) -> Expr {
    let mut acc: Option<Expr> = None;
    for &(v, k) in terms {
        let t = match k {
            1 => Expr::var(v),
            -1 if acc.is_some() => Expr::var(v), // handled via Sub below
            _ => Expr::int(k.abs()).mul(Expr::var(v)),
        };
        let t = if k == -1 { Expr::var(v) } else { t };
        acc = Some(match acc {
            None => {
                if k < 0 {
                    Expr::Neg(Box::new(t))
                } else {
                    t
                }
            }
            Some(a) => {
                if k < 0 {
                    a.sub(t)
                } else {
                    a.add(t)
                }
            }
        });
    }
    match acc {
        None => Expr::int(*c),
        Some(a) => {
            if *c > 0 {
                a.add(Expr::int(*c))
            } else if *c < 0 {
                a.sub(Expr::int(-*c))
            } else {
                a
            }
        }
    }
}

fn fold_node(e: Expr) -> Expr {
    let Expr::BinOp(op, a, b) = &e else { return e };
    let (av, bv) = (a.as_int(), b.as_int());
    match (op, av, bv) {
        (BinOp::Add, Some(x), Some(y)) => Expr::int(x + y),
        (BinOp::Sub, Some(x), Some(y)) => Expr::int(x - y),
        (BinOp::Mul, Some(x), Some(y)) => Expr::int(x * y),
        (BinOp::Div, Some(x), Some(y)) if y > 0 => Expr::int(x.div_euclid(y)),
        (BinOp::Mod, Some(x), Some(y)) if y > 0 => Expr::int(x.rem_euclid(y)),
        (BinOp::Lt, Some(x), Some(y)) => Expr::bool(x < y),
        (BinOp::Le, Some(x), Some(y)) => Expr::bool(x <= y),
        (BinOp::Gt, Some(x), Some(y)) => Expr::bool(x > y),
        (BinOp::Ge, Some(x), Some(y)) => Expr::bool(x >= y),
        (BinOp::Eq, Some(x), Some(y)) => Expr::bool(x == y),
        (BinOp::Add, Some(0), _) => *b.clone(),
        (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => *a.clone(),
        (BinOp::Mul, Some(1), _) => *b.clone(),
        (BinOp::Mul, _, Some(1)) => *a.clone(),
        (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => Expr::int(0),
        // reassociate (x + c1) + c2 → x + (c1+c2)
        (BinOp::Add, None, Some(c2)) => {
            if let Expr::BinOp(BinOp::Add, x, c1) = a.as_ref() {
                if let Some(c1v) = c1.as_int() {
                    return Expr::bin(BinOp::Add, (**x).clone(), Expr::int(c1v + c2));
                }
            }
            e
        }
        (BinOp::And, _, _) => match (a.as_ref(), b.as_ref()) {
            (Expr::Lit(Lit::Bool(true)), x) | (x, Expr::Lit(Lit::Bool(true))) => x.clone(),
            (Expr::Lit(Lit::Bool(false)), _) | (_, Expr::Lit(Lit::Bool(false))) => {
                Expr::bool(false)
            }
            _ => e,
        },
        (BinOp::Or, _, _) => match (a.as_ref(), b.as_ref()) {
            (Expr::Lit(Lit::Bool(false)), x) | (x, Expr::Lit(Lit::Bool(false))) => x.clone(),
            (Expr::Lit(Lit::Bool(true)), _) | (_, Expr::Lit(Lit::Bool(true))) => Expr::bool(true),
            _ => e,
        },
        _ => e,
    }
}

/// Folds constants throughout a block, removing `if true:` wrappers and
/// dropping `if false:` branches.
pub fn fold_block(b: &Block) -> Block {
    let mut out = Vec::with_capacity(b.len());
    for s in b {
        match s {
            Stmt::If { cond, body, orelse } => {
                let cond = fold_expr(cond);
                match cond {
                    Expr::Lit(Lit::Bool(true)) => out.extend(fold_block(body)),
                    Expr::Lit(Lit::Bool(false)) => out.extend(fold_block(orelse)),
                    cond => out.push(Stmt::If {
                        cond,
                        body: fold_block(body),
                        orelse: fold_block(orelse),
                    }),
                }
            }
            Stmt::For { iter, lo, hi, body } => {
                let lo = fold_expr(lo);
                let hi = fold_expr(hi);
                if let (Some(l), Some(h)) = (lo.as_int(), hi.as_int()) {
                    if l >= h {
                        continue; // empty loop
                    }
                    if h == l + 1 {
                        // single-iteration loop: inline the body with the
                        // iterator substituted
                        let mut map = std::collections::HashMap::new();
                        map.insert(*iter, Expr::int(l));
                        let inlined = exo_core::visit::subst_block(body, &map);
                        out.extend(fold_block(&inlined));
                        continue;
                    }
                }
                out.push(Stmt::For {
                    iter: *iter,
                    lo,
                    hi,
                    body: fold_block(body),
                });
            }
            other => out.push(exo_core::visit::map_stmt_exprs(other, &mut fold_full)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::Sym;

    #[test]
    fn folds_arithmetic() {
        let x = Sym::new("x");
        let e = Expr::int(16)
            .mul(Expr::int(2))
            .add(Expr::var(x))
            .add(Expr::int(0));
        // affine normalization puts symbolic terms first
        assert_eq!(fold_expr(&e), Expr::var(x).add(Expr::int(32)));
    }

    #[test]
    fn reassociates_constant_chains() {
        let x = Sym::new("x");
        let e = Expr::var(x).add(Expr::int(3)).add(Expr::int(4));
        assert_eq!(fold_expr(&e), Expr::var(x).add(Expr::int(7)));
    }

    #[test]
    fn removes_constant_ifs() {
        let b = vec![Stmt::If {
            cond: Expr::int(1).lt(Expr::int(2)),
            body: vec![Stmt::Pass],
            orelse: vec![Stmt::Pass, Stmt::Pass],
        }];
        assert_eq!(fold_block(&b), vec![Stmt::Pass]);
        let b2 = vec![Stmt::If {
            cond: Expr::int(3).lt(Expr::int(2)),
            body: vec![Stmt::Pass],
            orelse: vec![Stmt::Pass, Stmt::Pass],
        }];
        assert_eq!(fold_block(&b2).len(), 2);
    }

    #[test]
    fn drops_empty_loops() {
        let i = Sym::new("i");
        let b = vec![Stmt::For {
            iter: i,
            lo: Expr::int(4),
            hi: Expr::int(4),
            body: vec![Stmt::Pass],
        }];
        assert!(fold_block(&b).is_empty());
    }
}
