//! The pattern language used to point at code (paper §3.3).
//!
//! Scheduling operators locate statements with simple syntactic
//! patterns, e.g. `"for i in _: _"` points at the first loop over `i`,
//! `"res : _"` at the allocation of `res`, `"C[_] += _"` at a reduction
//! into `C`, `"foo(_)"` at a call to `foo`. A trailing ` #n` selects the
//! n-th match (0-based) instead of the first.

use std::fmt;

use exo_core::ir::Stmt;
use exo_core::path::{visit_paths, StmtPath};
use exo_core::Block;

/// A textual pattern argument, as passed to scheduling operators.
///
/// Every operator takes `impl Into<Pattern>`, so plain `&str` literals
/// keep working while callers that build patterns programmatically can
/// pass `String`s or reuse a `Pattern` value. Parsing is deferred to
/// [`Pattern::parsed`] so operators can attach the original text to
/// their error reports.
#[derive(Clone, PartialEq, Eq)]
pub struct Pattern {
    text: String,
}

// Debug delegates to the text so diagnostics print `"for i in _: _"`,
// exactly as the former `&str` arguments did.
impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.text, f)
    }
}

impl Pattern {
    /// The original pattern text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Parses the pattern text into a matcher.
    ///
    /// # Errors
    ///
    /// Fails on unrecognized syntax.
    pub fn parsed(&self) -> Result<ParsedPattern, PatternError> {
        ParsedPattern::parse(&self.text)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for Pattern {
    fn from(text: &str) -> Self {
        Pattern { text: text.into() }
    }
}

impl From<String> for Pattern {
    fn from(text: String) -> Self {
        Pattern { text }
    }
}

impl From<&String> for Pattern {
    fn from(text: &String) -> Self {
        Pattern { text: text.clone() }
    }
}

impl From<&Pattern> for Pattern {
    fn from(p: &Pattern) -> Self {
        p.clone()
    }
}

/// A parsed statement pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StmtPattern {
    /// `for x in _: _` — a loop whose iteration variable is spelled `x`.
    For(String),
    /// `x : _` — an allocation of a buffer spelled `x`.
    Alloc(String),
    /// `x[_] = _` — an assignment to `x` (scalar or tensor).
    Assign(String),
    /// `x[_] += _` — a reduction into `x`.
    Reduce(String),
    /// `f(_)` — a call to a procedure spelled `f`.
    Call(String),
    /// `if _: _` — any conditional.
    If,
    /// `x = _` where `x` may also be a window definition name.
    AssignOrWindow(String),
    /// `pass` — a no-op statement.
    Pass,
    /// `Cfg.field = _` — a configuration write.
    ConfigWrite(String, String),
}

/// A parsed pattern plus a match selector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsedPattern {
    /// What to match.
    pub kind: StmtPattern,
    /// Which match to take (0-based).
    pub index: usize,
}

/// An error from pattern parsing or matching.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PatternError {}

fn perr<T>(message: impl Into<String>) -> Result<T, PatternError> {
    Err(PatternError {
        message: message.into(),
    })
}

impl ParsedPattern {
    /// Parses a pattern string.
    ///
    /// # Errors
    ///
    /// Fails on unrecognized syntax.
    pub fn parse(text: &str) -> Result<ParsedPattern, PatternError> {
        let text = text.trim();
        // optional trailing "#n"
        let (body, index) = match text.rsplit_once('#') {
            Some((b, n)) => {
                let idx: usize = n.trim().parse().map_err(|_| PatternError {
                    message: format!("bad match index in {text:?}"),
                })?;
                (b.trim(), idx)
            }
            None => (text, 0),
        };
        let kind = Self::parse_kind(body)?;
        Ok(ParsedPattern { kind, index })
    }

    fn parse_kind(body: &str) -> Result<StmtPattern, PatternError> {
        if body == "pass" {
            return Ok(StmtPattern::Pass);
        }
        if body.starts_with("if") {
            return Ok(StmtPattern::If);
        }
        if let Some(rest) = body.strip_prefix("for ") {
            let name = rest.split_whitespace().next().ok_or_else(|| PatternError {
                message: format!("bad for-pattern {body:?}"),
            })?;
            return Ok(StmtPattern::For(name.to_string()));
        }
        if let Some((lhs, _)) = body.split_once('=') {
            let lhs = lhs.trim().trim_end_matches('+').trim();
            if let Some((cfg, field)) = lhs.split_once('.') {
                if is_ident(cfg.trim()) && is_ident(field.trim()) {
                    return Ok(StmtPattern::ConfigWrite(
                        cfg.trim().to_string(),
                        field.trim().to_string(),
                    ));
                }
            }
        }
        if let Some((lhs, _)) = body.split_once("+=") {
            let name = base_name(lhs)?;
            return Ok(StmtPattern::Reduce(name));
        }
        if let Some((lhs, _)) = body.split_once(':') {
            // "x : _"  (allocation) — but not "for …:" (handled above)
            let name = lhs.trim();
            if is_ident(name) {
                return Ok(StmtPattern::Alloc(name.to_string()));
            }
        }
        if let Some((lhs, _)) = body.split_once('=') {
            let lhs = lhs.trim();
            if lhs.contains('[') {
                return Ok(StmtPattern::Assign(base_name(lhs)?));
            }
            if is_ident(lhs) {
                return Ok(StmtPattern::AssignOrWindow(lhs.to_string()));
            }
        }
        if let Some((name, _)) = body.split_once('(') {
            let name = name.trim();
            if is_ident(name) {
                return Ok(StmtPattern::Call(name.to_string()));
            }
        }
        perr(format!("unrecognized pattern {body:?}"))
    }

    /// Whether a statement matches this pattern's kind.
    pub fn matches(&self, s: &Stmt) -> bool {
        match (&self.kind, s) {
            (StmtPattern::For(n), Stmt::For { iter, .. }) => iter.name() == *n,
            (StmtPattern::Alloc(n), Stmt::Alloc { name, .. }) => name.name() == *n,
            (StmtPattern::Assign(n), Stmt::Assign { buf, .. }) => buf.name() == *n,
            (StmtPattern::AssignOrWindow(n), Stmt::Assign { buf, idx, .. }) => {
                buf.name() == *n && idx.is_empty()
            }
            (StmtPattern::AssignOrWindow(n), Stmt::WindowDef { name, .. }) => name.name() == *n,
            (StmtPattern::Reduce(n), Stmt::Reduce { buf, .. }) => buf.name() == *n,
            (StmtPattern::Call(n), Stmt::Call { proc, .. }) => proc.name.name() == *n,
            (StmtPattern::If, Stmt::If { .. }) => true,
            (StmtPattern::Pass, Stmt::Pass) => true,
            (StmtPattern::ConfigWrite(c, f), Stmt::WriteConfig { config, field, .. }) => {
                config.name() == *c && field.name() == *f
            }
            _ => false,
        }
    }

    /// Finds the selected match in a body (pre-order).
    ///
    /// # Errors
    ///
    /// Fails if there are not enough matches.
    pub fn find(&self, body: &Block) -> Result<StmtPath, PatternError> {
        // Chaos injection: pretend resolution failed — either nothing
        // matched, or several statements did and no index disambiguates.
        // Both are ordinary user-visible outcomes (a failed pattern rejects
        // the operator and leaves the procedure untouched), which is exactly
        // the fail-safe path the harness wants to exercise.
        if exo_chaos::should_inject(exo_chaos::FaultSite::PatternNoMatch) {
            return perr(format!(
                "pattern {:?} matched no statement (chaos-injected no-match)",
                self.kind
            ));
        }
        if exo_chaos::should_inject(exo_chaos::FaultSite::PatternAmbiguous) {
            return perr(format!(
                "pattern {:?} is ambiguous: multiple matches and no index \
                 selects one (chaos-injected ambiguity)",
                self.kind
            ));
        }
        let mut hits = Vec::new();
        visit_paths(body, |p, s| {
            if self.matches(s) {
                hits.push(p.clone());
            }
        });
        hits.get(self.index).cloned().ok_or_else(|| {
            // List every candidate span so an ambiguous pattern tells the
            // user exactly which `#n` selector to add (same span rendering
            // as lint diagnostics).
            let candidates = if hits.is_empty() {
                String::new()
            } else {
                format!("; candidates: {}", exo_core::diag::render_paths(&hits))
            };
            PatternError {
                message: format!(
                    "pattern {:?} matched {} statement(s), wanted index {}{}",
                    self.kind,
                    hits.len(),
                    self.index,
                    candidates
                ),
            }
        })
    }

    /// Finds all matches in a body.
    pub fn find_all(&self, body: &Block) -> Vec<StmtPath> {
        let mut hits = Vec::new();
        visit_paths(body, |p, s| {
            if self.matches(s) {
                hits.push(p.clone());
            }
        });
        hits
    }
}

fn base_name(lhs: &str) -> Result<String, PatternError> {
    let name = lhs.split('[').next().unwrap_or("").trim();
    if is_ident(name) {
        Ok(name.to_string())
    } else {
        perr(format!("bad buffer name in pattern {lhs:?}"))
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::ProcBuilder;
    use exo_core::ir::Expr;
    use exo_core::types::{DataType, MemName};

    fn sample() -> exo_core::Block {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let _t = b.alloc("t", DataType::F32, vec![Expr::int(8)], MemName::dram());
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.reduce(a, vec![Expr::var(i)], Expr::float(1.0));
        b.end_for();
        let i2 = b.begin_for("i", Expr::int(0), Expr::int(4));
        let _ = i2;
        b.stmt(exo_core::Stmt::Pass);
        b.end_for();
        b.finish().body.clone()
    }

    #[test]
    fn pattern_newtype_roundtrips() {
        let p: Pattern = "for i in _: _".into();
        assert_eq!(p.as_str(), "for i in _: _");
        assert_eq!(p.to_string(), "for i in _: _");
        let owned: Pattern = String::from("pass").into();
        let by_ref: Pattern = (&String::from("pass")).into();
        assert_eq!(owned, by_ref);
        assert_eq!(p.parsed().unwrap().kind, StmtPattern::For("i".into()));
        assert!(Pattern::from("!!!").parsed().is_err());
    }

    #[test]
    fn parse_forms() {
        assert_eq!(
            ParsedPattern::parse("for i in _: _").unwrap().kind,
            StmtPattern::For("i".into())
        );
        assert_eq!(
            ParsedPattern::parse("res : _").unwrap().kind,
            StmtPattern::Alloc("res".into())
        );
        assert_eq!(
            ParsedPattern::parse("C[_] += _").unwrap().kind,
            StmtPattern::Reduce("C".into())
        );
        assert_eq!(
            ParsedPattern::parse("C[_,_] = _").unwrap().kind,
            StmtPattern::Assign("C".into())
        );
        assert_eq!(
            ParsedPattern::parse("foo(_)").unwrap().kind,
            StmtPattern::Call("foo".into())
        );
        assert_eq!(
            ParsedPattern::parse("if _: _").unwrap().kind,
            StmtPattern::If
        );
        let p = ParsedPattern::parse("for i in _: _ #2").unwrap();
        assert_eq!(p.index, 2);
        assert!(ParsedPattern::parse("!!!").is_err());
    }

    #[test]
    fn find_selects_nth() {
        let body = sample();
        let p0 = ParsedPattern::parse("for i in _: _")
            .unwrap()
            .find(&body)
            .unwrap();
        let p1 = ParsedPattern::parse("for i in _: _ #1")
            .unwrap()
            .find(&body)
            .unwrap();
        assert_ne!(p0, p1);
        assert!(ParsedPattern::parse("for i in _: _ #2")
            .unwrap()
            .find(&body)
            .is_err());
    }

    #[test]
    fn find_alloc_and_stores() {
        let body = sample();
        assert!(ParsedPattern::parse("t : _").unwrap().find(&body).is_ok());
        assert!(ParsedPattern::parse("A[_] = _")
            .unwrap()
            .find(&body)
            .is_ok());
        assert!(ParsedPattern::parse("A[_] += _")
            .unwrap()
            .find(&body)
            .is_ok());
        assert!(ParsedPattern::parse("B[_] = _")
            .unwrap()
            .find(&body)
            .is_err());
    }

    #[test]
    fn find_all_counts() {
        let body = sample();
        assert_eq!(
            ParsedPattern::parse("for i in _: _")
                .unwrap()
                .find_all(&body)
                .len(),
            2
        );
        assert_eq!(
            ParsedPattern::parse("pass").unwrap().find_all(&body).len(),
            1
        );
    }
}
