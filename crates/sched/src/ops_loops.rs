//! Loop-restructuring scheduling operators (paper Fig. 2):
//! `split`, `split_guard`, `reorder`, `unroll`, `fission_after`,
//! `fuse_loop`, `partition_loop`, `remove_loop`, `lift_if`, `add_guard`.

use std::collections::HashMap;

use exo_core::ir::{Expr, Stmt};
use exo_core::visit::{free_syms_block, refresh_bound, subst_block, visit_stmts};
use exo_core::Sym;

use exo_analysis::conditions;
use exo_analysis::context::effect_of_stmts_cached;
use exo_analysis::effects::Effect;
use exo_analysis::effexpr::LowerCtx;
use exo_analysis::globals::lift_in_env;
use exo_smt::formula::Formula;

use crate::fold::{fold_block, fold_expr};
use crate::handle::{serr, Procedure, SchedError};
use crate::pattern::Pattern;

impl Procedure {
    /// `split(i, c, io, ii)`: rewrites `for i in seq(0, N)` into
    /// `for io in seq(0, N/c): for ii in seq(0, c)` with `i := c·io + ii`.
    ///
    /// # Errors
    ///
    /// Fails unless the loop starts at 0 and `c` provably divides the
    /// extent (use [`Procedure::split_guard`] for non-divisible extents).
    pub fn split(
        &self,
        loop_pat: impl Into<Pattern>,
        c: i64,
        io_name: &str,
        ii_name: &str,
    ) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented(
            "split",
            format!("{loop_pat}, {c}, {io_name}, {ii_name}"),
            || self.split_impl(&loop_pat, c, io_name, ii_name),
        )
    }

    fn split_impl(
        &self,
        loop_pat: &Pattern,
        c: i64,
        io_name: &str,
        ii_name: &str,
    ) -> Result<Procedure, SchedError> {
        if c <= 0 {
            return serr("split: factor must be positive");
        }
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, lo, hi, body } = self.stmt(&path)?.clone() else {
            return serr(format!("split: {loop_pat:?} is not a loop"));
        };
        if lo.as_int() != Some(0) {
            return serr("split: only zero-based loops can be split");
        }
        // divisibility: D(hi mod c == 0) under the site assumptions
        let site = self.site(&path)?;
        {
            let mut st = crate::handle::lock_state(self.state());
            let hi_e = lift_in_env(&hi, &site.genv, &mut st.reg);
            let mut lctx = LowerCtx::new();
            let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
            let li = lctx.lower_int(&hi_e);
            let side = lctx.assumptions();
            let goal = Formula::and(vec![li.def, Formula::dvd(c, li.val)]);
            drop(st);
            self.require_valid(
                Formula::and(vec![hyp, side]),
                goal,
                &format!("split({loop_pat}, {c})"),
            )
            .map_err(|e| {
                SchedError::new(format!(
                    "{} — extent not provably divisible by {c}; \
                     use split_guard for a tail guard",
                    e.message
                ))
            })?;
        }
        let io = Sym::new(io_name);
        let ii = Sym::new(ii_name);
        let outer_hi = fold_expr(&hi.clone().div(Expr::int(c)));
        let mut map = HashMap::new();
        map.insert(iter, Expr::var(io).mul(Expr::int(c)).add(Expr::var(ii)));
        let new_body = subst_block(&body, &map);
        let new_loop = Stmt::For {
            iter: io,
            lo: Expr::int(0),
            hi: outer_hi,
            body: vec![Stmt::For {
                iter: ii,
                lo: Expr::int(0),
                hi: Expr::int(c),
                body: fold_block(&new_body),
            }],
        };
        self.splice(&path, &mut |_| vec![new_loop.clone()])
    }

    /// `split_guard(i, c, io, ii)`: like [`Procedure::split`] but handles
    /// non-divisible extents with a tail guard
    /// `if c·io + ii < N:` around the body.
    pub fn split_guard(
        &self,
        loop_pat: impl Into<Pattern>,
        c: i64,
        io_name: &str,
        ii_name: &str,
    ) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented(
            "split_guard",
            format!("{loop_pat}, {c}, {io_name}, {ii_name}"),
            || self.split_guard_impl(&loop_pat, c, io_name, ii_name),
        )
    }

    fn split_guard_impl(
        &self,
        loop_pat: &Pattern,
        c: i64,
        io_name: &str,
        ii_name: &str,
    ) -> Result<Procedure, SchedError> {
        if c <= 0 {
            return serr("split_guard: factor must be positive");
        }
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, lo, hi, body } = self.stmt(&path)?.clone() else {
            return serr(format!("split_guard: {loop_pat:?} is not a loop"));
        };
        if lo.as_int() != Some(0) {
            return serr("split_guard: only zero-based loops can be split");
        }
        let io = Sym::new(io_name);
        let ii = Sym::new(ii_name);
        // ceil(N / c) = (N + c - 1) / c
        let outer_hi = fold_expr(&hi.clone().add(Expr::int(c - 1)).div(Expr::int(c)));
        let idx = Expr::var(io).mul(Expr::int(c)).add(Expr::var(ii));
        let mut map = HashMap::new();
        map.insert(iter, idx.clone());
        let new_body = fold_block(&subst_block(&body, &map));
        let guarded = Stmt::If {
            cond: idx.lt(hi.clone()),
            body: new_body,
            orelse: vec![],
        };
        let new_loop = Stmt::For {
            iter: io,
            lo: Expr::int(0),
            hi: outer_hi,
            body: vec![Stmt::For {
                iter: ii,
                lo: Expr::int(0),
                hi: Expr::int(c),
                body: vec![guarded],
            }],
        };
        self.splice(&path, &mut |_| vec![new_loop.clone()])
    }

    /// `reorder(i, j)`: swaps two perfectly nested loops
    /// `for i: for j: s ~> for j: for i: s` after checking the §5.8
    /// reordering condition.
    pub fn reorder(
        &self,
        outer_pat: impl Into<Pattern>,
        inner_name: &str,
    ) -> Result<Procedure, SchedError> {
        let outer_pat = outer_pat.into();
        self.instrumented("reorder", format!("{outer_pat}, {inner_name}"), || {
            self.reorder_impl(&outer_pat, inner_name)
        })
    }

    fn reorder_impl(&self, outer_pat: &Pattern, inner_name: &str) -> Result<Procedure, SchedError> {
        let path = self.find(outer_pat)?;
        let Stmt::For {
            iter: x,
            lo: xlo,
            hi: xhi,
            body,
        } = self.stmt(&path)?.clone()
        else {
            return serr(format!("reorder: {outer_pat:?} is not a loop"));
        };
        let [Stmt::For {
            iter: y,
            lo: ylo,
            hi: yhi,
            body: inner_body,
        }] = &body[..]
        else {
            return serr("reorder: the outer loop body must be exactly one nested loop");
        };
        if y.name() != inner_name {
            return serr(format!(
                "reorder: inner loop is {}, expected {inner_name}",
                y.name()
            ));
        }
        // the inner bounds may not depend on the outer iterator
        let mut bound_syms = std::collections::HashSet::new();
        for e in [ylo, yhi] {
            exo_core::visit::visit_expr(e, &mut |e| {
                if let Expr::Var(v) = e {
                    bound_syms.insert(*v);
                }
            });
        }
        if bound_syms.contains(&x) {
            return serr("reorder: inner loop bounds depend on the outer iterator");
        }

        let site = self.site(&path)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let xlo_e = lift_in_env(&xlo, &site.genv, &mut st.reg);
        let xhi_e = lift_in_env(&xhi, &site.genv, &mut st.reg);
        let ylo_e = lift_in_env(ylo, &site.genv, &mut st.reg);
        let yhi_e = lift_in_env(yhi, &site.genv, &mut st.reg);
        let body_eff = effect_of_stmts_cached(
            self.proc(),
            inner_body,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let bounds_eff = config_reads_of(&[ylo.clone(), yhi.clone()]);
        let mut lctx = LowerCtx::new();
        let cond = conditions::loop_reorder(
            x,
            (&xlo_e, &xhi_e),
            *y,
            (&ylo_e, &yhi_e),
            &bounds_eff,
            &body_eff,
            &mut lctx,
        );
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("reorder({outer_pat}, {inner_name})"))?;

        let swapped = Stmt::For {
            iter: *y,
            lo: ylo.clone(),
            hi: yhi.clone(),
            body: vec![Stmt::For {
                iter: x,
                lo: xlo,
                hi: xhi,
                body: inner_body.clone(),
            }],
        };
        self.splice(&path, &mut |_| vec![swapped.clone()])
    }

    /// `unroll(i)`: fully unrolls a loop with constant bounds.
    pub fn unroll(&self, loop_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented("unroll", loop_pat.as_str(), || self.unroll_impl(&loop_pat))
    }

    fn unroll_impl(&self, loop_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, lo, hi, body } = self.stmt(&path)?.clone() else {
            return serr(format!("unroll: {loop_pat:?} is not a loop"));
        };
        let (Some(lo), Some(hi)) = (fold_expr(&lo).as_int(), fold_expr(&hi).as_int()) else {
            return serr("unroll: loop bounds must be constant");
        };
        if hi - lo > 1024 {
            return serr(format!("unroll: refusing to unroll {} iterations", hi - lo));
        }
        let mut out = Vec::new();
        for v in lo..hi {
            let mut map = HashMap::new();
            map.insert(iter, Expr::int(v));
            // freshen allocations so each unrolled copy binds its own
            out.extend(fold_block(&refresh_bound(&subst_block(&body, &map))));
        }
        self.splice(&path, &mut |_| out.clone())
    }

    /// `fission_after(s)`: splits the loop enclosing the matched
    /// statement into two loops, the first ending after the statement
    /// (paper Fig. 2 `fission_after`, condition §5.8).
    pub fn fission_after(&self, stmt_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented("fission_after", stmt_pat.as_str(), || {
            self.fission_after_impl(&stmt_pat)
        })
    }

    fn fission_after_impl(&self, stmt_pat: &Pattern) -> Result<Procedure, SchedError> {
        let spath = self.find(stmt_pat)?;
        let Some(loop_path) = spath.parent() else {
            return serr("fission_after: statement is not inside a loop");
        };
        let Stmt::For { iter, lo, hi, body } = self.stmt(&loop_path)?.clone() else {
            return serr("fission_after: enclosing statement is not a loop");
        };
        let cut = spath.last().idx + 1;
        if cut >= body.len() {
            return serr("fission_after: nothing after the statement to fission off");
        }
        let (part1, part2) = body.split_at(cut);

        // structural scoping: allocations in part1 must not be used in part2
        let mut alloc_syms = Vec::new();
        visit_stmts(part1, &mut |s| {
            if let Stmt::Alloc { name, .. } | Stmt::WindowDef { name, .. } = s {
                alloc_syms.push(*name);
            }
        });
        let part2_free = free_syms_block(part2);
        if alloc_syms.iter().any(|s| part2_free.contains(s)) {
            return serr("fission_after: cannot fission across an allocation used later");
        }

        let site = self.site(&loop_path)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let lo_e = lift_in_env(&lo, &site.genv, &mut st.reg);
        let hi_e = lift_in_env(&hi, &site.genv, &mut st.reg);
        let eff1 = effect_of_stmts_cached(
            self.proc(),
            part1,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let eff2 = effect_of_stmts_cached(
            self.proc(),
            part2,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let bounds_eff = config_reads_of(&[lo.clone(), hi.clone()]);
        let mut lctx = LowerCtx::new();
        let cond =
            conditions::loop_fission(iter, (&lo_e, &hi_e), &bounds_eff, &eff1, &eff2, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("fission_after({stmt_pat})"))?;

        let iter2 = iter.copy();
        let mut map = HashMap::new();
        map.insert(iter, Expr::var(iter2));
        let loop1 = Stmt::For {
            iter,
            lo: lo.clone(),
            hi: hi.clone(),
            body: part1.to_vec(),
        };
        let loop2 = Stmt::For {
            iter: iter2,
            lo,
            hi,
            body: refresh_bound(&subst_block(part2, &map)),
        };
        self.splice(&loop_path, &mut |_| vec![loop1.clone(), loop2.clone()])
    }

    /// `fuse_loop(i)`: fuses the matched loop with its immediately
    /// following sibling loop (which must have identical bounds); the
    /// safety condition is the same as fission (§5.8).
    pub fn fuse_loop(&self, loop_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented("fuse_loop", loop_pat.as_str(), || {
            self.fuse_loop_impl(&loop_pat)
        })
    }

    fn fuse_loop_impl(&self, loop_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path1 = self.find(loop_pat)?;
        let path2 = path1
            .sibling(1)
            .ok_or_else(|| SchedError::new("fuse_loop: no sibling"))?;
        let Stmt::For {
            iter: x1,
            lo: lo1,
            hi: hi1,
            body: b1,
        } = self.stmt(&path1)?.clone()
        else {
            return serr(format!("fuse_loop: {loop_pat:?} is not a loop"));
        };
        let Ok(Stmt::For {
            iter: x2,
            lo: lo2,
            hi: hi2,
            body: b2,
        }) = self.stmt(&path2).cloned()
        else {
            return serr("fuse_loop: next statement is not a loop");
        };
        if fold_expr(&lo1) != fold_expr(&lo2) || fold_expr(&hi1) != fold_expr(&hi2) {
            return serr("fuse_loop: loop bounds differ");
        }
        // rename the second iterator to the first
        let mut map = HashMap::new();
        map.insert(x2, Expr::var(x1));
        let b2r = subst_block(&b2, &map);

        let site = self.site(&path1)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let lo_e = lift_in_env(&lo1, &site.genv, &mut st.reg);
        let hi_e = lift_in_env(&hi1, &site.genv, &mut st.reg);
        let eff1 = effect_of_stmts_cached(
            self.proc(),
            &b1,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let eff2 = effect_of_stmts_cached(
            self.proc(),
            &b2r,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let bounds_eff = config_reads_of(&[lo1.clone(), hi1.clone()]);
        let mut lctx = LowerCtx::new();
        let cond =
            conditions::loop_fission(x1, (&lo_e, &hi_e), &bounds_eff, &eff1, &eff2, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("fuse_loop({loop_pat})"))?;

        let mut fused_body = b1;
        fused_body.extend(b2r);
        let fused = Stmt::For {
            iter: x1,
            lo: lo1,
            hi: hi1,
            body: fused_body,
        };
        // splice: replace loop1 with fused, delete loop2
        let p = self.splice(&path1, &mut |_| vec![fused.clone()])?;
        let del_path = path2;
        p.splice(&del_path, &mut |_| vec![])
    }

    /// `partition_loop(i, c)`: splits the iteration range at `lo + c`
    /// into two back-to-back loops (always equivalence-preserving when
    /// `lo + c ≤ hi` is provable).
    pub fn partition_loop(
        &self,
        loop_pat: impl Into<Pattern>,
        c: i64,
    ) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented("partition_loop", format!("{loop_pat}, {c}"), || {
            self.partition_loop_impl(&loop_pat, c)
        })
    }

    fn partition_loop_impl(&self, loop_pat: &Pattern, c: i64) -> Result<Procedure, SchedError> {
        if c < 0 {
            return serr("partition_loop: offset must be non-negative");
        }
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, lo, hi, body } = self.stmt(&path)?.clone() else {
            return serr(format!("partition_loop: {loop_pat:?} is not a loop"));
        };
        let mid = fold_expr(&lo.clone().add(Expr::int(c)));
        // provable lo + c ≤ hi
        let site = self.site(&path)?;
        {
            let mut st = crate::handle::lock_state(self.state());
            let mid_e = lift_in_env(&mid, &site.genv, &mut st.reg);
            let hi_e = lift_in_env(&hi, &site.genv, &mut st.reg);
            let mut lctx = LowerCtx::new();
            let cond = lctx.lower_bool(&mid_e.le(hi_e)).definitely();
            let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
            drop(st);
            self.require_valid(hyp, cond, &format!("partition_loop({loop_pat}, {c})"))?;
        }
        let iter2 = iter.copy();
        let mut map = HashMap::new();
        map.insert(iter, Expr::var(iter2));
        let loop1 = Stmt::For {
            iter,
            lo,
            hi: mid.clone(),
            body: body.clone(),
        };
        let loop2 = Stmt::For {
            iter: iter2,
            lo: mid,
            hi,
            body: refresh_bound(&subst_block(&body, &map)),
        };
        self.splice(&path, &mut |_| vec![loop1.clone(), loop2.clone()])
    }

    /// `remove_loop(i)`: replaces `for x do s` by `s` when the loop
    /// definitely runs at least once, the body is idempotent
    /// (`Shadows(a, a)`, §5.8), and `x` is not free in the body.
    pub fn remove_loop(&self, loop_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented("remove_loop", loop_pat.as_str(), || {
            self.remove_loop_impl(&loop_pat)
        })
    }

    fn remove_loop_impl(&self, loop_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, lo, hi, body } = self.stmt(&path)?.clone() else {
            return serr(format!("remove_loop: {loop_pat:?} is not a loop"));
        };
        if free_syms_block(&body).contains(&iter) {
            return serr("remove_loop: iteration variable is used in the body");
        }
        let site = self.site(&path)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let lo_e = lift_in_env(&lo, &site.genv, &mut st.reg);
        let hi_e = lift_in_env(&hi, &site.genv, &mut st.reg);
        let body_eff = effect_of_stmts_cached(
            self.proc(),
            &body,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let mut lctx = LowerCtx::new();
        let cond = conditions::loop_remove(iter, (&lo_e, &hi_e), &body_eff, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, cond, &format!("remove_loop({loop_pat})"))?;
        self.splice(&path, &mut |_| body.clone())
    }

    /// `lift_if`: hoists a loop-invariant conditional out of its
    /// enclosing loop: `for i: if c: s ~> if c: for i: s`.
    pub fn lift_if(&self, if_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let if_pat = if_pat.into();
        self.instrumented("lift_if", if_pat.as_str(), || self.lift_if_impl(&if_pat))
    }

    fn lift_if_impl(&self, if_pat: &Pattern) -> Result<Procedure, SchedError> {
        let if_path = self.find(if_pat)?;
        let Some(loop_path) = if_path.parent() else {
            return serr("lift_if: conditional is not inside a loop");
        };
        let Stmt::For { iter, lo, hi, body } = self.stmt(&loop_path)?.clone() else {
            return serr("lift_if: enclosing statement is not a loop");
        };
        if body.len() != 1 {
            return serr("lift_if: the conditional must be the loop's only statement");
        }
        let Stmt::If {
            cond,
            body: then_b,
            orelse,
        } = body[0].clone()
        else {
            return serr("lift_if: matched statement is not a conditional");
        };
        let mut cond_syms = std::collections::HashSet::new();
        exo_core::visit::visit_expr(&cond, &mut |e| {
            if let Expr::Var(v) = e {
                cond_syms.insert(*v);
            }
        });
        if cond_syms.contains(&iter) {
            return serr("lift_if: condition depends on the iteration variable");
        }
        // the condition's (config) reads must commute with the body
        let site = self.site(&loop_path)?;
        let mut guard = crate::handle::lock_state(self.state());
        let st = &mut *guard;
        let whole_eff = effect_of_stmts_cached(
            self.proc(),
            &body,
            &site.genv,
            &mut st.reg,
            &mut st.check.lock().effects,
        );
        let cond_eff = config_reads_of(std::slice::from_ref(&cond));
        let mut lctx = LowerCtx::new();
        let safe = conditions::commutes(&cond_eff, &whole_eff, &mut lctx);
        let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
        drop(guard);
        self.require_valid(hyp, safe, &format!("lift_if({if_pat})"))?;

        let lifted = Stmt::If {
            cond,
            body: vec![Stmt::For {
                iter,
                lo: lo.clone(),
                hi: hi.clone(),
                body: then_b,
            }],
            orelse: if orelse.is_empty() {
                vec![]
            } else {
                let i2 = iter.copy();
                let mut m = HashMap::new();
                m.insert(iter, Expr::var(i2));
                vec![Stmt::For {
                    iter: i2,
                    lo,
                    hi,
                    body: subst_block(&orelse, &m),
                }]
            },
        };
        self.splice(&loop_path, &mut |_| vec![lifted.clone()])
    }

    /// `add_guard(s, e)`: wraps the matched statement in `if e: s`. The
    /// guard must be provably true whenever the statement executes, so
    /// the rewrite is equivalence-preserving.
    pub fn add_guard(
        &self,
        stmt_pat: impl Into<Pattern>,
        cond: Expr,
    ) -> Result<Procedure, SchedError> {
        let stmt_pat = stmt_pat.into();
        self.instrumented("add_guard", stmt_pat.as_str(), || {
            self.add_guard_impl(&stmt_pat, cond)
        })
    }

    fn add_guard_impl(&self, stmt_pat: &Pattern, cond: Expr) -> Result<Procedure, SchedError> {
        let path = self.find(stmt_pat)?;
        let site = self.site(&path)?;
        {
            let mut st = crate::handle::lock_state(self.state());
            let c_e = lift_in_env(&cond, &site.genv, &mut st.reg);
            let mut lctx = LowerCtx::new();
            let goal = lctx.lower_bool(&c_e).definitely();
            let hyp = Formula::and(vec![site.assumptions(&mut lctx), lctx.assumptions()]);
            drop(st);
            self.require_valid(hyp, goal, &format!("add_guard({stmt_pat})"))?;
        }
        let stmt = self.stmt(&path)?.clone();
        let guarded = Stmt::If {
            cond,
            body: vec![stmt],
            orelse: vec![],
        };
        self.splice(&path, &mut |_| vec![guarded.clone()])
    }

    /// `simplify()`: folds constants throughout the body (always
    /// equivalence-preserving).
    pub fn simplify(&self) -> Procedure {
        // Constant folding cannot fail, but dispatch can reject it (e.g. an
        // exhausted schedule budget); returning the procedure unsimplified
        // is the conservative answer in that case.
        self.instrumented("simplify", "", || {
            Ok(self.with_body(fold_block(self.body())))
        })
        .unwrap_or_else(|_| self.clone())
    }
}

/// The effect of evaluating control expressions: their configuration
/// reads.
fn config_reads_of(exprs: &[Expr]) -> Effect {
    let mut parts = Vec::new();
    for e in exprs {
        exo_core::visit::visit_expr(e, &mut |e| {
            if let Expr::ReadConfig { config, field } = e {
                parts.push(Effect::GlobalRead(*config, *field));
            }
        });
    }
    Effect::seq_all(parts)
}
