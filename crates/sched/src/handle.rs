//! The scheduling handle: an immutable procedure plus the shared state
//! (solver, global registry, equivalence classes) that rewrites consult.
//!
//! Every scheduling operator consumes a [`Procedure`] by reference and
//! returns a *new* `Procedure` — the original is untouched, exactly as in
//! the paper where each primitive "takes a procedure p … and returns an
//! equivalent, rewritten procedure as output" (§3.3).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use exo_obs::{ProvenanceEvent, Verdict};

use exo_analysis::context::{site_ctx, SiteCtx};
use exo_analysis::globals::GlobalReg;
use exo_analysis::SharedCheckCtx;
use exo_core::budget::ResourceBudget;
use exo_core::ir::Proc;
use exo_core::path::{replace_at, stmt_at, StmtPath};
use exo_core::{Block, Stmt, Sym};
use exo_smt::formula::Formula;
use exo_smt::solver::Answer;

use crate::pattern::Pattern;

/// An error raised by a scheduling operator. Scheduling errors are
/// always *safe*: the procedure is unchanged and no unsound rewrite was
/// performed.
#[derive(Clone, Debug)]
pub struct SchedError {
    /// Human-readable description.
    pub message: String,
    /// The scheduling operator that raised the error, once attributed.
    pub op: Option<String>,
    /// The pattern argument the operator was applied to, if any.
    pub pattern: Option<String>,
    /// The underlying cause (e.g. a [`crate::pattern::PatternError`]).
    source: Option<Arc<dyn std::error::Error + Send + Sync + 'static>>,
}

impl SchedError {
    /// A free-form scheduling error. Public so that code *driving* the
    /// scheduler (kernel builders, tests) can fail with a typed error
    /// instead of panicking.
    pub fn new(message: impl Into<String>) -> SchedError {
        SchedError {
            message: message.into(),
            op: None,
            pattern: None,
            source: None,
        }
    }

    /// Attaches an underlying cause, preserved through [`std::error::Error::source`].
    pub fn with_source(
        mut self,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> SchedError {
        self.source = Some(Arc::new(source));
        self
    }

    pub(crate) fn with_pattern(mut self, pattern: &Pattern) -> SchedError {
        self.pattern = Some(pattern.as_str().to_string());
        self
    }

    /// Attributes the error to an operator and its target, keeping any
    /// attribution already made by a more deeply nested operator.
    pub(crate) fn in_op(mut self, op: &str, target: &str) -> SchedError {
        if self.op.is_none() {
            self.op = Some(op.to_string());
        }
        if self.pattern.is_none() && !target.is_empty() {
            self.pattern = Some(target.to_string());
        }
        self
    }
}

// `source` is diagnostic payload only; equality is over the description
// and attribution, so tests can compare errors structurally.
impl PartialEq for SchedError {
    fn eq(&self, other: &SchedError) -> bool {
        self.message == other.message && self.op == other.op && self.pattern == other.pattern
    }
}

impl Eq for SchedError {}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.op, &self.pattern) {
            (Some(op), Some(pat)) => write!(f, "{op}({pat:?}): {}", self.message),
            (Some(op), None) => write!(f, "{op}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|s| s as &(dyn std::error::Error + 'static))
    }
}

pub(crate) fn serr<T>(message: impl Into<String>) -> Result<T, SchedError> {
    Err(SchedError::new(message))
}

/// Locks the scheduling state, recovering from poisoning.
///
/// `SchedState` is only ever mutated through operators that are
/// transactional by construction (a failed or panicking rewrite leaves the
/// `Procedure` untouched and the state holds only monotonic caches), so a
/// panic that poisoned the mutex left no half-applied update behind and the
/// guard can be taken over safely.
pub(crate) fn lock_state(state: &StateRef) -> MutexGuard<'_, SchedState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared scheduling state: the checking context (solver + canonical
/// verdict cache + effect memo), the global registry, and the provenance
/// store tracking which procedures are equivalent modulo which
/// configuration fields (§3.3, §6.2).
///
/// `SchedState::default()` aliases the process-wide
/// [`SharedCheckCtx::process`] context, so safety obligations discharged
/// while scheduling one kernel are cache hits while scheduling the next.
/// Use [`SchedState::isolated`] for benchmarks or tests that need a
/// private cache. Lock ordering is `SchedState → CheckCtx`.
#[derive(Debug)]
pub struct SchedState {
    /// The shared checking context (reusable solver, canonical-formula
    /// verdict cache, per-statement effect memo).
    pub check: SharedCheckCtx,
    /// Canonical names for configuration fields.
    pub reg: GlobalReg,
    /// Fuel/deadline pool scheduling draws from: one unit per operator,
    /// one per solver query, one per symbolic loop pass. Unlimited by
    /// default; see [`SchedState::set_budget`].
    pub budget: ResourceBudget,
    next_class: usize,
}

impl SchedState {
    /// State wired to a specific checking context.
    pub fn with_check(check: SharedCheckCtx) -> SchedState {
        SchedState {
            check,
            reg: GlobalReg::default(),
            budget: ResourceBudget::unlimited(),
            next_class: 0,
        }
    }

    /// State with a private (non-process-wide) checking context, honouring
    /// `EXO_CHECK_CACHE`. Useful for measuring cache behaviour.
    pub fn isolated() -> SchedState {
        SchedState::with_check(SharedCheckCtx::fresh())
    }

    /// Installs one shared fuel/deadline pool across everything this state
    /// drives: operator dispatch, the checking context's solver queries,
    /// and the `ValG` effect-analysis fixpoint. Exhaustion anywhere
    /// degrades to conservative rejection (`Unknown`), never a hang and
    /// never an unsound accept.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.check.lock().set_budget(budget.clone());
        self.reg.set_budget(budget.clone());
        self.budget = budget;
    }
}

impl Default for SchedState {
    /// Aliases the process-wide checking context.
    fn default() -> SchedState {
        SchedState::with_check(SharedCheckCtx::process())
    }
}

/// Shared handle to the scheduling state.
pub type StateRef = Arc<Mutex<SchedState>>;

/// A loop approved for parallel execution by [`Procedure::parallelize`].
///
/// Marks are keyed by the loop's iteration-variable symbol (stable
/// across body rewrites that keep the loop; a mark whose loop was
/// rewritten away is inert). Code generation consumes these via
/// `CodegenCtx::parallel` to emit `#pragma omp parallel for`.
#[derive(Clone, PartialEq, Debug)]
pub struct ParallelMark {
    /// Iteration variable of the approved loop.
    pub iter: Sym,
    /// Buffers needing an OpenMP `reduction(+:…)` clause (empty for a
    /// fully parallel loop).
    pub reductions: Vec<Sym>,
}

/// A schedulable procedure with provenance.
#[derive(Clone, Debug)]
pub struct Procedure {
    proc: Arc<Proc>,
    /// The original procedure this one was scheduled from.
    root: Arc<Proc>,
    state: StateRef,
    /// Equivalence class (procedures derived from the same root).
    class: usize,
    /// Configuration fields modulo which this procedure is equivalent to
    /// its class root.
    polluted: BTreeSet<(Sym, Sym)>,
    /// Number of scheduling directives applied since the root (the
    /// "Sched." column of paper Fig. 7).
    directives: usize,
    /// Schedule provenance: one event per applied rewrite, in order.
    transcript: Vec<ProvenanceEvent>,
    /// Loops approved for parallel execution, in approval order.
    parallel: Vec<ParallelMark>,
}

impl Procedure {
    /// Wraps a procedure as the root of a new equivalence class.
    pub fn new(proc: Arc<Proc>) -> Procedure {
        Procedure::with_state(proc, Arc::new(Mutex::new(SchedState::default())))
    }

    /// Wraps a procedure sharing existing scheduling state (so solver
    /// caches and canonical global names are reused).
    pub fn with_state(proc: Arc<Proc>, state: StateRef) -> Procedure {
        let class = {
            let mut st = lock_state(&state);
            st.next_class += 1;
            st.next_class
        };
        Procedure {
            root: Arc::clone(&proc),
            proc,
            state,
            class,
            polluted: BTreeSet::new(),
            directives: 0,
            transcript: Vec::new(),
            parallel: Vec::new(),
        }
    }

    /// The underlying IR.
    pub fn proc(&self) -> &Arc<Proc> {
        &self.proc
    }

    /// The procedure body.
    pub fn body(&self) -> &Block {
        &self.proc.body
    }

    /// The shared scheduling state.
    pub fn state(&self) -> &StateRef {
        &self.state
    }

    /// Installs a fuel/deadline budget on the shared scheduling state (see
    /// [`SchedState::set_budget`]). Affects every procedure sharing the
    /// state, from the next operator onward.
    pub fn set_budget(&self, budget: ResourceBudget) {
        lock_state(&self.state).set_budget(budget);
    }

    /// Number of scheduling directives applied so far.
    pub fn directives(&self) -> usize {
        self.directives
    }

    /// The schedule transcript: one [`ProvenanceEvent`] per rewrite
    /// applied since the root, in application order.
    pub fn transcript(&self) -> &[ProvenanceEvent] {
        &self.transcript
    }

    /// The transcript rendered as an indented human-readable listing.
    pub fn transcript_text(&self) -> String {
        exo_obs::render_transcript(&self.proc.name.name(), &self.transcript)
    }

    /// Loops approved for parallel execution by
    /// [`Procedure::parallelize`], in approval order. Feed these into
    /// `exo_codegen::CodegenCtx::parallel` (keyed by iteration-variable
    /// symbol) to emit `#pragma omp parallel for`.
    pub fn parallel_marks(&self) -> &[ParallelMark] {
        &self.parallel
    }

    /// Configuration fields modulo which this procedure is equivalent to
    /// the procedure it was derived from.
    pub fn polluted(&self) -> &BTreeSet<(Sym, Sym)> {
        &self.polluted
    }

    /// Whether `other` was derived from the same root (and is therefore
    /// provably equivalent modulo the union of both pollution sets).
    pub fn same_class(&self, other: &Procedure) -> bool {
        Arc::ptr_eq(&self.state, &other.state) && self.class == other.class
    }

    /// The original (root) procedure this handle was scheduled from.
    pub fn root(&self) -> &Arc<Proc> {
        &self.root
    }

    /// Whether this procedure's scheduling root is the given procedure.
    pub(crate) fn root_is(&self, other: &Arc<Proc>) -> bool {
        Arc::ptr_eq(&self.root, other)
    }

    /// Looks up the symbol of the first loop iterator with the given
    /// spelling (useful for building window expressions after splits).
    pub fn iter_sym(&self, name: &str) -> Option<Sym> {
        let mut found = None;
        exo_core::visit::visit_stmts(self.body(), &mut |s| {
            if let Stmt::For { iter, .. } = s {
                if iter.name() == name && found.is_none() {
                    found = Some(*iter);
                }
            }
        });
        found
    }

    /// Pretty-prints the procedure.
    pub fn show(&self) -> String {
        exo_core::printer::proc_to_string(&self.proc)
    }

    // ------------------------------------------------------------------
    // internals used by the operator modules
    // ------------------------------------------------------------------

    pub(crate) fn find(&self, pattern: &Pattern) -> Result<StmtPath, SchedError> {
        let pat = pattern.parsed().map_err(|e| {
            SchedError::new(e.message.clone())
                .with_pattern(pattern)
                .with_source(e)
        })?;
        pat.find(&self.proc.body).map_err(|e| {
            SchedError::new(e.message.clone())
                .with_pattern(pattern)
                .with_source(e)
        })
    }

    pub(crate) fn stmt(&self, path: &StmtPath) -> Result<&Stmt, SchedError> {
        stmt_at(&self.proc.body, path)
            .ok_or_else(|| SchedError::new(format!("invalid statement path {path}")))
    }

    /// Splices new statements in place of the one at `path`, producing a
    /// derived procedure (one directive applied, same pollution).
    pub(crate) fn splice(
        &self,
        path: &StmtPath,
        f: &mut dyn FnMut(&Stmt) -> Vec<Stmt>,
    ) -> Result<Procedure, SchedError> {
        let body = replace_at(&self.proc.body, path, f)
            .ok_or_else(|| SchedError::new(format!("invalid statement path {path}")))?;
        Ok(self.with_body(body))
    }

    /// Derives a procedure with a new body.
    pub(crate) fn with_body(&self, body: Block) -> Procedure {
        let proc = Arc::new(Proc {
            body,
            ..(*self.proc).clone()
        });
        Procedure {
            proc,
            root: Arc::clone(&self.root),
            state: Arc::clone(&self.state),
            class: self.class,
            polluted: self.polluted.clone(),
            directives: self.directives + 1,
            transcript: self.transcript.clone(),
            parallel: self.parallel.clone(),
        }
    }

    /// Derives a procedure with a wholly new IR (used by signature-level
    /// rewrites such as `set_precision` on arguments).
    pub(crate) fn with_proc(&self, proc: Proc) -> Procedure {
        Procedure {
            proc: Arc::new(proc),
            root: Arc::clone(&self.root),
            state: Arc::clone(&self.state),
            class: self.class,
            polluted: self.polluted.clone(),
            directives: self.directives + 1,
            transcript: self.transcript.clone(),
            parallel: self.parallel.clone(),
        }
    }

    /// Derives a procedure with one more parallel-approval mark (same
    /// body; one directive applied).
    pub(crate) fn with_parallel(&self, mark: ParallelMark) -> Procedure {
        let mut derived = Procedure {
            proc: Arc::clone(&self.proc),
            root: Arc::clone(&self.root),
            state: Arc::clone(&self.state),
            class: self.class,
            polluted: self.polluted.clone(),
            directives: self.directives + 1,
            transcript: self.transcript.clone(),
            parallel: self.parallel.clone(),
        };
        derived.parallel.retain(|m| m.iter != mark.iter);
        derived.parallel.push(mark);
        derived
    }

    /// Total statement count of the current body (all nesting levels).
    pub(crate) fn stmt_count(&self) -> usize {
        let mut n = 0usize;
        exo_core::visit::visit_stmts(self.body(), &mut |_| n += 1);
        n
    }

    /// Runs one scheduling operator under provenance instrumentation.
    ///
    /// Captures the statement-count delta, solver-query delta, and
    /// wall-clock duration of `f`; on success the event is appended to
    /// the derived procedure's transcript, on rejection it is logged to
    /// the global registry only (the procedure is unchanged). Every
    /// public operator routes through here.
    pub(crate) fn instrumented(
        &self,
        op: &str,
        target: impl Into<String>,
        f: impl FnOnce() -> Result<Procedure, SchedError>,
    ) -> Result<Procedure, SchedError> {
        let target = target.into();
        let pre_stmts = self.stmt_count();
        let (pre_check, budget) = {
            let st = lock_state(&self.state);
            (st.check.stats(), st.budget.clone())
        };
        // Attribution: everything this operator causes downstream —
        // solver queries, cache hits/misses, effect extraction, lint
        // probes, simulated runs — is tagged with (op, target), and the
        // operator's span parents theirs in the trace tree.
        let _attr = exo_obs::AttrGuard::enter(op, &target);
        let span = exo_obs::Span::enter(format!("sched.{op}"))
            .with_field("target", exo_obs::Json::Str(target.clone()));
        let start = Instant::now();
        // One fuel unit per operator; an exhausted budget rejects the
        // rewrite up front (conservative, transactional) instead of
        // starting work it cannot finish.
        let result = if let Err(e) = budget.charge(1) {
            exo_obs::counter_add("sched.budget_rejected", 1);
            Err(SchedError::new(format!("schedule budget exhausted: {e}")).with_source(e))
        } else {
            // Residual internal panics must not cross the library boundary:
            // catch them here and surface a typed `SchedError` naming the
            // operator and target. `self` is untouched (operators derive new
            // `Procedure`s from persistent `Arc`s), and `SchedState` holds
            // only monotonic caches, so unwinding mid-operator leaves every
            // pre-rewrite handle fully usable — the chain is transactional.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
                let msg = Self::panic_message(payload.as_ref());
                exo_obs::counter_add("sched.panic_caught", 1);
                Err(SchedError::new(format!("internal panic: {msg}")))
            })
        };
        let duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let post_check = lock_state(&self.state).check.stats();
        let smt_queries = post_check.queries.saturating_sub(pre_check.queries);
        let cache_hits = post_check.hits.saturating_sub(pre_check.hits);
        drop(span);
        exo_obs::counter_add(&format!("sched.op.{op}"), 1);
        exo_obs::record_hist("sched.op_us", duration_us);
        match result {
            Ok(mut derived) => {
                derived.transcript.push(ProvenanceEvent {
                    op: op.to_string(),
                    target,
                    verdict: Verdict::Accepted,
                    pre_stmts,
                    post_stmts: derived.stmt_count(),
                    smt_queries,
                    cache_hits,
                    duration_us,
                });
                Ok(derived)
            }
            Err(e) => {
                let e = e.in_op(op, &target);
                exo_obs::counter_add("sched.rejected", 1);
                let rejected = ProvenanceEvent {
                    op: op.to_string(),
                    target,
                    verdict: Verdict::Rejected(e.message.clone()),
                    pre_stmts,
                    post_stmts: pre_stmts,
                    smt_queries,
                    cache_hits,
                    duration_us,
                };
                exo_obs::event(
                    &format!("sched.rejected.{op}"),
                    match rejected.to_json() {
                        exo_obs::Json::Obj(fields) => fields,
                        _ => Vec::new(),
                    },
                );
                Err(e)
            }
        }
    }

    /// Best-effort rendering of a caught panic payload (`panic!` with a
    /// string literal or format string covers essentially all of std).
    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Records additional pollution on a derived procedure.
    pub(crate) fn pollute(mut self, fields: impl IntoIterator<Item = (Sym, Sym)>) -> Procedure {
        self.polluted.extend(fields);
        self
    }

    /// Builds the [`SiteCtx`] for a path.
    pub(crate) fn site(&self, path: &StmtPath) -> Result<SiteCtx, SchedError> {
        let mut st = lock_state(&self.state);
        site_ctx(&self.proc, path, &mut st.reg)
            .ok_or_else(|| SchedError::new(format!("invalid statement path {path}")))
    }

    /// Checks that `condition` is valid under the site assumptions and
    /// lowering side constraints; fails safe on `Unknown`.
    pub(crate) fn require_valid(
        &self,
        hyp: Formula,
        condition: Formula,
        what: &str,
    ) -> Result<(), SchedError> {
        let st = lock_state(&self.state);
        let goal = hyp.implies(condition);
        match st.check.check_valid(&goal) {
            Answer::Yes => Ok(()),
            Answer::No => serr(format!("{what}: safety condition refuted")),
            Answer::Unknown => serr(format!("{what}: solver gave up (failing safe)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::build::ProcBuilder;
    use exo_core::ir::Expr;
    use exo_core::types::DataType;

    fn simple() -> Procedure {
        let mut b = ProcBuilder::new("p");
        let a = b.tensor("A", DataType::F32, vec![Expr::int(8)]);
        let i = b.begin_for("i", Expr::int(0), Expr::int(8));
        b.assign(a, vec![Expr::var(i)], Expr::float(0.0));
        b.end_for();
        Procedure::new(b.finish())
    }

    #[test]
    fn find_and_stmt() {
        let p = simple();
        let path = p.find(&Pattern::from("for i in _: _")).unwrap();
        assert!(matches!(p.stmt(&path).unwrap(), Stmt::For { .. }));
        assert!(p.find(&Pattern::from("for z in _: _")).is_err());
    }

    #[test]
    fn splice_derives_new_procedure() {
        let p = simple();
        let path = p.find(&Pattern::from("A[_] = _")).unwrap();
        let q = p
            .splice(&path, &mut |s| vec![s.clone(), Stmt::Pass])
            .unwrap();
        assert_eq!(q.directives(), 1);
        assert_eq!(p.directives(), 0);
        assert!(p.same_class(&q));
        // original unchanged
        let orig_for = p.find(&Pattern::from("for i in _: _")).unwrap();
        match p.stmt(&orig_for).unwrap() {
            Stmt::For { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("original `for i` should survive the splice unchanged, got {other:?}"),
        }
    }

    #[test]
    fn separate_roots_are_different_classes() {
        let p = simple();
        let q = simple();
        assert!(!p.same_class(&q));
    }

    #[test]
    fn transcript_records_applied_rewrites_only() {
        let p = simple();
        assert!(p.transcript().is_empty());
        let q = p.split("for i in _: _", 4, "io", "ii").unwrap();
        assert_eq!(q.transcript().len(), 1);
        let e = &q.transcript()[0];
        assert_eq!(e.op, "split");
        assert!(e.verdict.is_accepted());
        assert!(e.post_stmts > e.pre_stmts, "{e:?}");
        // a rejected rewrite leaves the source transcript untouched
        assert!(q.split("for z in _: _", 4, "a", "b").is_err());
        assert_eq!(q.transcript().len(), 1);
        // chained rewrites accumulate in order
        let r = q.reorder("for io in _: _", "ii").unwrap();
        let ops: Vec<&str> = r.transcript().iter().map(|e| e.op.as_str()).collect();
        assert_eq!(ops, ["split", "reorder"]);
        assert!(r.transcript_text().contains("1. split("));
        // the original handle is untouched
        assert!(p.transcript().is_empty());
    }
}
