//! The `parallelize` scheduling operator: user-directed loop
//! parallelization, gated on the `exo-lint` loop-carried dependence
//! analysis.
//!
//! `parallelize(pat)` locates a `for` loop, asks
//! [`exo_lint::classify_loop`] for its dependence verdict (through the
//! shared checking context, so repeated attempts and prior lint runs
//! are cache hits), and:
//!
//! * `Parallel` — records a [`ParallelMark`] with no reductions;
//! * `ReductionParallel` — records a mark listing the buffers that
//!   need an OpenMP `reduction(+:…)` clause;
//! * `Sequential` — rejects with a [`SchedError`] that embeds the
//!   concrete witness pair of conflicting accesses when the solver
//!   confirmed one (or the fail-safe explanation when it gave up).
//!
//! The loop body is left untouched: the mark travels on the
//! [`Procedure`] and is consumed by `exo-codegen` (via
//! `CodegenCtx::parallel`) when emitting C.

use exo_core::ir::Stmt;
use exo_lint::LoopVerdict;

use crate::handle::{lock_state, serr, ParallelMark, Procedure, SchedError};
use crate::pattern::Pattern;

impl Procedure {
    /// `parallelize(pat)`: approves the loop matched by `pat` for
    /// parallel execution.
    ///
    /// # Errors
    ///
    /// Fails if `pat` does not name a `for` loop, or if the dependence
    /// analysis cannot prove distinct iterations independent
    /// (`Sequential` verdict — the error carries the witness pair of
    /// conflicting accesses when one was confirmed).
    pub fn parallelize(&self, loop_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let loop_pat = loop_pat.into();
        self.instrumented("parallelize", loop_pat.as_str(), || {
            self.parallelize_impl(&loop_pat)
        })
    }

    fn parallelize_impl(&self, loop_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(loop_pat)?;
        let Stmt::For { iter, .. } = self.stmt(&path)? else {
            return serr(format!("parallelize: {loop_pat:?} is not a loop"));
        };
        let iter = *iter;
        let verdict = {
            let mut guard = lock_state(self.state());
            let st = &mut *guard;
            let check = st.check.clone();
            exo_lint::classify_loop(self.proc(), &path, &check, &mut st.reg)
                .map_err(|e| SchedError::new(e.message.clone()).with_source(e))?
        };
        match verdict {
            LoopVerdict::Parallel => Ok(self.with_parallel(ParallelMark {
                iter,
                reductions: Vec::new(),
            })),
            LoopVerdict::ReductionParallel { bufs } => Ok(self.with_parallel(ParallelMark {
                iter,
                reductions: bufs,
            })),
            LoopVerdict::Sequential { witness } => match witness {
                Some(w) => serr(format!(
                    "parallelize: loop over {} carries a dependence — {w}",
                    iter.name()
                )),
                None => serr(format!(
                    "parallelize: could not prove iterations of {} independent \
                     (failing safe)",
                    iter.name()
                )),
            },
        }
    }
}
