//! Procedure-level scheduling operators (paper §3.3): `inline` and
//! `call_eqv`. The inverse of `inline` — `replace` — lives in
//! [`crate::unify`].

use std::collections::HashMap;

use exo_core::ir::{ArgType, Expr, Stmt};
use exo_core::visit::{refresh_bound, rename_syms_block, subst_block};
use exo_core::Sym;

use crate::handle::{serr, Procedure, SchedError};
use crate::pattern::Pattern;

impl Procedure {
    /// `inline(f(_))`: replaces a call with the callee's body, with
    /// actuals substituted for formals (always equivalence-preserving;
    /// the callee's preconditions were checked at the call site).
    pub fn inline(&self, call_pat: impl Into<Pattern>) -> Result<Procedure, SchedError> {
        let call_pat = call_pat.into();
        self.instrumented("inline", call_pat.as_str(), || self.inline_impl(&call_pat))
    }

    fn inline_impl(&self, call_pat: &Pattern) -> Result<Procedure, SchedError> {
        let path = self.find(call_pat)?;
        let Stmt::Call { proc: callee, args } = self.stmt(&path)?.clone() else {
            return serr(format!("inline: {call_pat:?} is not a call"));
        };
        let mut ctrl_map: HashMap<Sym, Expr> = HashMap::new();
        let mut data_map: HashMap<Sym, Sym> = HashMap::new();
        let mut prelude: Vec<Stmt> = Vec::new();
        for (formal, actual) in callee.args.iter().zip(&args) {
            match &formal.ty {
                ArgType::Ctrl(_) => {
                    ctrl_map.insert(formal.name, actual.clone());
                }
                ArgType::Scalar { .. } | ArgType::Tensor { .. } => match actual {
                    Expr::Read { buf, idx } if idx.is_empty() => {
                        data_map.insert(formal.name, *buf);
                    }
                    Expr::Window { .. } => {
                        // bind the window to a fresh name
                        let w = Sym::new(formal.name.name());
                        prelude.push(Stmt::WindowDef {
                            name: w,
                            rhs: actual.clone(),
                        });
                        data_map.insert(formal.name, w);
                    }
                    Expr::Read { buf, idx } => {
                        // point access: a 0-d window
                        let w = Sym::new(formal.name.name());
                        prelude.push(Stmt::WindowDef {
                            name: w,
                            rhs: Expr::Window {
                                buf: *buf,
                                coords: idx
                                    .iter()
                                    .map(|e| exo_core::WAccess::Point(e.clone()))
                                    .collect(),
                            },
                        });
                        data_map.insert(formal.name, w);
                    }
                    _ => return serr("inline: cannot inline a call with a scalar rvalue argument"),
                },
            }
        }
        // rename data formals, substitute control formals, freshen binders
        let body = rename_syms_block(&callee.body, &data_map);
        let body = subst_block(&body, &ctrl_map);
        let body = refresh_bound(&body);
        let mut out = prelude;
        out.extend(body);
        let out = crate::fold::fold_block(&out);
        self.splice(&path, &mut |_| out.clone())
    }

    /// `call_eqv(f(_), f')`: replaces a call to `f` with a call to `f'`,
    /// which must have been derived from the same scheduling root
    /// (provenance-tracked equivalence, §3.3). If the pair is only
    /// equivalent modulo some configuration fields, the context-extension
    /// rule (§6.2) must hold at the call site and the pollution is
    /// recorded.
    pub fn call_eqv(
        &self,
        call_pat: impl Into<Pattern>,
        new_callee: &Procedure,
    ) -> Result<Procedure, SchedError> {
        let call_pat = call_pat.into();
        self.instrumented(
            "call_eqv",
            format!("{call_pat}, {}", new_callee.proc().name.name()),
            || self.call_eqv_impl(&call_pat, new_callee),
        )
    }

    fn call_eqv_impl(
        &self,
        call_pat: &Pattern,
        new_callee: &Procedure,
    ) -> Result<Procedure, SchedError> {
        let path = self.find(call_pat)?;
        let Stmt::Call { proc: old, args } = self.stmt(&path)?.clone() else {
            return serr(format!("call_eqv: {call_pat:?} is not a call"));
        };
        // provenance: the new callee must be in an equivalence class with
        // a procedure alpha-equal to the old callee, i.e. share our state
        // and class with a known rewrite chain. We accept either: the new
        // callee's class root is the old callee (common case: the user
        // scheduled `old` into `new`), or both are the same Arc.
        if !new_callee.same_ir_signature(&old) {
            return serr("call_eqv: signatures differ");
        }
        if !new_callee.derived_from(&old) {
            return serr(
                "call_eqv: no provenance relating the procedures \
                 (the replacement must be scheduled from the original)",
            );
        }
        let polluted: Vec<(Sym, Sym)> = new_callee.polluted().iter().copied().collect();
        let new_stmt = Stmt::Call {
            proc: new_callee.proc().clone(),
            args,
        };
        let rewritten = self.splice(&path, &mut |_| vec![new_stmt.clone()])?;
        if !polluted.is_empty() {
            let ok = {
                let mut st = crate::handle::lock_state(self.state());
                let st = &mut *st;
                exo_analysis::context::context_extension_ok(
                    rewritten.proc(),
                    &path,
                    &polluted,
                    &mut st.reg,
                    &st.check,
                )
            };
            if !ok {
                return serr(
                    "call_eqv: the callee pair differs modulo configuration state \
                     that later code may read",
                );
            }
        }
        Ok(rewritten.pollute(polluted))
    }

    /// Whether this procedure's ultimate scheduling root is `other` (or
    /// this procedure *is* `other`).
    pub(crate) fn derived_from(&self, other: &std::sync::Arc<exo_core::Proc>) -> bool {
        if std::sync::Arc::ptr_eq(self.proc(), other) {
            return true;
        }
        self.root_is(other)
    }

    fn same_ir_signature(&self, other: &exo_core::Proc) -> bool {
        let a = &self.proc().args;
        let b = &other.args;
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                matches!(
                    (&x.ty, &y.ty),
                    (ArgType::Ctrl(_), ArgType::Ctrl(_))
                        | (ArgType::Scalar { .. }, ArgType::Scalar { .. })
                        | (ArgType::Tensor { .. }, ArgType::Tensor { .. })
                )
            })
    }
}
