//! Simulation reports.

use crate::Unit;

/// Busy cycles of one functional unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitBusy {
    /// The unit.
    pub unit: Unit,
    /// Cycles the unit spent executing.
    pub busy_cycles: u64,
}

/// The result of simulating one instruction trace.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// `macs / (cycles · peak)` — the quantity plotted in paper Fig. 4.
    pub utilization: f64,
    /// Instructions executed.
    pub instructions: u64,
    /// Pipeline flushes caused by configuration instructions.
    pub flushes: u64,
    /// DMA bytes moved.
    pub bytes_moved: u64,
    /// Per-unit busy cycles.
    pub busy: Vec<UnitBusy>,
}

impl SimReport {
    /// Busy cycles of a unit (0 if never used).
    pub fn busy_of(&self, unit: Unit) -> u64 {
        self.busy
            .iter()
            .find(|b| b.unit == unit)
            .map(|b| b.busy_cycles)
            .unwrap_or(0)
    }
}
