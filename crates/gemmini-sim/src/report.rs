//! Simulation reports.

use exo_obs::Json;

use crate::Unit;

/// Busy cycles of one functional unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitBusy {
    /// The unit.
    pub unit: Unit,
    /// Cycles the unit spent executing.
    pub busy_cycles: u64,
}

/// The result of simulating one instruction trace.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// `macs / (cycles · peak)` — the quantity plotted in paper Fig. 4.
    pub utilization: f64,
    /// Instructions executed.
    pub instructions: u64,
    /// Pipeline flushes caused by configuration instructions.
    pub flushes: u64,
    /// DMA bytes moved.
    pub bytes_moved: u64,
    /// `true` when a `ResourceBudget` stopped the run before the trace was
    /// fully consumed — the counts above cover only the simulated prefix
    /// and must not be compared against complete runs.
    pub truncated: bool,
    /// Per-unit busy cycles.
    pub busy: Vec<UnitBusy>,
}

impl SimReport {
    /// Busy cycles of a unit (0 if never used).
    pub fn busy_of(&self, unit: Unit) -> u64 {
        self.busy
            .iter()
            .find(|b| b.unit == unit)
            .map(|b| b.busy_cycles)
            .unwrap_or(0)
    }

    /// JSON form of the report (one object, units in a stable order).
    pub fn to_json(&self) -> Json {
        let mut busy: Vec<&UnitBusy> = self.busy.iter().collect();
        busy.sort_by_key(|b| b.unit.name());
        Json::obj(vec![
            ("type".into(), Json::Str("sim_report".into())),
            ("sim".into(), Json::Str("gemmini".into())),
            ("cycles".into(), Json::uint(self.cycles)),
            ("macs".into(), Json::uint(self.macs)),
            ("utilization".into(), Json::Float(self.utilization)),
            ("instructions".into(), Json::uint(self.instructions)),
            ("flushes".into(), Json::uint(self.flushes)),
            ("bytes_moved".into(), Json::uint(self.bytes_moved)),
            ("truncated".into(), Json::Bool(self.truncated)),
            (
                "busy".into(),
                Json::obj(
                    busy.iter()
                        .map(|b| (b.unit.name().to_string(), Json::uint(b.busy_cycles)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable_and_stable() {
        let r = SimReport {
            cycles: 1000,
            macs: 4096,
            utilization: 0.25,
            instructions: 12,
            flushes: 1,
            bytes_moved: 2048,
            truncated: false,
            busy: vec![
                UnitBusy {
                    unit: Unit::Store,
                    busy_cycles: 10,
                },
                UnitBusy {
                    unit: Unit::Execute,
                    busy_cycles: 900,
                },
            ],
        };
        let parsed = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("cycles").and_then(Json::as_int), Some(1000));
        assert_eq!(parsed.get("utilization").and_then(Json::as_f64), Some(0.25));
        let busy = parsed.get("busy").unwrap();
        assert_eq!(busy.get("execute").and_then(Json::as_int), Some(900));
        assert_eq!(busy.get("store").and_then(Json::as_int), Some(10));
    }
}
