//! # gemmini-sim
//!
//! A cycle-approximate simulator for a Gemmini-class accelerator
//! (16×16 weight-stationary systolic array, 256 KiB scratchpad, 64 KiB
//! accumulator), standing in for the RTL/FireSim measurements of paper
//! §7.1 (Fig. 4).
//!
//! The model captures exactly the mechanisms the paper's evaluation
//! turns on:
//!
//! * **Decoupled queues** — loads (`mvin*`), execution (`matmul`,
//!   `zero_acc`), and stores (`mvout*`) issue to three in-order queues
//!   that run concurrently; data dependencies (RAW/WAW/WAR on scratchpad
//!   and accumulator ranges) are what actually serialize them. Good
//!   schedules overlap data movement with compute.
//! * **Configuration flushes** — `config_ld`/`config_st` wait for *all*
//!   in-flight operations and stall the pipe (paper §2: "instructions to
//!   configure such state usually flush the accelerator pipeline"), so
//!   hoisting configuration writes out of loops (§2.4) is visible as a
//!   large utilization gain.
//! * **Software dispatch cost** — each instruction is issued by the host
//!   CPU; the per-instruction cost bounds software scheduling. The
//!   *hardware loop unroller* mode ([`SimConfig::hardware_unroller`])
//!   removes it, modeling Gemmini's optional dynamically-scheduled
//!   hardware at extra area/power — it should outperform even the best
//!   software schedule, as in Fig. 4.

// Panic-free library surface: input-reachable failures must be typed
// errors, not aborts. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use exo_core::budget::ResourceBudget;
#[cfg(test)]
use exo_interp::TraceArg;
use exo_interp::{HwOp, TensorRef};

mod report;
pub use report::{SimReport, UnitBusy};

/// The systolic array dimension.
pub const DIM: u64 = 16;
/// Peak multiply-accumulates per cycle (16×16 PEs).
pub const PEAK_MACS_PER_CYCLE: u64 = DIM * DIM;

/// Timing parameters of the simulated accelerator.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Host cycles to dispatch one instruction (RoCC issue + loop
    /// overhead in the surrounding C code). Zero in hardware-unroller
    /// mode.
    pub dispatch_cost: u64,
    /// Cycles a configuration instruction stalls after draining.
    pub flush_cost: u64,
    /// DMA startup cycles per `mvin`/`mvout`.
    pub dma_startup: u64,
    /// DMA bus width in bytes per cycle.
    pub bus_bytes: u64,
    /// Issue-to-issue cycles of one systolic-array pass (weight preload
    /// overlapped with compute when back-to-back).
    pub matmul_interval: u64,
    /// Extra cycles for the first pass after the pipe was idle.
    pub matmul_startup: u64,
}

impl SimConfig {
    /// The software-controlled accelerator (both the handwritten library
    /// and exo-rs schedules run in this mode).
    pub fn software() -> SimConfig {
        SimConfig {
            dispatch_cost: 6,
            flush_cost: 40,
            dma_startup: 10,
            bus_bytes: 16,
            matmul_interval: DIM + 2,
            matmul_startup: 2 * DIM,
        }
    }

    /// Gemmini's optional hardware loop unrollers: dedicated hardware
    /// dispatches the inner loops, removing the per-instruction host
    /// cost and most startup overhead (at the cost of chip area/power
    /// and scheduling flexibility — paper §7.1).
    pub fn hardware_unroller() -> SimConfig {
        SimConfig {
            dispatch_cost: 0,
            flush_cost: 40,
            dma_startup: 2,
            bus_bytes: 16,
            matmul_interval: DIM,
            matmul_startup: DIM,
        }
    }
}

/// Which functional unit an instruction occupies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Unit {
    /// DMA load engine (`mvin`, `mvin_acc`).
    Load,
    /// Systolic array (`matmul`, `zero_acc`).
    Execute,
    /// DMA store engine (`mvout`).
    Store,
}

impl Unit {
    /// Stable lowercase name (used in JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            Unit::Load => "load",
            Unit::Execute => "execute",
            Unit::Store => "store",
        }
    }
}

#[derive(Clone, Debug)]
struct Access {
    buf: usize,
    lo: u64,
    hi: u64, // exclusive
    time: u64,
}

fn overlaps(a: &Access, buf: usize, lo: u64, hi: u64) -> bool {
    a.buf == buf && a.lo < hi && lo < a.hi
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    cpu_time: u64,
    unit_free: HashMap<Unit, u64>,
    unit_busy: HashMap<Unit, u64>,
    writers: Vec<Access>,
    readers: Vec<Access>,
    last_flush: u64,
    finish: u64,
    macs: u64,
    instructions: u64,
    flushes: u64,
    bytes_moved: u64,
    budget: ResourceBudget,
}

impl Simulator {
    /// Creates a simulator with the given timing model.
    pub fn new(cfg: SimConfig) -> Simulator {
        Simulator {
            cfg,
            cpu_time: 0,
            unit_free: HashMap::new(),
            unit_busy: HashMap::new(),
            writers: Vec::new(),
            readers: Vec::new(),
            last_flush: 0,
            finish: 0,
            macs: 0,
            instructions: 0,
            flushes: 0,
            bytes_moved: 0,
            budget: ResourceBudget::unlimited(),
        }
    }

    /// Installs a fuel/deadline pool on the instruction loop (one unit per
    /// trace instruction). Exhaustion stops simulation early and marks the
    /// report [`SimReport::truncated`] instead of hanging on a runaway
    /// trace.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Simulator {
        self.budget = budget;
        self
    }

    /// Runs a full instruction trace and produces the report.
    pub fn run(mut self, trace: &[HwOp]) -> SimReport {
        let span = exo_obs::Span::enter("gemmini_sim.run");
        exo_obs::counter_add("gemmini_sim.runs", 1);
        exo_obs::attr::counter_add_by_op("gemmini_sim.runs", 1);
        let mut truncated = false;
        for op in trace {
            if self.budget.charge(1).is_err() {
                exo_obs::counter_add("gemmini_sim.budget_stops", 1);
                truncated = true;
                break;
            }
            self.step(op);
        }
        let cycles = self.finish.max(self.cpu_time).max(1);
        let util = self.macs as f64 / (cycles * PEAK_MACS_PER_CYCLE) as f64;
        drop(
            span.with_field("instructions", exo_obs::Json::uint(self.instructions))
                .with_field("cycles", exo_obs::Json::uint(cycles))
                .with_field("utilization", exo_obs::Json::Float(util)),
        );
        SimReport {
            cycles,
            macs: self.macs,
            utilization: util,
            instructions: self.instructions,
            flushes: self.flushes,
            bytes_moved: self.bytes_moved,
            truncated,
            busy: self
                .unit_busy
                .iter()
                .map(|(&u, &b)| UnitBusy {
                    unit: u,
                    busy_cycles: b,
                })
                .collect(),
        }
    }

    fn step(&mut self, op: &HwOp) {
        self.instructions += 1;
        match op.instr.as_str() {
            s if s.starts_with("gemmini_config") => self.config(),
            s if s.starts_with("gemmini_mvin") => {
                self.dma(op, Unit::Load);
            }
            s if s.starts_with("gemmini_mvout") => {
                self.dma(op, Unit::Store);
            }
            "gemmini_zero_acc" => self.zero(op),
            "gemmini_matmul" => self.matmul(op),
            _ => {
                // unknown instructions execute as 1-cycle no-ops on the
                // execute queue (e.g. fences, prefetch escape hatches)
                let issue = self.issue(1);
                let start = issue.max(self.unit_available(Unit::Execute));
                self.complete(Unit::Execute, start, 1);
            }
        }
    }

    fn issue(&mut self, n_instrs: u64) -> u64 {
        self.cpu_time += self.cfg.dispatch_cost * n_instrs;
        self.cpu_time
    }

    fn unit_available(&self, u: Unit) -> u64 {
        self.unit_free
            .get(&u)
            .copied()
            .unwrap_or(0)
            .max(self.last_flush)
    }

    fn complete(&mut self, u: Unit, start: u64, cost: u64) -> u64 {
        let end = start + cost;
        self.unit_free.insert(u, end);
        *self.unit_busy.entry(u).or_insert(0) += cost;
        self.finish = self.finish.max(end);
        end
    }

    fn config(&mut self) {
        // drain everything, then stall
        let issue = self.issue(1);
        let drain = self
            .unit_free
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(issue);
        self.last_flush = drain + self.cfg.flush_cost;
        self.cpu_time = self.cpu_time.max(self.last_flush);
        self.finish = self.finish.max(self.last_flush);
        self.flushes += 1;
    }

    fn dma(&mut self, op: &HwOp, unit: Unit) -> u64 {
        let (reads, writes, bytes, rows) = dma_ranges(op);
        self.bytes_moved += bytes;
        let issue = self.issue(1);
        let dep = self.dep_time(&reads, &writes);
        let start = issue.max(self.unit_available(unit)).max(dep);
        let cost = self.cfg.dma_startup
            + rows * ((bytes / rows.max(1)).div_ceil(self.cfg.bus_bytes)).max(1);
        let end = self.complete(unit, start, cost);
        self.note(&reads, &writes, end);
        end
    }

    fn zero(&mut self, op: &HwOp) {
        let writes = tensor_ranges(op, &["dst"]);
        let issue = self.issue(1);
        let dep = self.dep_time(&[], &writes);
        let start = issue.max(self.unit_available(Unit::Execute)).max(dep);
        let end = self.complete(Unit::Execute, start, 2);
        self.note(&[], &writes, end);
    }

    fn matmul(&mut self, op: &HwOp) {
        let n = op.int_arg("n").unwrap_or(DIM as i64) as u64;
        let m = op.int_arg("m").unwrap_or(DIM as i64) as u64;
        let k = op.int_arg("k").unwrap_or(DIM as i64) as u64;
        self.macs += n * m * k;
        let reads = tensor_ranges(op, &["a", "b"]);
        let writes = tensor_ranges(op, &["c"]);
        // preload + compute are two host instructions
        let issue = self.issue(2);
        let dep = self.dep_time(&reads, &writes);
        let avail = self.unit_available(Unit::Execute);
        let idle = dep.max(issue) > avail;
        let start = issue.max(avail).max(dep);
        let cost = if idle {
            self.cfg.matmul_startup
        } else {
            self.cfg.matmul_interval
        };
        let end = self.complete(Unit::Execute, start, cost);
        self.note(&reads, &writes, end);
    }

    /// Earliest start permitted by data dependencies: RAW (our reads wait
    /// on overlapping writers), WAW and WAR (our writes wait on
    /// overlapping writers and readers).
    fn dep_time(&self, reads: &[(usize, u64, u64)], writes: &[(usize, u64, u64)]) -> u64 {
        let mut t = 0;
        for &(buf, lo, hi) in reads {
            for w in &self.writers {
                if overlaps(w, buf, lo, hi) {
                    t = t.max(w.time);
                }
            }
        }
        for &(buf, lo, hi) in writes {
            for w in &self.writers {
                if overlaps(w, buf, lo, hi) {
                    t = t.max(w.time);
                }
            }
            for r in &self.readers {
                if overlaps(r, buf, lo, hi) {
                    t = t.max(r.time);
                }
            }
        }
        t
    }

    fn note(&mut self, reads: &[(usize, u64, u64)], writes: &[(usize, u64, u64)], end: u64) {
        for &(buf, lo, hi) in reads {
            self.readers.push(Access {
                buf,
                lo,
                hi,
                time: end,
            });
        }
        for &(buf, lo, hi) in writes {
            self.writers.push(Access {
                buf,
                lo,
                hi,
                time: end,
            });
        }
        // prune to bound cost on long traces
        if self.writers.len() > 4096 {
            let horizon = self.finish.saturating_sub(10_000);
            self.writers.retain(|a| a.time > horizon);
        }
        if self.readers.len() > 4096 {
            let horizon = self.finish.saturating_sub(10_000);
            self.readers.retain(|a| a.time > horizon);
        }
    }
}

/// The (buffer, linear range) footprint of one tensor argument.
fn footprint(t: &TensorRef) -> (usize, u64, u64) {
    let mut span = 1u64;
    for (&n, &s) in t.shape.iter().zip(&t.strides) {
        if n > 0 {
            span += (n as u64 - 1) * s as u64;
        }
    }
    (t.buf.0, t.base_offset as u64, t.base_offset as u64 + span)
}

/// A set of `(buffer id, start byte, end byte)` footprints.
type Ranges = Vec<(usize, u64, u64)>;

fn tensor_ranges(op: &HwOp, names: &[&str]) -> Ranges {
    names
        .iter()
        .filter_map(|n| op.tensor_arg(n).map(footprint))
        .collect()
}

/// Classifies a DMA op: (reads, writes, total bytes, rows).
fn dma_ranges(op: &HwOp) -> (Ranges, Ranges, u64, u64) {
    let src = op.tensor_arg("src");
    let dst = op.tensor_arg("dst");
    let reads: Vec<_> = src.map(footprint).into_iter().collect();
    let writes: Vec<_> = dst.map(footprint).into_iter().collect();
    let elem = src
        .or(dst)
        .map(|t| t.dtype.size_bytes() as u64)
        .unwrap_or(1);
    let volume: u64 = src
        .or(dst)
        .map(|t| t.shape.iter().product::<usize>() as u64)
        .unwrap_or(0);
    let rows = src
        .or(dst)
        .and_then(|t| t.shape.first().copied())
        .unwrap_or(1)
        .max(1) as u64;
    (reads, writes, volume * elem, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::types::{DataType, MemName};
    use exo_interp::BufId;

    fn tensor(buf: usize, offset: usize, shape: &[usize], strides: &[usize]) -> TraceArg {
        TraceArg::Tensor(TensorRef {
            buf: BufId(buf),
            mem: MemName::dram(),
            dtype: DataType::I8,
            base_offset: offset,
            shape: shape.to_vec(),
            strides: strides.to_vec(),
        })
    }

    fn mvin(buf_src: usize, buf_dst: usize, dst_off: usize) -> HwOp {
        HwOp {
            instr: "gemmini_mvin".into(),
            args: vec![
                ("n".into(), TraceArg::Int(16)),
                ("m".into(), TraceArg::Int(16)),
                ("src".into(), tensor(buf_src, 0, &[16, 16], &[128, 1])),
                ("dst".into(), tensor(buf_dst, dst_off, &[16, 16], &[16, 1])),
            ],
        }
    }

    fn matmul(a: (usize, usize), b: (usize, usize), c: (usize, usize)) -> HwOp {
        HwOp {
            instr: "gemmini_matmul".into(),
            args: vec![
                ("n".into(), TraceArg::Int(16)),
                ("m".into(), TraceArg::Int(16)),
                ("k".into(), TraceArg::Int(16)),
                ("a".into(), tensor(a.0, a.1, &[16, 16], &[16, 1])),
                ("b".into(), tensor(b.0, b.1, &[16, 16], &[16, 1])),
                ("c".into(), tensor(c.0, c.1, &[16, 16], &[16, 1])),
            ],
        }
    }

    fn config() -> HwOp {
        HwOp {
            instr: "gemmini_config_ld".into(),
            args: vec![("s".into(), TraceArg::Int(128))],
        }
    }

    #[test]
    fn empty_trace_is_zero_util() {
        let r = Simulator::new(SimConfig::software()).run(&[]);
        assert_eq!(r.macs, 0);
        assert_eq!(r.utilization, 0.0);
    }

    #[test]
    fn config_flushes_serialize() {
        // config before every mvin ⇒ no overlap, way more cycles
        let fused: Vec<HwOp> = (0..16)
            .flat_map(|i| vec![config(), mvin(0, 1, i * 256)])
            .collect();
        let hoisted: Vec<HwOp> = std::iter::once(config())
            .chain((0..16).map(|i| mvin(0, 1, i * 256)))
            .collect();
        let r_fused = Simulator::new(SimConfig::software()).run(&fused);
        let r_hoisted = Simulator::new(SimConfig::software()).run(&hoisted);
        assert!(
            r_fused.cycles > 2 * r_hoisted.cycles,
            "fused {} vs hoisted {}",
            r_fused.cycles,
            r_hoisted.cycles
        );
        assert_eq!(r_fused.flushes, 16);
        assert_eq!(r_hoisted.flushes, 1);
    }

    #[test]
    fn independent_load_and_compute_overlap() {
        // loads into one scratchpad region while matmuls run on another:
        // total time ≈ max of the two streams, not the sum
        let mut trace = vec![config()];
        trace.push(mvin(0, 1, 0));
        trace.push(mvin(0, 1, 256));
        for i in 0..32 {
            trace.push(mvin(0, 1, 4096 + i * 256));
            trace.push(matmul((1, 0), (1, 256), (2, 0)));
        }
        let r = Simulator::new(SimConfig::software()).run(&trace);
        let busy_load = r.busy_of(Unit::Load);
        let busy_exec = r.busy_of(Unit::Execute);
        assert!(
            r.cycles < busy_load + busy_exec,
            "no overlap: {} !< {} + {}",
            r.cycles,
            busy_load,
            busy_exec
        );
    }

    #[test]
    fn raw_dependency_stalls_compute() {
        // matmul reading a tile must wait for its mvin
        let trace = vec![
            config(),
            mvin(0, 1, 0),
            mvin(0, 1, 256),
            matmul((1, 0), (1, 256), (2, 0)),
        ];
        let r = Simulator::new(SimConfig::software()).run(&trace);
        let cfg = SimConfig::software();
        // both loads and the matmul must be serial (matmul reads both)
        let load_cost = cfg.dma_startup + 16;
        assert!(r.cycles >= cfg.flush_cost + 2 * load_cost + cfg.matmul_startup);
    }

    #[test]
    fn hardware_mode_beats_software() {
        let mut trace = vec![config()];
        for i in 0..64 {
            trace.push(mvin(0, 1, (i % 8) * 256));
            trace.push(matmul((1, (i % 8) * 256), (1, 0), (2, 0)));
        }
        let sw = Simulator::new(SimConfig::software()).run(&trace);
        let hw = Simulator::new(SimConfig::hardware_unroller()).run(&trace);
        assert!(
            hw.cycles < sw.cycles,
            "hw {} !< sw {}",
            hw.cycles,
            sw.cycles
        );
        assert!(hw.utilization > sw.utilization);
    }

    #[test]
    fn compute_bound_trace_reaches_high_utilization() {
        // operands resident: back-to-back matmuls on preloaded tiles
        let mut trace = vec![config(), mvin(0, 1, 0), mvin(0, 1, 256)];
        for _ in 0..256 {
            trace.push(matmul((1, 0), (1, 256), (2, 0)));
        }
        let r = Simulator::new(SimConfig::hardware_unroller()).run(&trace);
        assert!(r.utilization > 0.85, "util {}", r.utilization);
    }

    #[test]
    fn macs_counted_from_matmuls() {
        let trace = vec![
            config(),
            mvin(0, 1, 0),
            mvin(0, 1, 256),
            matmul((1, 0), (1, 256), (2, 0)),
        ];
        let r = Simulator::new(SimConfig::software()).run(&trace);
        assert_eq!(r.macs, 16 * 16 * 16);
        assert_eq!(r.instructions, 4);
    }
}
