//! The x86 SGEMM case study (paper §7.2, Figs. 5a/5b).
//!
//! A naive three-loop f32 GEMM is scheduled into the paper's structure:
//! a register-blocked 6×64 microkernel (six rows × four zmm vectors of C
//! resident in registers) built from `mm512_loadu_ps` /
//! `mm512_broadcast_ss` / `mm512_fmadd_ps` / `mm512_storeu_ps`, with
//! every vector loop mapped to an instruction by `replace()`.
//!
//! The comparison libraries are modeled as *strategies*: the same cost
//! model evaluated with each library's microkernel shapes and blocking
//! parameters (OpenBLAS-like: one fixed kernel; MKL-like: a family of
//! specialized kernels chosen per shape — which is exactly why MKL pulls
//! ahead at extreme aspect ratios in Fig. 5b).

use std::sync::Arc;

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc};
use exo_core::types::DataType;
use exo_hwlibs::Avx512Lib;
use exo_sched::{Procedure, SchedError, StateRef};
use x86_sim::traffic::{gemm_traffic, GemmBlocking};
use x86_sim::{profile_proc, CoreModel, KernelProfile};

/// The naive algorithm: `C += A·B`, single precision.
pub fn naive_sgemm(m: i64, n: i64, k: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("sgemm");
    let a = b.tensor("A", DataType::F32, vec![Expr::int(m), Expr::int(k)]);
    let bb = b.tensor("B", DataType::F32, vec![Expr::int(k), Expr::int(n)]);
    let c = b.tensor("C", DataType::F32, vec![Expr::int(m), Expr::int(n)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(m));
    let j = b.begin_for("j", Expr::int(0), Expr::int(n));
    let kk = b.begin_for("k", Expr::int(0), Expr::int(k));
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(kk)]).mul(read(bb, vec![Expr::var(kk), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

/// Schedules [`naive_sgemm`] into the paper's `mr×nr` register-blocked
/// microkernel (defaults 6×64). `m` must divide by `mr` and `n` by `nr`.
///
/// # Errors
///
/// Fails when a rewrite cannot be verified or the sizes don't divide.
pub fn schedule_sgemm(
    lib: &Avx512Lib,
    state: &StateRef,
    m: i64,
    n: i64,
    k: i64,
    mr: i64,
    nr: i64,
) -> Result<Procedure, SchedError> {
    assert!(nr % 16 == 0, "nr must be a multiple of the vector width");
    let p = Procedure::with_state(naive_sgemm(m, n, k), StateRef::clone(state));

    // ---- blocking: io jo k ii ji ----
    let p = p
        .split("for i in _: _", mr, "io", "ii")?
        .split("for j in _: _", nr, "jo", "ji")?
        .reorder("for ii in _: _", "jo")?
        .reorder("for ji in _: _", "k")?
        .reorder("for ii in _: _", "k")?;

    let io = p
        .iter_sym("io")
        .ok_or_else(|| SchedError::new("iterator `io` missing after tiling"))?;
    let jo = p
        .iter_sym("jo")
        .ok_or_else(|| SchedError::new("iterator `jo` missing after tiling"))?;
    let k_sym = p
        .iter_sym("k")
        .ok_or_else(|| SchedError::new("iterator `k` missing after tiling"))?;

    // ---- stage the C tile into vector registers across the k loop ----
    let p = p.stage_mem(
        "for k in _: _",
        "C",
        &[
            (
                Expr::var(io).mul(Expr::int(mr)),
                Expr::var(io).mul(Expr::int(mr)).add(Expr::int(mr)),
            ),
            (
                Expr::var(jo).mul(Expr::int(nr)),
                Expr::var(jo).mul(Expr::int(nr)).add(Expr::int(nr)),
            ),
        ],
        "c_reg",
        lib.reg,
    )?;

    // ---- vector shape: ji → jv (vectors) × jl (lanes) ----
    let p = p.split("for ji in _: _", 16, "jv", "jl")?;

    // ---- stage the B row (k, jo-panel) into registers ----
    let unit = |e: Expr| (e.clone(), e.add(Expr::int(1)));
    let p = p.stage_mem(
        "for ii in _: _",
        "B",
        &[
            unit(Expr::var(k_sym)),
            (
                Expr::var(jo).mul(Expr::int(nr)),
                Expr::var(jo).mul(Expr::int(nr)).add(Expr::int(nr)),
            ),
        ],
        "b_vec",
        lib.reg,
    )?;
    let p = p.simplify();

    // ---- broadcast the A scalar across the lanes ----
    let p = p.expand_scalar("for jv in _: _", "A[_]", "jl", "a_bc", lib.reg)?;

    // ---- instruction selection ----
    // innermost lane loop → FMA
    let p = p.replace("for jl in _: _", &lib.fmadd)?;
    // the broadcast fill loop (named l by expand_scalar)
    let p = p.replace("for l in _: _", &lib.broadcast)?;
    // B row load: 16-lane pieces
    let p = p
        .split("for ld1 in _: _", 16, "bl1o", "bl1i")?
        .replace("for bl1i in _: _", &lib.loadu)?;
    // C tile load / store
    let p = p
        .split("for ld1 in _: _", 16, "cl1o", "cl1i")?
        .replace("for cl1i in _: _", &lib.loadu)?
        .split("for st1 in _: _", 16, "cs1o", "cs1i")?
        .replace("for cs1i in _: _", &lib.storeu)?;

    Ok(p.simplify())
}

/// One library strategy for the Fig. 5 comparisons: a set of microkernel
/// shapes (MKL-like strategies carry several specialized variants) and
/// cache blocking.
#[derive(Clone, Debug)]
pub struct GemmStrategy {
    /// Display name.
    pub name: &'static str,
    /// Available microkernel shapes `(mr, nr)`.
    pub kernels: Vec<(u64, u64)>,
    /// Cache blocking parameters.
    pub blocking: GemmBlocking,
}

impl GemmStrategy {
    /// The exo-rs schedule of §7.2: one 6×64 microkernel plus the edge
    /// specializations produced by further scheduling (5 bottom sizes ×
    /// masked right edge, handled as masked full-cost tiles here).
    pub fn exo() -> GemmStrategy {
        GemmStrategy {
            name: "Exo",
            kernels: vec![(6, 64)],
            blocking: GemmBlocking {
                mr: 6,
                nr: 64,
                mc: 96,
                kc: 384,
                nc: 2048,
                packed: false,
            },
        }
    }

    /// An OpenBLAS-like strategy: one hand-tuned kernel (the same 6×64
    /// register shape as the skylakex kernel family), with packed
    /// operand panels. Fig. 5b's "Exo matches OpenBLAS almost exactly"
    /// follows from the matching microkernel shape.
    pub fn openblas_like() -> GemmStrategy {
        GemmStrategy {
            name: "OpenBLAS",
            kernels: vec![(6, 64)],
            blocking: GemmBlocking {
                mr: 6,
                nr: 64,
                mc: 96,
                kc: 384,
                nc: 2048,
                packed: true,
            },
        }
    }

    /// An MKL-like strategy: a family of specialized kernels (including
    /// tall/skinny shapes), the best chosen per problem.
    pub fn mkl_like() -> GemmStrategy {
        GemmStrategy {
            name: "MKL",
            kernels: vec![
                (6, 64),
                (12, 32),
                (24, 16),
                (2, 64),
                (48, 16),
                (1, 64),
                (64, 16),
            ],
            blocking: GemmBlocking {
                mr: 6,
                nr: 64,
                mc: 96,
                kc: 384,
                nc: 2048,
                packed: true,
            },
        }
    }

    /// Predicted GFLOP/s on an `M×N×K` problem.
    pub fn gflops(&self, m: u64, n: u64, k: u64, core: &CoreModel) -> f64 {
        self.kernels
            .iter()
            .map(|&(mr, nr)| {
                let blocking = GemmBlocking {
                    mr,
                    nr,
                    ..self.blocking
                };
                evaluate_kernel(m, n, k, mr, nr, &blocking, core)
            })
            .fold(0.0, f64::max)
    }
}

/// Evaluates one microkernel shape on a problem: instruction counts per
/// micro-tile scaled over full and partial tiles (partial tiles execute
/// masked instructions at full cost but contribute only their useful
/// FLOPs), plus footprint cache traffic.
fn evaluate_kernel(
    m: u64,
    n: u64,
    k: u64,
    mr: u64,
    nr: u64,
    blocking: &GemmBlocking,
    core: &CoreModel,
) -> f64 {
    let vecs = nr / 16;
    // per k-step of one micro-tile: nr/16 B loads, mr broadcasts, mr·nr/16
    // FMAs; per tile: C loads + stores
    let tiles_m = m.div_ceil(mr);
    let tiles_n = n.div_ceil(nr);
    let tiles = tiles_m * tiles_n;
    let per_tile = KernelProfile {
        fmas: mr * vecs * k,
        vec_loads: vecs * k + mr * vecs * 2, // B rows + C in/out (loads+stores counted below)
        vec_stores: mr * vecs,
        broadcasts: mr * k,
        other_vec: 0,
        scalar_uops: 2,
        loop_iters: k + mr + vecs,
        flops: 0, // useful flops accounted separately
    };
    let profile = per_tile.scale(tiles);
    let t = gemm_traffic(m, n, k, blocking, core);
    let cycles = core.cycles(&profile, &t);
    let useful_flops = 2 * m * n * k;
    core.gflops(useful_flops, cycles)
}

/// Cross-checks the analytic per-tile instruction counts against a real
/// scheduled procedure (used by tests and the benches' self-check).
pub fn microkernel_profile_matches(
    lib: &Avx512Lib,
    state: &StateRef,
    mr: i64,
    nr: i64,
) -> Result<bool, SchedError> {
    let (m, n, k) = (mr * 2, nr * 2, 8);
    let p = schedule_sgemm(lib, state, m, n, k, mr, nr)?;
    let got = profile_proc(p.proc())
        .ok_or_else(|| SchedError::new("microkernel has non-constant bounds; cannot profile"))?;
    let tiles = ((m / mr) * (n / nr)) as u64;
    let vecs = (nr / 16) as u64;
    let expect_fmas = tiles * (mr as u64) * vecs * (k as u64);
    let expect_bc = tiles * (mr as u64) * (k as u64);
    let expect_stores = tiles * (mr as u64) * vecs;
    Ok(got.fmas == expect_fmas && got.broadcasts == expect_bc && got.vec_stores == expect_stores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_core::types::DataType;
    use exo_interp::{ArgVal, Machine};
    use exo_sched::SchedState;
    use std::sync::Mutex;

    fn state() -> StateRef {
        Arc::new(Mutex::new(SchedState::default()))
    }

    #[test]
    fn scheduled_sgemm_is_correct() {
        let lib = Avx512Lib::new();
        let st = state();
        let (m, n, k) = (12, 128, 8);
        let p = schedule_sgemm(&lib, &st, m, n, k, 6, 64).expect("schedule");
        assert!(p.show().contains("mm512_fmadd_ps("), "{}", p.show());
        assert!(p.show().contains("mm512_broadcast_ss("), "{}", p.show());

        let naive = naive_sgemm(m, n, k);
        let run = |proc: &Proc| -> Vec<f64> {
            let mut machine = Machine::new();
            let av: Vec<f64> = (0..m * k).map(|i| ((i % 5) as f64) - 2.0).collect();
            let bv: Vec<f64> = (0..k * n).map(|i| ((i % 7) as f64) - 3.0).collect();
            let a = machine.alloc_extern("A", DataType::F32, &[m as usize, k as usize], &av);
            let b = machine.alloc_extern("B", DataType::F32, &[k as usize, n as usize], &bv);
            let c = machine.alloc_extern(
                "C",
                DataType::F32,
                &[m as usize, n as usize],
                &vec![0.0; (m * n) as usize],
            );
            machine
                .run(
                    proc,
                    &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
                )
                .expect("run");
            machine.buffer_values(c).unwrap()
        };
        assert_eq!(run(&naive), run(p.proc()));
    }

    #[test]
    fn microkernel_instruction_counts_match_model() {
        let lib = Avx512Lib::new();
        let st = state();
        assert!(microkernel_profile_matches(&lib, &st, 6, 64).unwrap());
    }

    #[test]
    fn square_sizes_land_in_the_paper_band() {
        // Fig. 5a: 80–95 % of peak on large squares for every library
        let core = CoreModel::tiger_lake();
        for strat in [
            GemmStrategy::exo(),
            GemmStrategy::openblas_like(),
            GemmStrategy::mkl_like(),
        ] {
            let gf = strat.gflops(1536, 1536, 1536, &core);
            let frac = gf / core.peak_gflops();
            assert!(
                (0.70..=1.0).contains(&frac),
                "{}: {frac:.2} of peak",
                strat.name
            );
        }
    }

    #[test]
    fn mkl_wins_at_extreme_aspect_ratios() {
        // Fig. 5b: K = 512, M·N = 512², extreme M/N — the kernel-family
        // strategy stays ahead of the fixed-kernel ones
        let core = CoreModel::tiger_lake();
        let (m, n, k) = (8192, 32, 512);
        let exo = GemmStrategy::exo().gflops(m, n, k, &core);
        let openblas = GemmStrategy::openblas_like().gflops(m, n, k, &core);
        let mkl = GemmStrategy::mkl_like().gflops(m, n, k, &core);
        assert!(mkl > exo, "mkl {mkl:.1} !> exo {exo:.1}");
        assert!(mkl > openblas, "mkl {mkl:.1} !> openblas {openblas:.1}");
        // and Exo tracks OpenBLAS (within ~20 %)
        assert!(
            (exo - openblas).abs() / openblas < 0.35,
            "exo {exo:.1} vs {openblas:.1}"
        );
    }
}
