//! The Gemmini MATMUL case study (paper §7.1, Fig. 4a).
//!
//! A naive three-loop i8 GEMM is scheduled — with the rewrite primitives
//! of `exo-sched` and the instruction library of `exo-hwlibs` — into a
//! Gemmini kernel: output-stationary accumulator row-panels, scratchpad
//! staging for A tiles and B (whole-matrix when it fits, per-`ko` panels
//! otherwise), hoisted stride configuration, and every data-movement and
//! compute loop replaced by a Gemmini instruction via unification.
//!
//! The handwritten baseline ("Old-lib") is modeled by
//! [`old_lib_matmul_trace`]: the Gemmini C library's static loop order
//! with fused per-operation configuration, as described in §7.1.

use std::sync::Arc;

use exo_core::build::{read, ProcBuilder};
use exo_core::ir::{Expr, Proc};
use exo_core::types::DataType;
use exo_core::MemName;
use exo_hwlibs::GemminiLib;
use exo_interp::{ArgVal, HwOp, Machine, TensorRef, TraceArg};
use exo_sched::{Position, Procedure, SchedError, StateRef};

/// Bytes of scratchpad we allow the resident-B strategy to occupy.
const B_RESIDENT_LIMIT: i64 = 192 * 1024;

/// The naive algorithm: `C += A·B` with i8 operands and an i32 output.
///
/// All of `n`, `m`, `k` must be multiples of 16.
pub fn naive_matmul(n: i64, m: i64, k: i64) -> Arc<Proc> {
    let mut b = ProcBuilder::new("matmul");
    let a = b.tensor("A", DataType::I8, vec![Expr::int(n), Expr::int(k)]);
    let bb = b.tensor("B", DataType::I8, vec![Expr::int(k), Expr::int(m)]);
    let c = b.tensor("C", DataType::I32, vec![Expr::int(n), Expr::int(m)]);
    let i = b.begin_for("i", Expr::int(0), Expr::int(n));
    let j = b.begin_for("j", Expr::int(0), Expr::int(m));
    let kk = b.begin_for("k", Expr::int(0), Expr::int(k));
    b.reduce(
        c,
        vec![Expr::var(i), Expr::var(j)],
        read(a, vec![Expr::var(i), Expr::var(kk)]).mul(read(bb, vec![Expr::var(kk), Expr::var(j)])),
    );
    b.end_for().end_for().end_for();
    b.finish()
}

/// Schedules [`naive_matmul`] onto Gemmini. Returns the scheduled
/// procedure; `p.directives()` is the schedule length reported in the
/// Fig. 7 reproduction.
///
/// # Errors
///
/// Fails if a rewrite's safety condition cannot be verified (which would
/// indicate a bug — every step here is provably safe) or if the sizes
/// are not multiples of 16.
pub fn schedule_matmul(
    lib: &GemminiLib,
    state: &StateRef,
    n: i64,
    m: i64,
    k: i64,
) -> Result<Procedure, SchedError> {
    let p = Procedure::with_state(naive_matmul(n, m, k), StateRef::clone(state));

    // ---- tiling to 16×16×16 (the §2.1 rewrites) ----
    let p = p
        .split("for i in _: _", 16, "io", "ii")?
        .split("for j in _: _", 16, "jo", "ji")?
        .split("for k in _: _", 16, "ko", "ki")?
        .reorder("for ii in _: _", "jo")?
        .reorder("for ji in _: _", "ko")?
        .reorder("for ii in _: _", "ko")?
        // output-stationary: ko outside jo
        .reorder("for jo in _: _", "ko")?;

    let io = p
        .iter_sym("io")
        .ok_or_else(|| SchedError::new("iterator `io` missing after tiling"))?;
    let ko = p
        .iter_sym("ko")
        .ok_or_else(|| SchedError::new("iterator `ko` missing after tiling"))?;
    let b_resident = k * m <= B_RESIDENT_LIMIT;

    // ---- staging (the §2.2 rewrites) ----
    // B: whole matrix resident in the scratchpad when it fits; otherwise
    // one 16×M row-panel per ko iteration.
    let p = if b_resident {
        p.stage_mem(
            "for io in _: _",
            "B",
            &[(Expr::int(0), Expr::int(k)), (Expr::int(0), Expr::int(m))],
            "b_s",
            lib.scratchpad,
        )?
    } else {
        p.stage_mem(
            "for jo in _: _",
            "B",
            &[
                (
                    Expr::var(ko).mul(Expr::int(16)),
                    Expr::var(ko).mul(Expr::int(16)).add(Expr::int(16)),
                ),
                (Expr::int(0), Expr::int(m)),
            ],
            "b_s",
            lib.scratchpad,
        )?
    };
    // C row-panel accumulates across ko in the accumulator.
    let p = p.stage_mem(
        "for ko in _: _",
        "C",
        &[
            (
                Expr::var(io).mul(Expr::int(16)),
                Expr::var(io).mul(Expr::int(16)).add(Expr::int(16)),
            ),
            (Expr::int(0), Expr::int(m)),
        ],
        "res",
        lib.accum,
    )?;
    // A tile per (io, ko).
    let p = p.stage_mem(
        "for jo in _: _",
        "A",
        &[
            (
                Expr::var(io).mul(Expr::int(16)),
                Expr::var(io).mul(Expr::int(16)).add(Expr::int(16)),
            ),
            (
                Expr::var(ko).mul(Expr::int(16)),
                Expr::var(ko).mul(Expr::int(16)).add(Expr::int(16)),
            ),
        ],
        "a_s",
        lib.scratchpad,
    )?;

    // ---- configuration (the §2.4 rewrites) ----
    let a_sym = p
        .lookup_data_sym("A")
        .ok_or_else(|| SchedError::new("data symbol `A` missing from procedure"))?;
    let b_sym = p
        .lookup_data_sym("B")
        .ok_or_else(|| SchedError::new("data symbol `B` missing from procedure"))?;
    let c_sym = p
        .lookup_data_sym("C")
        .ok_or_else(|| SchedError::new("data symbol `C` missing from procedure"))?;
    // the configuration writes go before the first statement of the body
    // (the b_s alloc when B is resident at top level, the io loop otherwise)
    let first_pat = if b_resident {
        "b_s : _"
    } else {
        "for io in _: _"
    };
    let p = p
        .configwrite_at(
            first_pat,
            Position::Before,
            lib.config_ld.0,
            lib.config_ld.1,
            Expr::Stride { buf: a_sym, dim: 0 },
        )?
        .configwrite_at(
            first_pat,
            Position::Before,
            lib.config_ld2.0,
            lib.config_ld2.1,
            Expr::Stride { buf: b_sym, dim: 0 },
        )?
        .configwrite_at(
            first_pat,
            Position::Before,
            lib.config_ld_acc.0,
            lib.config_ld_acc.1,
            Expr::Stride { buf: c_sym, dim: 0 },
        )?
        .configwrite_at(
            first_pat,
            Position::Before,
            lib.config_st.0,
            lib.config_st.1,
            Expr::Stride { buf: c_sym, dim: 0 },
        )?;

    // ---- instruction selection (the §2.3 rewrites) ----
    // patterns match in pre-order, so map the staging loops in the order
    // they appear: resident-B puts the B loads at the top of the body;
    // otherwise the res loads (start of the io body) come first.
    let replace_b = |p: Procedure| -> Result<Procedure, SchedError> {
        if b_resident {
            // K × M whole-matrix load: tile both dimensions
            let q = p
                .split("for ld0 in _: _", 16, "bl0o", "bl0i")?
                .split("for ld1 in _: _", 16, "bl1o", "bl1i")?
                .reorder("for bl0i in _: _", "bl1o")?;
            q.replace("for bl0i in _: _", &lib.mvin2)
        } else {
            // 16 × M panel: tile columns
            let q = p
                .split("for ld1 in _: _", 16, "bl1o", "bl1i")?
                .reorder("for ld0 in _: _", "bl1o")?;
            q.replace("for ld0 in _: _", &lib.mvin2)
        }
    };
    let replace_res = |p: Procedure| -> Result<Procedure, SchedError> {
        p.split("for ld1 in _: _", 16, "cl1o", "cl1i")?
            .reorder("for ld0 in _: _", "cl1o")?
            .replace("for ld0 in _: _", &lib.mvin_acc)
    };
    let p = if b_resident {
        let p = replace_b(p)?;
        replace_res(p)?
    } else {
        let p = replace_res(p)?;
        replace_b(p)?
    };
    // A tile load → mvin (already 16×16).
    let p = p.replace("for ld0 in _: _", &lib.mvin)?;
    // compute → one systolic pass per (jo).
    let p = p.replace("for ii in _: _", &lib.matmul)?;
    // res store loops → mvout_acc.
    let p = p
        .split("for st1 in _: _", 16, "cs1o", "cs1i")?
        .reorder("for st0 in _: _", "cs1o")?
        .replace("for st0 in _: _", &lib.mvout_acc)?;

    // ---- turn the configuration writes into instructions ----
    let p = p
        .replace("ConfigLd.src_stride = _", &lib.config_ld_instr)?
        .replace("ConfigLd2.src_stride = _", &lib.config_ld2_instr)?
        .replace("ConfigLdAcc.src_stride = _", &lib.config_ld_acc_instr)?
        .replace("ConfigSt.dst_stride = _", &lib.config_st_instr)?;

    Ok(p.simplify())
}

/// Runs the scheduled kernel on the interpreter and returns the
/// instruction trace. When `functional` is false, instruction bodies are
/// skipped — traces for timing only (the buffers stay uninitialized).
///
/// # Panics
///
/// Panics if the scheduled procedure fails to interpret — a schedule
/// accepted by the safety checks must also run, so this is a bug.
#[allow(clippy::expect_used)]
pub fn trace_matmul(proc: &Proc, n: i64, m: i64, k: i64, functional: bool) -> Vec<HwOp> {
    let mut machine = Machine::new();
    machine.execute_instr_bodies = functional;
    let (a, b, c);
    if functional {
        let av: Vec<f64> = (0..n * k).map(|i| ((i % 5) as f64) - 2.0).collect();
        let bv: Vec<f64> = (0..k * m).map(|i| ((i % 7) as f64) - 3.0).collect();
        a = machine.alloc_extern("A", DataType::I8, &[n as usize, k as usize], &av);
        b = machine.alloc_extern("B", DataType::I8, &[k as usize, m as usize], &bv);
        c = machine.alloc_extern(
            "C",
            DataType::I32,
            &[n as usize, m as usize],
            &vec![0.0; (n * m) as usize],
        );
    } else {
        a = machine.alloc_extern_uninit("A", DataType::I8, &[n as usize, k as usize]);
        b = machine.alloc_extern_uninit("B", DataType::I8, &[k as usize, m as usize]);
        c = machine.alloc_extern_uninit("C", DataType::I32, &[n as usize, m as usize]);
    }
    machine
        .run(
            proc,
            &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
        )
        .expect("scheduled kernel must run");
    machine.take_trace()
}

/// A trace model of Gemmini's handwritten C library (the "Old-lib"
/// baseline of Fig. 4): static `i →j → k` tile order, A and B tiles
/// loaded per matmul (no cross-tile reuse), and the load/store
/// configuration re-issued around every move — the fused-configuration
/// behavior §2.4 describes.
pub fn old_lib_matmul_trace(n: i64, m: i64, k: i64) -> Vec<HwOp> {
    let mut trace = Vec::new();
    let t = |buf: usize, off: i64, rows: i64, cols: i64, stride: i64, acc: bool| {
        TraceArg::Tensor(TensorRef {
            buf: exo_interp::BufId(buf),
            mem: MemName::dram(),
            dtype: if acc { DataType::I32 } else { DataType::I8 },
            base_offset: off as usize,
            shape: vec![rows as usize, cols as usize],
            strides: vec![stride as usize, 1],
        })
    };
    let int = |v: i64| TraceArg::Int(v);
    let config = |name: &str| HwOp {
        instr: name.into(),
        args: vec![("s".into(), int(k))],
    };
    // buffers: 0=A dram, 1=B dram, 2=C dram, 3=spadA, 4=spadB, 5=acc
    for io in 0..n / 16 {
        for jo in 0..m / 16 {
            // the handwritten library re-issues the (coupled) load and
            // store configuration once per output tile
            trace.push(config("gemmini_config_ld"));
            trace.push(HwOp {
                instr: "gemmini_mvin_acc".into(),
                args: vec![
                    ("n".into(), int(16)),
                    ("m".into(), int(16)),
                    ("src".into(), t(2, (io * 16) * m + jo * 16, 16, 16, m, true)),
                    ("dst".into(), t(5, 0, 16, 16, 16, true)),
                ],
            });
            for ko in 0..k / 16 {
                // A tile + B tile per matmul (no cross-tile reuse)
                trace.push(HwOp {
                    instr: "gemmini_mvin".into(),
                    args: vec![
                        ("n".into(), int(16)),
                        ("m".into(), int(16)),
                        (
                            "src".into(),
                            t(0, (io * 16) * k + ko * 16, 16, 16, k, false),
                        ),
                        ("dst".into(), t(3, 0, 16, 16, 16, false)),
                    ],
                });
                trace.push(HwOp {
                    instr: "gemmini_mvin".into(),
                    args: vec![
                        ("n".into(), int(16)),
                        ("m".into(), int(16)),
                        (
                            "src".into(),
                            t(1, (ko * 16) * m + jo * 16, 16, 16, m, false),
                        ),
                        ("dst".into(), t(4, 0, 16, 16, 16, false)),
                    ],
                });
                trace.push(HwOp {
                    instr: "gemmini_matmul".into(),
                    args: vec![
                        ("n".into(), int(16)),
                        ("m".into(), int(16)),
                        ("k".into(), int(16)),
                        ("a".into(), t(3, 0, 16, 16, 16, false)),
                        ("b".into(), t(4, 0, 16, 16, 16, false)),
                        ("c".into(), t(5, 0, 16, 16, 16, true)),
                    ],
                });
            }
            // store C tile with fused store config
            trace.push(config("gemmini_config_st"));
            trace.push(HwOp {
                instr: "gemmini_mvout_acc".into(),
                args: vec![
                    ("n".into(), int(16)),
                    ("m".into(), int(16)),
                    ("src".into(), t(5, 0, 16, 16, 16, true)),
                    ("dst".into(), t(2, (io * 16) * m + jo * 16, 16, 16, m, true)),
                ],
            });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_sched::SchedState;
    use std::sync::Mutex;

    fn state() -> StateRef {
        Arc::new(Mutex::new(SchedState::default()))
    }

    #[test]
    fn schedule_small_matmul_is_correct() {
        let lib = GemminiLib::new();
        let st = state();
        let (n, m, k) = (32, 32, 32);
        let p = schedule_matmul(&lib, &st, n, m, k).expect("schedule");
        assert!(p.directives() >= 25, "directives: {}", p.directives());
        assert!(p.show().contains("gemmini_matmul("), "{}", p.show());
        assert!(p.show().contains("gemmini_config_ld("), "{}", p.show());

        // functional oracle: scheduled == naive
        let naive = naive_matmul(n, m, k);
        let run = |proc: &Proc| -> Vec<f64> {
            let mut machine = Machine::new();
            let av: Vec<f64> = (0..n * k).map(|i| ((i % 5) as f64) - 2.0).collect();
            let bv: Vec<f64> = (0..k * m).map(|i| ((i % 7) as f64) - 3.0).collect();
            let a = machine.alloc_extern("A", DataType::I8, &[n as usize, k as usize], &av);
            let b = machine.alloc_extern("B", DataType::I8, &[k as usize, m as usize], &bv);
            let c = machine.alloc_extern(
                "C",
                DataType::I32,
                &[n as usize, m as usize],
                &vec![0.0; (n * m) as usize],
            );
            machine
                .run(
                    proc,
                    &[ArgVal::Tensor(a), ArgVal::Tensor(b), ArgVal::Tensor(c)],
                )
                .expect("run");
            machine.buffer_values(c).unwrap()
        };
        assert_eq!(run(&naive), run(p.proc()));
    }

    #[test]
    fn trace_contains_hoisted_configs() {
        let lib = GemminiLib::new();
        let st = state();
        let p = schedule_matmul(&lib, &st, 32, 32, 32).expect("schedule");
        let trace = trace_matmul(p.proc(), 32, 32, 32, false);
        // exactly 4 configuration instructions, all at the front
        let configs: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, op)| op.instr.starts_with("gemmini_config"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(configs.len(), 4, "configs: {configs:?}");
        assert!(
            configs.iter().all(|&i| i < 4),
            "configs not hoisted: {configs:?}"
        );
        // 2×2×2 tiles: 8 matmuls
        let matmuls = trace
            .iter()
            .filter(|op| op.instr == "gemmini_matmul")
            .count();
        assert_eq!(matmuls, 8);
    }

    #[test]
    fn old_lib_trace_has_fused_configs() {
        let trace = old_lib_matmul_trace(32, 32, 32);
        let configs = trace
            .iter()
            .filter(|op| op.instr.starts_with("gemmini_config"))
            .count();
        // one load-config and one store-config per output tile: 4×2
        assert_eq!(configs, 4 * 2);
    }
}
