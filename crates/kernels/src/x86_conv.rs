//! The x86 CONV case study (paper §7.2, Fig. 6).
//!
//! The paper's configuration: batch 5, 3×3 kernel, 80×100 output,
//! 128 input and output channels, unit stride, no padding, fused ReLU.
//! The schedule vectorizes over output channels (16 f32 lanes),
//! register-blocks output pixels, broadcasts input scalars, and streams
//! weight vectors — the same structure Halide's hand-tuned schedule and
//! oneDNN's JIT'd kernels use, which is why all three land within a
//! percent of each other in the paper.

use std::sync::Arc;

use exo_core::ir::{Expr, Proc};
use exo_core::types::DataType;
use exo_hwlibs::Avx512Lib;
use exo_sched::{Procedure, SchedError, StateRef};
use x86_sim::traffic::{conv_traffic, ConvShape as TrafficShape};
use x86_sim::{CoreModel, KernelProfile};

use crate::gemmini_conv::naive_conv_typed;
pub use crate::gemmini_conv::ConvShape;

/// The Fig. 6 configuration.
pub fn fig6_shape() -> ConvShape {
    ConvShape {
        batch: 5,
        out_dim: 80,
        oc: 128,
        ic: 128,
        kdim: 3,
    }
}

/// Builds the naive f32 convolution.
pub fn naive_conv_f32(s: &ConvShape) -> Arc<Proc> {
    naive_conv_typed(s, DataType::F32, DataType::F32)
}

/// Schedules the f32 convolution for AVX-512: vectorize `oc` by 16,
/// register-block `ox` by `rb`, broadcast inputs, stream weight vectors.
///
/// # Errors
///
/// Fails when a rewrite cannot be verified, `oc % 16 != 0`, or
/// `out_dim % rb != 0`.
pub fn schedule_conv_avx512(
    lib: &Avx512Lib,
    state: &StateRef,
    s: &ConvShape,
    rb: i64,
) -> Result<Procedure, SchedError> {
    let p = Procedure::with_state(naive_conv_f32(s), StateRef::clone(state));

    // ---- blocking: b oy oxo oco ky kx ic oxi ocl ----
    let p = p
        .split("for oc in _: _", 16, "oco", "ocl")?
        .split("for ox in _: _", rb, "oxo", "oxi")?
        .reorder("for oxi in _: _", "oco")?
        .reorder("for ocl in _: _", "ky")?
        .reorder("for oxi in _: _", "ky")?
        .reorder("for ocl in _: _", "kx")?
        .reorder("for oxi in _: _", "kx")?
        .reorder("for ocl in _: _", "ic")?
        .reorder("for oxi in _: _", "ic")?;

    let b_sym = p
        .iter_sym("b")
        .ok_or_else(|| SchedError::new("iterator `b` missing after tiling"))?;
    let oy = p
        .iter_sym("oy")
        .ok_or_else(|| SchedError::new("iterator `oy` missing after tiling"))?;
    let oxo = p
        .iter_sym("oxo")
        .ok_or_else(|| SchedError::new("iterator `oxo` missing after tiling"))?;
    let oco = p
        .iter_sym("oco")
        .ok_or_else(|| SchedError::new("iterator `oco` missing after tiling"))?;
    let ky = p
        .iter_sym("ky")
        .ok_or_else(|| SchedError::new("iterator `ky` missing after tiling"))?;
    let kx = p
        .iter_sym("kx")
        .ok_or_else(|| SchedError::new("iterator `kx` missing after tiling"))?;
    let ic = p
        .iter_sym("ic")
        .ok_or_else(|| SchedError::new("iterator `ic` missing after tiling"))?;

    let unit = |e: Expr| (e.clone(), e.add(Expr::int(1)));

    // ---- stage the C register tile (rb pixels × 16 channels) ----
    let p = p.stage_mem(
        "for ky in _: _",
        "C",
        &[
            unit(Expr::var(b_sym)),
            unit(Expr::var(oy)),
            (
                Expr::var(oxo).mul(Expr::int(rb)),
                Expr::var(oxo).mul(Expr::int(rb)).add(Expr::int(rb)),
            ),
            (
                Expr::var(oco).mul(Expr::int(16)),
                Expr::var(oco).mul(Expr::int(16)).add(Expr::int(16)),
            ),
        ],
        "c_reg",
        lib.reg,
    )?;

    // ---- stage the weight vector (one (ky,kx,ic) row of 16 oc) ----
    let p = p.stage_mem(
        "for oxi in _: _",
        "W",
        &[
            unit(Expr::var(ky)),
            unit(Expr::var(kx)),
            unit(Expr::var(ic)),
            (
                Expr::var(oco).mul(Expr::int(16)),
                Expr::var(oco).mul(Expr::int(16)).add(Expr::int(16)),
            ),
        ],
        "w_vec",
        lib.reg,
    )?;
    let p = p.simplify();

    // ---- broadcast the input pixel across the lanes ----
    let p = p.expand_scalar("for ocl in _: _", "In[_]", "ocl", "in_bc", lib.reg)?;

    // ---- instruction selection ----
    let p = p.replace("for ocl in _: _", &lib.fmadd)?;
    let p = p.replace("for l in _: _", &lib.broadcast)?;
    // weight vector load and C tile loads/stores (16-lane loops)
    let p = p.replace("for ld3 in _: _ #1", &lib.loadu)?; // W (second remaining ld3)
    let p = p.replace("for ld3 in _: _", &lib.loadu)?; // C loads
    let p = p.replace("for st3 in _: _", &lib.storeu)?;

    Ok(p.simplify())
}

/// A Fig. 6 competitor modeled as a strategy: the same vectorized direct
/// convolution with that library's register blocking.
#[derive(Clone, Copy, Debug)]
pub struct ConvStrategy {
    /// Display name.
    pub name: &'static str,
    /// Output pixels register-blocked per tile.
    pub rb: u64,
}

impl ConvStrategy {
    /// The exo-rs schedule (4-pixel register block).
    pub fn exo() -> ConvStrategy {
        ConvStrategy { name: "Exo", rb: 4 }
    }

    /// Halide's hand-tuned schedule (wider pixel block).
    pub fn halide_like() -> ConvStrategy {
        ConvStrategy {
            name: "Halide",
            rb: 5,
        }
    }

    /// oneDNN's JIT'd kernel (its own blocking).
    pub fn onednn_like() -> ConvStrategy {
        ConvStrategy {
            name: "oneDNN",
            rb: 8,
        }
    }

    /// Analytic per-shape instruction profile (cross-checked against the
    /// real scheduled procedure by the test suite).
    pub fn profile(&self, s: &ConvShape) -> KernelProfile {
        let pixels = (s.batch * s.out_dim * s.out_dim) as u64;
        let oc_groups = (s.oc as u64) / 16;
        let red = (s.kdim * s.kdim * s.ic) as u64;
        let tiles = pixels / self.rb * oc_groups;
        let fmas = tiles * red * self.rb;
        KernelProfile {
            fmas,
            vec_loads: tiles * red + tiles * self.rb, // W vector per red step + C loads
            vec_stores: tiles * self.rb,
            broadcasts: tiles * red * self.rb,
            other_vec: tiles * self.rb, // fused ReLU on each output vector
            scalar_uops: tiles * 2,
            loop_iters: tiles * (red + 2 * self.rb + 2),
            flops: 2 * fmas * 16,
        }
    }

    /// Predicted fraction of peak on a shape.
    pub fn fraction_of_peak(&self, s: &ConvShape, core: &CoreModel) -> f64 {
        let p = self.profile(s);
        let t = conv_traffic(
            &TrafficShape {
                n: s.batch as u64,
                oh: s.out_dim as u64,
                ow: s.out_dim as u64,
                ic: s.ic as u64,
                oc: s.oc as u64,
                kh: s.kdim as u64,
            },
            self.rb,
            core,
        );
        let cycles = core.cycles(&p, &t);
        let useful = s.macs() * 2;
        core.gflops(useful, cycles) / core.peak_gflops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_interp::{ArgVal, Machine};
    use exo_sched::SchedState;
    use std::sync::{Arc, Mutex};

    fn state() -> StateRef {
        Arc::new(Mutex::new(SchedState::default()))
    }

    #[test]
    fn scheduled_conv_is_correct() {
        let lib = Avx512Lib::new();
        let st = state();
        let shape = ConvShape {
            batch: 2,
            out_dim: 8,
            oc: 32,
            ic: 32,
            kdim: 3,
        };
        let p = schedule_conv_avx512(&lib, &st, &shape, 4).expect("schedule");
        assert!(p.show().contains("mm512_fmadd_ps("), "{}", p.show());

        let naive = naive_conv_f32(&shape);
        let run = |proc: &Proc| -> Vec<f64> {
            let mut machine = Machine::new();
            let in_len = (shape.batch * shape.in_dim() * shape.in_dim() * shape.ic) as usize;
            let w_len = (shape.kdim * shape.kdim * shape.ic * shape.oc) as usize;
            let c_len = (shape.batch * shape.out_dim * shape.out_dim * shape.oc) as usize;
            let iv: Vec<f64> = (0..in_len).map(|i| ((i % 5) as f64) - 2.0).collect();
            let wv: Vec<f64> = (0..w_len).map(|i| ((i % 7) as f64) - 3.0).collect();
            let input = machine.alloc_extern(
                "In",
                DataType::F32,
                &[
                    shape.batch as usize,
                    shape.in_dim() as usize,
                    shape.in_dim() as usize,
                    shape.ic as usize,
                ],
                &iv,
            );
            let w = machine.alloc_extern(
                "W",
                DataType::F32,
                &[3, 3, shape.ic as usize, shape.oc as usize],
                &wv,
            );
            let c = machine.alloc_extern(
                "C",
                DataType::F32,
                &[
                    shape.batch as usize,
                    shape.out_dim as usize,
                    shape.out_dim as usize,
                    shape.oc as usize,
                ],
                &vec![0.0; c_len],
            );
            machine
                .run(
                    proc,
                    &[ArgVal::Tensor(input), ArgVal::Tensor(w), ArgVal::Tensor(c)],
                )
                .expect("run");
            machine.buffer_values(c).unwrap()
        };
        assert_eq!(run(&naive), run(p.proc()));
    }

    #[test]
    fn analytic_profile_matches_scheduled_ir() {
        let lib = Avx512Lib::new();
        let st = state();
        let shape = ConvShape {
            batch: 2,
            out_dim: 8,
            oc: 32,
            ic: 32,
            kdim: 3,
        };
        let p = schedule_conv_avx512(&lib, &st, &shape, 4).expect("schedule");
        let got = x86_sim::profile_proc(p.proc()).expect("constant bounds");
        let want = ConvStrategy {
            name: "test",
            rb: 4,
        }
        .profile(&shape);
        assert_eq!(got.fmas, want.fmas, "fmas");
        assert_eq!(got.broadcasts, want.broadcasts, "broadcasts");
        assert_eq!(got.vec_stores, want.vec_stores, "stores");
    }

    #[test]
    fn all_strategies_within_a_band() {
        // Fig. 6: the three implementations are nearly identical
        let core = CoreModel::tiger_lake();
        let s = fig6_shape();
        let fracs: Vec<f64> = [
            ConvStrategy::exo(),
            ConvStrategy::halide_like(),
            ConvStrategy::onednn_like(),
        ]
        .iter()
        .map(|st| st.fraction_of_peak(&s, &core))
        .collect();
        let max = fracs.iter().cloned().fold(0.0, f64::max);
        let min = fracs.iter().cloned().fold(1.0, f64::min);
        assert!(max - min < 0.08, "spread too wide: {fracs:?}");
        assert!(min > 0.2 && max < 0.95, "implausible: {fracs:?}");
    }
}
